"""Pure-function experiment surface for the full-system water study.

Picklable entry point for the parallel runner (:mod:`repro.runner`):
one call runs the MD water box, prices its snapshot stream under the
baseline / INZ / INZ+pcache configurations, and reports the Figure 9
traffic reductions, application speedups, and particle-cache hit rates
as a JSON-able dict.
"""

from __future__ import annotations

from typing import Sequence

from ..md import Decomposition, MdEngine
from .speedup import evaluate_system
from .traffic import FULL

#: Configuration labels reported by :func:`evaluate_water_system`.
COMPRESSED_LABELS = ("inz", "inz+pcache")


def evaluate_water_system(
    n_atoms: int = 4096,
    steps: int = 7,
    seed: int = 1,
    node_dims: Sequence[int] = (2, 2, 2),
    pcache_warmup_steps: int = 3,
) -> dict:
    """Run one water box end to end and price it (Figures 9a/9b).

    ``pcache_hit_rate`` is the FULL configuration's final
    (steady-state) step rate, matching how Figure 9a reports it.
    """
    engine = MdEngine.water(n_atoms, seed=seed)
    snapshots = engine.run(steps)
    decomposition = Decomposition(box=engine.system.box, node_dims=tuple(node_dims))
    result = evaluate_system(
        snapshots,
        decomposition,
        engine.field.cutoff,
        pcache_warmup_steps=pcache_warmup_steps,
    )
    hit_rates = result.outcomes[FULL.label].pcache_hit_rates

    return {
        "n_atoms": n_atoms,
        "steps": steps,
        "num_nodes": result.num_nodes,
        "configs": {
            label: {
                "total_bits": int(outcome.total_bits),
                "mean_step_ns": float(outcome.mean_step_ns),
            }
            for label, outcome in result.outcomes.items()
        },
        "reductions": {
            label: float(result.traffic_reduction(label))
            for label in COMPRESSED_LABELS
        },
        "speedups": {
            label: float(result.speedup(config=label)) for label in COMPRESSED_LABELS
        },
        "pcache_hit_rate": hit_rates[-1] if hit_rates else 0.0,
        "pcache_hit_rates": hit_rates,
    }
