"""Full-system transaction-level simulator (Figures 9 and 12)."""

from .speedup import ConfigOutcome, FullSystemResult, evaluate_system, water_benchmark
from .surface import evaluate_water_system
from .timestep import TimestepBreakdown, TimestepModel, TimestepParams
from .traffic import (
    BASELINE,
    FULL,
    INZ_ONLY,
    CompressionConfig,
    StepTraffic,
    TrafficComparison,
    TrafficModel,
    compare_configurations,
)

__all__ = [
    "ConfigOutcome",
    "FullSystemResult",
    "evaluate_system",
    "evaluate_water_system",
    "water_benchmark",
    "TimestepBreakdown",
    "TimestepModel",
    "TimestepParams",
    "BASELINE",
    "FULL",
    "INZ_ONLY",
    "CompressionConfig",
    "StepTraffic",
    "TrafficComparison",
    "TrafficModel",
    "compare_configurations",
]
