"""Time-step phase model — the Figure 12 engine.

One MD time step on Anton 3 (Section II-C) interleaves:

1. position export over the channels (overlapped with PPIM streaming),
2. range-limited pair computation in the PPIMs,
3. force return over the channels,
4. per-atom force summation and integration on the GCs,
5. fence/counted-write synchronization between phases.

The machine-activity plots in the paper show the channels saturated while
the PPIMs idle when compression is off; the step duration is then set by
channel serialization.  This model computes each phase's duration from
first principles (bits over 464 Gb/s per neighbor channel, pairs over
PPIM throughput, atoms over GC integration throughput) and combines them
with the overlap structure above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import ChipConfig, DEFAULT_CHIP
from .traffic import StepTraffic


@dataclass(frozen=True)
class TimestepParams:
    """Throughput and overhead constants of the phase model."""

    chip: ChipConfig = field(default_factory=lambda: DEFAULT_CHIP)
    # Effective sustained pair rate per PPIM (pipeline issue limits and
    # stored-set/stream-set scheduling keep this below one per cycle).
    pairs_per_ppim_per_cycle: float = 0.25
    integration_cycles_per_atom: float = 30.0
    # Streaming pipeline fill: ICB -> PPIM row -> force return path.
    pipeline_fill_ns: float = 40.0
    # Two network fences bound the step (positions complete; forces
    # complete), plus counted-write/blocking-read handoffs.
    sync_ns: float = 80.0
    # Fraction of raw SERDES bandwidth delivered to payloads (64b/66b
    # line coding, frame headers, credit/idle symbols).
    channel_efficiency: float = 0.70
    # Per-step work outside the range-limited pairwise phase (bonded
    # forces on the BCs, long-range electrostatics, housekeeping); not
    # overlapped with the channels, so it dilutes app-level speedup
    # (Fig. 9b) without appearing in the pairwise activity window
    # (Fig. 12).
    other_compute_ns: float = 250.0

    @property
    def ppim_pairs_per_ns(self) -> float:
        return (self.chip.num_ppims * self.pairs_per_ppim_per_cycle
                * self.chip.clock_ghz)

    @property
    def integration_atoms_per_ns(self) -> float:
        return (self.chip.num_gcs * self.chip.clock_ghz
                / self.integration_cycles_per_atom)

    @property
    def channel_bits_per_ns(self) -> float:
        """Effective payload rate of one neighbor channel direction
        (16 lanes x 29 Gb/s, derated by the line-coding efficiency)."""
        return self.chip.neighbor_bandwidth_gbps * self.channel_efficiency


@dataclass
class TimestepBreakdown:
    """Durations (ns) of one time step's phases on the critical path."""

    channel_ns: float
    ppim_ns: float
    integration_ns: float
    sync_ns: float
    pipeline_fill_ns: float
    other_compute_ns: float = 0.0

    @property
    def pairwise_phase_ns(self) -> float:
        """The range-limited pairwise window Figure 12 plots: streaming
        pipeline fill plus the channel/PPIM overlap region."""
        return self.pipeline_fill_ns + max(self.channel_ns, self.ppim_ns)

    @property
    def total_ns(self) -> float:
        """Whole-step duration: the pairwise phase plus integration,
        synchronization, and the non-overlapped remainder of the MD step
        (bonded and long-range work)."""
        return (self.pairwise_phase_ns + self.integration_ns
                + self.sync_ns + self.other_compute_ns)

    @property
    def channel_bound(self) -> bool:
        return self.channel_ns >= self.ppim_ns

    @property
    def ppim_utilization(self) -> float:
        """PPIM busy fraction during the streaming window (Fig. 12's
        underutilization signal)."""
        window = max(self.channel_ns, self.ppim_ns)
        return self.ppim_ns / window if window > 0 else 0.0


class TimestepModel:
    """Evaluates step duration from a step's traffic and workload."""

    def __init__(self, params: Optional[TimestepParams] = None) -> None:
        self.params = params or TimestepParams()

    def evaluate(self, traffic: StepTraffic, num_pairs: int,
                 num_atoms: int, num_nodes: int) -> TimestepBreakdown:
        """Compute the phase breakdown of one time step.

        Args:
            traffic: Channel bits from :class:`~repro.fullsim.traffic.
                TrafficModel` for the chosen compression configuration.
            num_pairs: Range-limited pairs this step (whole machine).
            num_atoms: Atoms in the chemical system.
            num_nodes: Nodes in the machine.
        """
        params = self.params
        # The step drains when the most loaded channel finishes.
        channel_ns = traffic.max_channel_bits / params.channel_bits_per_ns
        pairs_per_node = num_pairs / num_nodes
        ppim_ns = pairs_per_node / params.ppim_pairs_per_ns
        atoms_per_node = num_atoms / num_nodes
        integration_ns = atoms_per_node / params.integration_atoms_per_ns
        return TimestepBreakdown(
            channel_ns=channel_ns,
            ppim_ns=ppim_ns,
            integration_ns=integration_ns,
            sync_ns=params.sync_ns,
            pipeline_fill_ns=params.pipeline_fill_ns,
            other_compute_ns=params.other_compute_ns)
