"""Channel-traffic accounting with the real codecs — the Fig. 9a engine.

For every simulated MD time step this model reproduces the off-chip
traffic of a parallel Anton 3 run:

* **Position exports**: each atom near a home-box face is multicast to
  every node whose import region contains it, along dimension-order tree
  paths (shared prefixes charged once — the in-network position multicast
  of the paper's footnote 3).
* **Force returns**: every importing node streams the atom through its
  PPIM rows and returns the stream-set forces to the atom's home node.

Every packet is priced in one of three configurations:

* ``BASELINE`` — full 64-bit header + 16-byte payload per packet,
* ``INZ_ONLY`` — payloads INZ-encoded (actual byte counts from the codec),
* ``FULL`` — INZ plus the particle cache: position packets that hit send a
  3-byte compressed header and the INZ-encoded extrapolation residual.

The bit counts are exact evaluations of the codec definitions over real
simulated MD data — no analytic approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compression import inz
from ..compression.extrapolation import ORDER_QUADRATIC
from ..compression.vector_cache import VectorParticleCache
from ..md.decomposition import Decomposition, DirectedChannel, multicast_tree
from ..md.engine import Snapshot

#: Wire-format byte costs (see repro.compression.frames.HEADER_BYTES).
DESCRIPTOR_BYTES = 1
FULL_HEADER_BYTES = 8
COMPRESSED_HEADER_BYTES = 3
RAW_PAYLOAD_BYTES = 16
MARKER_BYTES = 2  # descriptor + 1-byte marker header


@dataclass(frozen=True)
class CompressionConfig:
    """Which compression features are enabled (independently, as in HW)."""

    inz: bool
    pcache: bool

    @property
    def label(self) -> str:
        if self.pcache and self.inz:
            return "inz+pcache"
        if self.inz:
            return "inz"
        if self.pcache:
            return "pcache"
        return "baseline"


BASELINE = CompressionConfig(inz=False, pcache=False)
INZ_ONLY = CompressionConfig(inz=True, pcache=False)
FULL = CompressionConfig(inz=True, pcache=True)


@dataclass
class StepTraffic:
    """Bits that crossed the channels during one time step."""

    position_bits: int = 0
    force_bits: int = 0
    marker_bits: int = 0
    position_packets: int = 0
    force_packets: int = 0
    pcache_hits: int = 0
    pcache_misses: int = 0
    per_channel_bits: Dict[DirectedChannel, int] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        return self.position_bits + self.force_bits + self.marker_bits

    @property
    def max_channel_bits(self) -> int:
        return max(self.per_channel_bits.values(), default=0)


class TrafficModel:
    """Prices one compression configuration's traffic, step by step."""

    def __init__(self, decomposition: Decomposition,
                 config: CompressionConfig, cutoff: float,
                 pcache_entries: int = 1024, pcache_ways: int = 4,
                 pcache_order: int = ORDER_QUADRATIC,
                 pcache_evict_threshold: int = 1,
                 force_reduction: bool = False) -> None:
        self.decomposition = decomposition
        self.config = config
        self.cutoff = cutoff
        self.force_reduction = force_reduction
        self.torus = decomposition.torus
        self._caches: Dict[DirectedChannel, VectorParticleCache] = {}
        self._pcache_kwargs = dict(entries=pcache_entries, ways=pcache_ways,
                                   order=pcache_order,
                                   evict_threshold=pcache_evict_threshold)
        self.steps_processed = 0

    def _cache_for(self, channel: DirectedChannel) -> VectorParticleCache:
        if channel not in self._caches:
            self._caches[channel] = VectorParticleCache(**self._pcache_kwargs)
        return self._caches[channel]

    # ------------------------------------------------------------------
    # Packet pricing.
    # ------------------------------------------------------------------

    def _full_packet_bytes(self, payload_words: np.ndarray) -> np.ndarray:
        """Per-packet bytes for full (headered) packets."""
        count = len(payload_words)
        if self.config.inz:
            sizes = inz.encoded_sizes(payload_words)
        else:
            sizes = np.full(count, RAW_PAYLOAD_BYTES, dtype=np.int64)
        return DESCRIPTOR_BYTES + FULL_HEADER_BYTES + sizes

    def _position_channel_bits(self, channel: DirectedChannel,
                               atom_ids: np.ndarray,
                               positions_fp: np.ndarray,
                               traffic: StepTraffic) -> int:
        count = len(atom_ids)
        payload = np.zeros((count, 4), dtype=np.int64)
        payload[:, :3] = positions_fp
        if not self.config.pcache:
            return int(self._full_packet_bytes(payload).sum()) * 8

        cache = self._cache_for(channel)
        result = cache.process_batch(atom_ids, positions_fp)
        traffic.pcache_hits += result.hits
        traffic.pcache_misses += result.misses
        bytes_total = 0
        if result.hit.any():
            residual_payload = np.zeros((result.hits, 4), dtype=np.int64)
            residual_payload[:, :3] = result.residuals[result.hit]
            sizes = inz.encoded_sizes(residual_payload)
            bytes_total += int(
                (DESCRIPTOR_BYTES + COMPRESSED_HEADER_BYTES + sizes).sum())
        miss = ~result.hit
        if miss.any():
            bytes_total += int(self._full_packet_bytes(payload[miss]).sum())
        return bytes_total * 8

    # ------------------------------------------------------------------
    # Force-return stream construction.
    # ------------------------------------------------------------------

    def _force_streams(self, home: np.ndarray,
                       exports: Dict[int, np.ndarray],
                       ) -> Dict[DirectedChannel, List[np.ndarray]]:
        """Channels carrying stream-set force returns.

        Default: the node that owned each pair computation unicasts the
        atom's forces back to its home node ("the node with the larger
        flat id computes the pair" convention — Section II-C guarantees
        each pair is computed on exactly one of its two nodes).

        With ``force_reduction`` (the in-network force reduction of the
        paper's footnote 3), partial forces for the same atom merge at
        router joins, so each channel of the owners->home reduction tree
        carries only *one* force packet per atom.
        """
        torus = self.torus
        streams: Dict[DirectedChannel, List[np.ndarray]] = {}
        if not self.force_reduction:
            for node_id, atom_indices in exports.items():
                if len(atom_indices) == 0:
                    continue
                importer = torus.coord_of(node_id)
                atom_homes = home[atom_indices]
                owner_mask = atom_homes < node_id
                for home_id in np.unique(atom_homes[owner_mask]):
                    atoms = atom_indices[owner_mask
                                         & (atom_homes == home_id)]
                    route = torus.dimension_order_route(
                        importer, torus.coord_of(int(home_id)), (0, 1, 2))
                    for a, b in zip(route, route[1:]):
                        streams.setdefault((a, b), []).append(atoms)
            return streams

        # In-network reduction: group atoms by (home, owner set) and
        # charge the reversed multicast tree's channels once per atom.
        owner_sets: Dict[int, List[int]] = {}
        for node_id, atom_indices in exports.items():
            atom_homes = home[atom_indices]
            for a in atom_indices[atom_homes < node_id]:
                owner_sets.setdefault(int(a), []).append(node_id)
        groups: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}
        for atom, owners in owner_sets.items():
            key = (int(home[atom]), tuple(sorted(owners)))
            groups.setdefault(key, []).append(atom)
        for (home_id, owner_ids), atoms in groups.items():
            home_coord = torus.coord_of(home_id)
            tree = multicast_tree(torus, home_coord,
                                  [torus.coord_of(o) for o in owner_ids])
            atom_array = np.array(atoms, dtype=np.int64)
            for (a, b) in tree:
                streams.setdefault((b, a), []).append(atom_array)
        return streams

    # ------------------------------------------------------------------
    # Step processing.
    # ------------------------------------------------------------------

    def process_step(self, snapshot: Snapshot) -> StepTraffic:
        """Account all channel traffic for one MD time step."""
        decomp = self.decomposition
        torus = self.torus
        positions = snapshot.positions
        home = decomp.home_nodes(positions)
        exports = decomp.export_map(positions, self.cutoff)

        # Destination node lists per exported atom.
        dest_lists: Dict[int, List[int]] = {}
        for node_id, atom_indices in exports.items():
            for a in atom_indices:
                dest_lists.setdefault(int(a), []).append(node_id)

        # Group atoms by (home node, destination set): each group shares
        # one multicast tree.
        groups: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}
        for atom, dests in dest_lists.items():
            key = (int(home[atom]), tuple(sorted(dests)))
            groups.setdefault(key, []).append(atom)

        traffic = StepTraffic()
        channel_positions: Dict[DirectedChannel,
                                List[np.ndarray]] = {}
        for (home_id, dest_ids), atoms in groups.items():
            src = torus.coord_of(home_id)
            dests = [torus.coord_of(d) for d in dest_ids]
            tree = multicast_tree(torus, src, dests)
            atom_array = np.array(atoms, dtype=np.int64)
            for channel in tree:
                channel_positions.setdefault(channel, []).append(atom_array)

        for channel, atom_arrays in sorted(channel_positions.items()):
            atom_ids = np.concatenate(atom_arrays)
            pos_fp = snapshot.positions_fp[atom_ids].astype(np.int64)
            bits = self._position_channel_bits(channel, atom_ids, pos_fp,
                                               traffic)
            traffic.position_bits += bits
            traffic.position_packets += len(atom_ids)
            traffic.per_channel_bits[channel] = (
                traffic.per_channel_bits.get(channel, 0) + bits)

        # Force returns: the node that owned the pair computation streams
        # the stream-set forces back to the atom's home node.  Each pair
        # is computed on exactly one of the two nodes holding its atoms
        # (Section II-C), so an exported atom returns forces from roughly
        # half of its importers; the deterministic owner convention here
        # is "the node with the larger flat id computes the pair".
        force_streams = self._force_streams(home, exports)

        for channel, atom_arrays in sorted(force_streams.items()):
            atom_ids = np.concatenate(atom_arrays)
            payload = np.zeros((len(atom_ids), 4), dtype=np.int64)
            payload[:, :3] = snapshot.forces_fp[atom_ids].astype(np.int64)
            bits = int(self._full_packet_bytes(payload).sum()) * 8
            traffic.force_bits += bits
            traffic.force_packets += len(atom_ids)
            traffic.per_channel_bits[channel] = (
                traffic.per_channel_bits.get(channel, 0) + bits)

        # On 2-wide torus axes the + and - cables of a node both reach the
        # same neighbor, so software balances each logical channel across
        # two physical cables; record the per-cable load.
        dims = self.decomposition.node_dims
        for channel in list(traffic.per_channel_bits):
            (a, b) = channel
            axis = next(i for i in range(3) if a[i] != b[i])
            if dims[axis] == 2:
                traffic.per_channel_bits[channel] //= 2

        # End-of-step markers keep the particle caches paced.
        if self.config.pcache:
            for cache in self._caches.values():
                cache.end_of_step()
            n_channels = max(len(traffic.per_channel_bits), 1)
            traffic.marker_bits = 8 * MARKER_BYTES * n_channels

        self.steps_processed += 1
        return traffic


@dataclass
class TrafficComparison:
    """Aggregate traffic of several configurations over the same steps."""

    atom_count: int
    steps: int
    bits: Dict[str, int]

    def reduction_vs_baseline(self, label: str) -> float:
        base = self.bits["baseline"]
        if base == 0:
            return 0.0
        return 1.0 - self.bits[label] / base


def compare_configurations(
        snapshots: Sequence[Snapshot], decomposition: Decomposition,
        cutoff: float,
        configs: Sequence[CompressionConfig] = (BASELINE, INZ_ONLY, FULL),
        pcache_warmup_steps: int = 3, **pcache_kwargs) -> TrafficComparison:
    """Price the same snapshot stream under several configurations.

    The first ``pcache_warmup_steps`` snapshots prime the particle caches
    (the predictor ramps constant -> linear -> quadratic) and are excluded
    from the reported totals, mirroring steady-state measurement.
    """
    models = [TrafficModel(decomposition, config, cutoff, **pcache_kwargs)
              for config in configs]
    bits = {config.label: 0 for config in configs}
    for i, snapshot in enumerate(snapshots):
        for config, model in zip(configs, models):
            traffic = model.process_step(snapshot)
            if i >= pcache_warmup_steps:
                bits[config.label] += traffic.total_bits
    measured = max(len(snapshots) - pcache_warmup_steps, 0)
    n_atoms = snapshots[0].positions_fp.shape[0] if snapshots else 0
    return TrafficComparison(atom_count=n_atoms, steps=measured, bits=bits)
