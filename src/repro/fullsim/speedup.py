"""Application-level speedup from compression — the Fig. 9b engine.

Speedup is the ratio of compression-off to compression-on time-step
durations, evaluated by running the *same* MD snapshot stream through the
traffic model under both configurations and pricing each step with the
time-step phase model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..md.decomposition import Decomposition
from ..md.engine import MdEngine, Snapshot
from .timestep import TimestepBreakdown, TimestepModel, TimestepParams
from .traffic import (
    BASELINE,
    FULL,
    INZ_ONLY,
    CompressionConfig,
    StepTraffic,
    TrafficModel,
)


@dataclass
class ConfigOutcome:
    """Per-configuration result of the full-system evaluation."""

    label: str
    total_bits: int
    mean_step_ns: float
    breakdowns: List[TimestepBreakdown]
    #: Particle-cache hit rate per processed step (every step, warmup
    #: included; 0.0 for configurations without a particle cache).
    pcache_hit_rates: List[float] = field(default_factory=list)


@dataclass
class FullSystemResult:
    """Everything the Fig. 9 and Fig. 12 benchmarks need for one system."""

    atom_count: int
    num_nodes: int
    outcomes: Dict[str, ConfigOutcome]

    def speedup(self, over: str = "baseline", config: str = "inz+pcache") -> float:
        return (self.outcomes[over].mean_step_ns
                / self.outcomes[config].mean_step_ns)

    def traffic_reduction(self, config: str) -> float:
        base = self.outcomes["baseline"].total_bits
        if base == 0:
            return 0.0
        return 1.0 - self.outcomes[config].total_bits / base


def evaluate_system(
        snapshots: Sequence[Snapshot], decomposition: Decomposition,
        cutoff: float,
        configs: Sequence[CompressionConfig] = (BASELINE, INZ_ONLY, FULL),
        timestep_params: Optional[TimestepParams] = None,
        pcache_warmup_steps: int = 3, **pcache_kwargs) -> FullSystemResult:
    """Price a snapshot stream under several configurations.

    The first ``pcache_warmup_steps`` steps prime the particle caches and
    are excluded from the reported means (steady-state measurement).
    """
    model = TimestepModel(timestep_params)
    num_nodes = decomposition.num_nodes
    outcomes: Dict[str, ConfigOutcome] = {}
    for config in configs:
        traffic_model = TrafficModel(decomposition, config, cutoff,
                                     **pcache_kwargs)
        total_bits = 0
        breakdowns: List[TimestepBreakdown] = []
        hit_rates: List[float] = []
        for i, snapshot in enumerate(snapshots):
            traffic = traffic_model.process_step(snapshot)
            lookups = traffic.pcache_hits + traffic.pcache_misses
            hit_rates.append(traffic.pcache_hits / lookups if lookups else 0.0)
            if i < pcache_warmup_steps:
                continue
            total_bits += traffic.total_bits
            breakdowns.append(model.evaluate(
                traffic, num_pairs=snapshot.record.num_pairs,
                num_atoms=snapshot.positions_fp.shape[0],
                num_nodes=num_nodes))
        mean_ns = (sum(b.total_ns for b in breakdowns) / len(breakdowns)
                   if breakdowns else 0.0)
        outcomes[config.label] = ConfigOutcome(
            label=config.label, total_bits=total_bits,
            mean_step_ns=mean_ns, breakdowns=breakdowns,
            pcache_hit_rates=hit_rates)
    return FullSystemResult(
        atom_count=snapshots[0].positions_fp.shape[0] if snapshots else 0,
        num_nodes=num_nodes, outcomes=outcomes)


def water_benchmark(n_atoms: int, node_dims=(2, 2, 2), steps: int = 7,
                    seed: int = 1,
                    configs: Sequence[CompressionConfig] = (BASELINE,
                                                            INZ_ONLY, FULL),
                    pcache_warmup_steps: int = 3,
                    **kwargs) -> FullSystemResult:
    """End-to-end: build a water box, run MD, price the traffic.

    This is the top-level entry point the Fig. 9a/9b/12 benchmarks call.
    """
    engine = MdEngine.water(n_atoms, seed=seed)
    snapshots = engine.run(steps)
    decomposition = Decomposition(box=engine.system.box,
                                  node_dims=node_dims)
    return evaluate_system(snapshots, decomposition, engine.field.cutoff,
                           configs=configs,
                           pcache_warmup_steps=pcache_warmup_steps,
                           **kwargs)
