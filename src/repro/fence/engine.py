"""The machine-level network fence — Section V of the paper.

A network fence guarantees that a destination receives the fence only
after every packet sent before it, from every participating source, has
arrived.  Anton 3 implements it with fence packets that merge at router
inputs and multicast along all valid paths; a fence with ``hops = k``
synchronizes all sources within k torus hops.

The inter-node part of the fence is simulated with real fence packets
crossing the real simulated channels: at every hop, each node re-emits a
merged fence to all six neighbors on both channel slices and on every
request VC ("fence packets are injected on all possible request-class
VCs", Section V-C), and a node advances to round ``r + 1`` only once it
has collected the full expected set of round-``r`` fences (the per-VC
fence counters of the Edge Router, collapsed to one counter per
(neighbor, slice, VC, round)).

The *intra-node* phases — merging the fence packets of all 576 GCs into
the Edge Network, and multicasting the final fence back to the GCs with
its counted-write delivery — are charged as calibrated latencies derived
from the core-network geometry rather than simulated per-GC, which keeps
a 128-node barrier tractable while preserving the published timing shape
(51.5 ns intra-node, ~91 ns + ~52 ns/hop beyond).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..topology.torus import Coord, DIRECTIONS
from ..netsim.machine import NetworkMachine
from ..netsim.packet import CoreAddress, Packet, PacketKind, TrafficClass


class FencePattern(enum.Enum):
    """Predefined source/destination component-type pairs (Section V-A)."""

    GC_TO_GC = "gc_to_gc"
    GC_TO_ICB = "gc_to_icb"


class FenceDomainError(RuntimeError):
    """A fence's domain is unreachable under the machine's faults.

    Raised synchronously by :meth:`FenceEngine.start_fence` — a graph
    check over the live channel fabric, zero simulated slices — when a
    dead router (or a link-fault partition) makes the k-hop barrier
    semantics unsatisfiable.  Failing fast here is what keeps
    fence-synchronized workloads from waiting on a barrier that can
    never complete.
    """


@dataclass
class FenceTiming:
    """Calibrated intra-node fence phase latencies (ns).

    ``aggregation_ns`` covers GC software issue, the fence merge tree
    through the Core Network to the chip edge, and Edge Network entry.
    ``delivery_ns`` covers the reverse multicast plus the counted write
    and blocking-read release at the GCs.  ``remote_exit_ns`` is the
    additional edge-network traversal paid when the last fence round
    arrives from a channel rather than from the local Core Network.
    ``internal_ns`` is the per-hop edge-network multicast time between
    arrival CAs and all exit CAs (why a fence hop costs more than a
    message hop, Section V-F).
    """

    aggregation_ns: float = 30.0
    delivery_ns: float = 21.5
    remote_exit_ns: float = 59.5
    internal_ns: float = 20.7
    icb_delivery_discount_ns: float = 12.0  # ICBs sit next to the edge


@dataclass
class _NodeFenceState:
    hops: int
    pattern: FencePattern
    expected: int = 0  # round arrivals required (live incoming copies)
    rounds_done: int = 0
    emitted_round: int = 0
    arrivals: Dict[int, int] = field(default_factory=dict)
    complete_ns: Optional[float] = None


class FenceEngine:
    """Coordinates network fences over a :class:`NetworkMachine`."""

    MAX_CONCURRENT = 14  # hardware limit (Section V-D)

    def __init__(self, machine: NetworkMachine,
                 timing: Optional[FenceTiming] = None,
                 request_vcs: int = 4, slices: int = 2) -> None:
        self.machine = machine
        self.timing = timing or FenceTiming()
        self.request_vcs = request_vcs
        self.slices = slices
        self._states: Dict[Tuple[int, Coord], _NodeFenceState] = {}
        self._active_fences: set = set()
        self._next_fence_id = 0
        self._on_complete: Dict[int, Callable[[Coord, float], None]] = {}
        self._bind_handlers()

    def _bind_handlers(self) -> None:
        """Point every chip's fence sink at this engine.

        Re-bound on every fence start so several engines can share one
        machine sequentially (e.g. ablations with different VC coverage).
        """
        for coord, chip in self.machine.chips.items():
            chip.fence_handler = self._make_handler(coord)

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    @property
    def copies_per_direction(self) -> int:
        """Fence packets per neighbor per round (slices x request VCs)."""
        return self.slices * self.request_vcs

    def start_fence(self, hops: int,
                    pattern: FencePattern = FencePattern.GC_TO_GC,
                    on_node_complete: Optional[
                        Callable[[Coord, float], None]] = None) -> int:
        """All GCs issue ``fence(pattern, hops)`` at the current sim time.

        Returns the fence id.  Completion per node is reported through
        ``on_node_complete(coord, time_ns)``.
        """
        if len(self._active_fences) >= self.MAX_CONCURRENT:
            raise RuntimeError(
                f"at most {self.MAX_CONCURRENT} concurrent network fences")
        if hops < 0:
            raise ValueError("hops must be >= 0")
        self._check_fence_domains(hops)
        self._bind_handlers()
        fence_id = self._next_fence_id
        self._next_fence_id += 1
        self._active_fences.add(fence_id)
        observer = getattr(self.machine, "observer", None)
        if observer is not None:
            observer.on_fence_start(fence_id, self.machine.sim.now)
        if on_node_complete is not None:
            self._on_complete[fence_id] = on_node_complete
        sim = self.machine.sim
        for coord in self.machine.chips:
            self._states[(fence_id, coord)] = _NodeFenceState(
                hops, pattern, expected=self._expected_arrivals(coord))
        # Intra-node aggregation, then either local completion (0 hops)
        # or emission of the first inter-node round.
        for coord in self.machine.chips:
            sim.after(self.timing.aggregation_ns,
                      lambda c=coord: self._aggregated(fence_id, c))
        return fence_id

    def barrier_latency(self, hops: int,
                        pattern: FencePattern = FencePattern.GC_TO_GC) -> float:
        """Run one fence to completion; returns the barrier latency in ns
        (start to the last node's completion), the Figure 11 metric."""
        sim = self.machine.sim
        start = sim.now
        completions: List[float] = []
        self.start_fence(hops, pattern,
                         on_node_complete=lambda c, t: completions.append(t))
        sim.run()
        if len(completions) != len(self.machine.chips):
            raise RuntimeError(
                f"barrier incomplete: {len(completions)} of "
                f"{len(self.machine.chips)} nodes finished")
        return max(completions) - start

    # ------------------------------------------------------------------
    # Fault awareness: live fence links and the domain pre-check.
    # ------------------------------------------------------------------

    def _fault_state(self):
        return getattr(self.machine, "fault_state", None)

    def _fence_pair_live(self, owner: Coord, direction: Tuple[int, int],
                         slice_index: int) -> bool:
        """Whether one outgoing (direction, slice) can carry fences.

        Fence packets cross channels on link VC 0, so a dead VC 0 kills
        the pair even when the link itself survives; a dead VC elsewhere
        is an *unrelated* fault the fence completes around.
        """
        state = self._fault_state()
        if state is None or not state.active:
            return True
        return not (state.is_channel_dead(owner, direction, slice_index)
                    or state.is_vc_dead(owner, direction, slice_index, 0))

    def _expected_arrivals(self, coord: Coord) -> int:
        """Round arrivals this node must collect: live incoming copies.

        Healthy machines take the constant-expected fast path — the
        exact pre-fault arithmetic, preserving byte-identical results.
        """
        state = self._fault_state()
        if state is None or not state.active:
            return len(DIRECTIONS) * self.copies_per_direction
        torus = self.machine.torus
        live_pairs = 0
        for axis, sign in DIRECTIONS:
            owner = torus.neighbor(coord, axis, sign)
            for slice_index in range(self.slices):
                if self._fence_pair_live(owner, (axis, -sign), slice_index):
                    live_pairs += 1
        return live_pairs * self.request_vcs

    def _check_fence_domains(self, hops: int) -> None:
        """Fail fast when faults make the k-hop barrier unsatisfiable.

        Pure graph analysis over the live channel fabric — zero
        simulated slices, so the error path is bounded by construction.
        Two failure modes: a dead router cannot contribute its GCs to
        any inter-node barrier, and link faults can stretch a
        neighbor's live distance beyond the fence's round budget (the
        k rounds only propagate information k live hops).
        """
        state = self._fault_state()
        if hops == 0 or state is None or not state.active:
            return
        torus = self.machine.torus
        if state.dead_nodes:
            raise FenceDomainError(
                f"fence domain partitioned: dead router(s) "
                f"{sorted(state.dead_nodes)} cannot join a {hops}-hop "
                f"barrier")
        for source in torus.nodes():
            dist = self._live_fence_distances(source)
            for member in torus.nodes_within(source, hops):
                if dist.get(member, hops + 1) > hops:
                    raise FenceDomainError(
                        f"fence domain partitioned: {member} is within "
                        f"{hops} torus hops of {source} but "
                        f"{'unreachable' if member not in dist else f'{dist[member]} live hops away'} "
                        f"over the surviving links")

    def _live_fence_distances(self, source: Coord) -> Dict[Coord, int]:
        """BFS hop distances from ``source`` over fence-capable links."""
        torus = self.machine.torus
        dist = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier = []
            for coord in frontier:
                for axis, sign in DIRECTIONS:
                    if not any(self._fence_pair_live(coord, (axis, sign), s)
                               for s in range(self.slices)):
                        continue
                    neighbor = torus.neighbor(coord, axis, sign)
                    if neighbor not in dist:
                        dist[neighbor] = dist[coord] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return dist

    # ------------------------------------------------------------------
    # Per-node fence progression.
    # ------------------------------------------------------------------

    def _aggregated(self, fence_id: int, coord: Coord) -> None:
        state = self._states[(fence_id, coord)]
        if state.hops == 0:
            self._complete(fence_id, coord, remote=False)
            return
        self._emit_round(fence_id, coord, round_index=1)

    def _emit_round(self, fence_id: int, coord: Coord,
                    round_index: int) -> None:
        state = self._states[(fence_id, coord)]
        state.emitted_round = round_index
        chip = self.machine.chips[coord]
        for axis, sign in DIRECTIONS:
            for slice_index in range(self.slices):
                if not self._fence_pair_live(coord, (axis, sign),
                                             slice_index):
                    continue  # fence-dead channel: neighbor won't count it
                ca = chip.channel_adapter((axis, sign), slice_index)
                for vc in range(self.request_vcs):
                    packet = Packet(
                        kind=PacketKind.FENCE,
                        traffic_class=TrafficClass.REQUEST,
                        src_node=coord,
                        dst_node=self.machine.torus.neighbor(
                            coord, axis, sign),
                        src_core=CoreAddress(0, 0, 0),
                        dst_core=CoreAddress(0, 0, 0),
                        num_flits=1,
                        payload_words=(fence_id, round_index),
                        slice_index=slice_index)
                    packet.injected_ns = self.machine.sim.now
                    ca.receive(packet, 0, "edge", None)

    def _make_handler(self, coord: Coord) -> Callable[[Packet], None]:
        def handler(packet: Packet) -> None:
            fence_id, round_index = packet.payload_words
            self._fence_arrival(fence_id, coord, round_index)
        return handler

    def _fence_arrival(self, fence_id: int, coord: Coord,
                       round_index: int) -> None:
        state = self._states.get((fence_id, coord))
        if state is None:
            raise RuntimeError(f"fence {fence_id} not active at {coord}")
        state.arrivals[round_index] = state.arrivals.get(round_index, 0) + 1
        if (round_index == state.rounds_done + 1
                and state.arrivals[round_index] == state.expected):
            self._round_complete(fence_id, coord)

    def _round_complete(self, fence_id: int, coord: Coord) -> None:
        state = self._states[(fence_id, coord)]
        state.rounds_done += 1
        sim = self.machine.sim
        if state.rounds_done >= state.hops:
            self._complete(fence_id, coord, remote=True)
            return
        next_round = state.rounds_done + 1
        sim.after(self.timing.internal_ns,
                  lambda: self._emit_round(fence_id, coord, next_round))
        # A node that received fast neighbors' fences may already hold a
        # complete set for the next round.
        if state.arrivals.get(next_round, 0) == state.expected:
            # Handled when our own emission finishes; arrival counting is
            # already complete, so schedule the check after emission.
            sim.after(self.timing.internal_ns,
                      lambda: self._round_complete(fence_id, coord))

    def _complete(self, fence_id: int, coord: Coord, remote: bool) -> None:
        state = self._states[(fence_id, coord)]
        timing = self.timing
        delay = timing.delivery_ns
        if remote:
            delay += timing.remote_exit_ns
        if state.pattern is FencePattern.GC_TO_ICB:
            delay = max(0.0, delay - timing.icb_delivery_discount_ns)
        sim = self.machine.sim

        def finish() -> None:
            state.complete_ns = sim.now
            self._active_fences.discard(fence_id)
            observer = getattr(self.machine, "observer", None)
            if observer is not None:
                observer.on_fence_node_complete(fence_id, coord, sim.now)
            callback = self._on_complete.get(fence_id)
            if callback is not None:
                callback(coord, sim.now)

        sim.after(delay, finish)
