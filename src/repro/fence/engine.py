"""The machine-level network fence — Section V of the paper.

A network fence guarantees that a destination receives the fence only
after every packet sent before it, from every participating source, has
arrived.  Anton 3 implements it with fence packets that merge at router
inputs and multicast along all valid paths; a fence with ``hops = k``
synchronizes all sources within k torus hops.

The inter-node part of the fence is simulated with real fence packets
crossing the real simulated channels: at every hop, each node re-emits a
merged fence to all six neighbors on both channel slices and on every
request VC ("fence packets are injected on all possible request-class
VCs", Section V-C), and a node advances to round ``r + 1`` only once it
has collected the full expected set of round-``r`` fences (the per-VC
fence counters of the Edge Router, collapsed to one counter per
(neighbor, slice, VC, round)).

The *intra-node* phases — merging the fence packets of all 576 GCs into
the Edge Network, and multicasting the final fence back to the GCs with
its counted-write delivery — are charged as calibrated latencies derived
from the core-network geometry rather than simulated per-GC, which keeps
a 128-node barrier tractable while preserving the published timing shape
(51.5 ns intra-node, ~91 ns + ~52 ns/hop beyond).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..topology.torus import Coord, DIRECTIONS
from ..netsim.machine import NetworkMachine
from ..netsim.packet import CoreAddress, Packet, PacketKind, TrafficClass


class FencePattern(enum.Enum):
    """Predefined source/destination component-type pairs (Section V-A)."""

    GC_TO_GC = "gc_to_gc"
    GC_TO_ICB = "gc_to_icb"


@dataclass
class FenceTiming:
    """Calibrated intra-node fence phase latencies (ns).

    ``aggregation_ns`` covers GC software issue, the fence merge tree
    through the Core Network to the chip edge, and Edge Network entry.
    ``delivery_ns`` covers the reverse multicast plus the counted write
    and blocking-read release at the GCs.  ``remote_exit_ns`` is the
    additional edge-network traversal paid when the last fence round
    arrives from a channel rather than from the local Core Network.
    ``internal_ns`` is the per-hop edge-network multicast time between
    arrival CAs and all exit CAs (why a fence hop costs more than a
    message hop, Section V-F).
    """

    aggregation_ns: float = 30.0
    delivery_ns: float = 21.5
    remote_exit_ns: float = 59.5
    internal_ns: float = 20.7
    icb_delivery_discount_ns: float = 12.0  # ICBs sit next to the edge


@dataclass
class _NodeFenceState:
    hops: int
    pattern: FencePattern
    rounds_done: int = 0
    emitted_round: int = 0
    arrivals: Dict[int, int] = field(default_factory=dict)
    complete_ns: Optional[float] = None


class FenceEngine:
    """Coordinates network fences over a :class:`NetworkMachine`."""

    MAX_CONCURRENT = 14  # hardware limit (Section V-D)

    def __init__(self, machine: NetworkMachine,
                 timing: Optional[FenceTiming] = None,
                 request_vcs: int = 4, slices: int = 2) -> None:
        self.machine = machine
        self.timing = timing or FenceTiming()
        self.request_vcs = request_vcs
        self.slices = slices
        self._states: Dict[Tuple[int, Coord], _NodeFenceState] = {}
        self._active_fences: set = set()
        self._next_fence_id = 0
        self._on_complete: Dict[int, Callable[[Coord, float], None]] = {}
        self._bind_handlers()

    def _bind_handlers(self) -> None:
        """Point every chip's fence sink at this engine.

        Re-bound on every fence start so several engines can share one
        machine sequentially (e.g. ablations with different VC coverage).
        """
        for coord, chip in self.machine.chips.items():
            chip.fence_handler = self._make_handler(coord)

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    @property
    def copies_per_direction(self) -> int:
        """Fence packets per neighbor per round (slices x request VCs)."""
        return self.slices * self.request_vcs

    def start_fence(self, hops: int,
                    pattern: FencePattern = FencePattern.GC_TO_GC,
                    on_node_complete: Optional[
                        Callable[[Coord, float], None]] = None) -> int:
        """All GCs issue ``fence(pattern, hops)`` at the current sim time.

        Returns the fence id.  Completion per node is reported through
        ``on_node_complete(coord, time_ns)``.
        """
        if len(self._active_fences) >= self.MAX_CONCURRENT:
            raise RuntimeError(
                f"at most {self.MAX_CONCURRENT} concurrent network fences")
        if hops < 0:
            raise ValueError("hops must be >= 0")
        self._bind_handlers()
        fence_id = self._next_fence_id
        self._next_fence_id += 1
        self._active_fences.add(fence_id)
        if on_node_complete is not None:
            self._on_complete[fence_id] = on_node_complete
        sim = self.machine.sim
        for coord in self.machine.chips:
            self._states[(fence_id, coord)] = _NodeFenceState(hops, pattern)
        # Intra-node aggregation, then either local completion (0 hops)
        # or emission of the first inter-node round.
        for coord in self.machine.chips:
            sim.after(self.timing.aggregation_ns,
                      lambda c=coord: self._aggregated(fence_id, c))
        return fence_id

    def barrier_latency(self, hops: int,
                        pattern: FencePattern = FencePattern.GC_TO_GC) -> float:
        """Run one fence to completion; returns the barrier latency in ns
        (start to the last node's completion), the Figure 11 metric."""
        sim = self.machine.sim
        start = sim.now
        completions: List[float] = []
        self.start_fence(hops, pattern,
                         on_node_complete=lambda c, t: completions.append(t))
        sim.run()
        if len(completions) != len(self.machine.chips):
            raise RuntimeError(
                f"barrier incomplete: {len(completions)} of "
                f"{len(self.machine.chips)} nodes finished")
        return max(completions) - start

    # ------------------------------------------------------------------
    # Per-node fence progression.
    # ------------------------------------------------------------------

    def _aggregated(self, fence_id: int, coord: Coord) -> None:
        state = self._states[(fence_id, coord)]
        if state.hops == 0:
            self._complete(fence_id, coord, remote=False)
            return
        self._emit_round(fence_id, coord, round_index=1)

    def _emit_round(self, fence_id: int, coord: Coord,
                    round_index: int) -> None:
        state = self._states[(fence_id, coord)]
        state.emitted_round = round_index
        chip = self.machine.chips[coord]
        for axis, sign in DIRECTIONS:
            for slice_index in range(self.slices):
                ca = chip.channel_adapter((axis, sign), slice_index)
                for vc in range(self.request_vcs):
                    packet = Packet(
                        kind=PacketKind.FENCE,
                        traffic_class=TrafficClass.REQUEST,
                        src_node=coord,
                        dst_node=self.machine.torus.neighbor(
                            coord, axis, sign),
                        src_core=CoreAddress(0, 0, 0),
                        dst_core=CoreAddress(0, 0, 0),
                        num_flits=1,
                        payload_words=(fence_id, round_index),
                        slice_index=slice_index)
                    packet.injected_ns = self.machine.sim.now
                    ca.receive(packet, 0, "edge", None)

    def _make_handler(self, coord: Coord) -> Callable[[Packet], None]:
        def handler(packet: Packet) -> None:
            fence_id, round_index = packet.payload_words
            self._fence_arrival(fence_id, coord, round_index)
        return handler

    def _fence_arrival(self, fence_id: int, coord: Coord,
                       round_index: int) -> None:
        state = self._states.get((fence_id, coord))
        if state is None:
            raise RuntimeError(f"fence {fence_id} not active at {coord}")
        state.arrivals[round_index] = state.arrivals.get(round_index, 0) + 1
        expected = len(DIRECTIONS) * self.copies_per_direction
        if (round_index == state.rounds_done + 1
                and state.arrivals[round_index] == expected):
            self._round_complete(fence_id, coord)

    def _round_complete(self, fence_id: int, coord: Coord) -> None:
        state = self._states[(fence_id, coord)]
        state.rounds_done += 1
        sim = self.machine.sim
        if state.rounds_done >= state.hops:
            self._complete(fence_id, coord, remote=True)
            return
        next_round = state.rounds_done + 1
        sim.after(self.timing.internal_ns,
                  lambda: self._emit_round(fence_id, coord, next_round))
        # A node that received fast neighbors' fences may already hold a
        # complete set for the next round.
        expected = len(DIRECTIONS) * self.copies_per_direction
        if state.arrivals.get(next_round, 0) == expected:
            # Handled when our own emission finishes; arrival counting is
            # already complete, so schedule the check after emission.
            sim.after(self.timing.internal_ns,
                      lambda: self._round_complete(fence_id, coord))

    def _complete(self, fence_id: int, coord: Coord, remote: bool) -> None:
        state = self._states[(fence_id, coord)]
        timing = self.timing
        delay = timing.delivery_ns
        if remote:
            delay += timing.remote_exit_ns
        if state.pattern is FencePattern.GC_TO_ICB:
            delay = max(0.0, delay - timing.icb_delivery_discount_ns)
        sim = self.machine.sim

        def finish() -> None:
            state.complete_ns = sim.now
            self._active_fences.discard(fence_id)
            callback = self._on_complete.get(fence_id)
            if callback is not None:
                callback(coord, sim.now)

        sim.after(delay, finish)
