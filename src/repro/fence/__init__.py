"""The network fence: in-network merged synchronization (Section V)."""

from .engine import FenceEngine, FencePattern, FenceTiming
from .merge import (
    FenceConfigError,
    FenceEdge,
    FenceMergeUnit,
    FenceRouterModel,
    configure_fence_network,
    run_fence_flood,
)

__all__ = [
    "FenceEngine",
    "FencePattern",
    "FenceTiming",
    "FenceConfigError",
    "FenceEdge",
    "FenceMergeUnit",
    "FenceRouterModel",
    "configure_fence_network",
    "run_fence_flood",
]
