"""The network fence: in-network merged synchronization (Section V)."""

from .engine import FenceDomainError, FenceEngine, FencePattern, FenceTiming
from .merge import (
    FenceConfigError,
    FenceEdge,
    FenceMergeUnit,
    FenceRouterModel,
    configure_fence_network,
    run_fence_flood,
)
from .surface import measure_fence_curve

__all__ = [
    "measure_fence_curve",
    "FenceDomainError",
    "FenceEngine",
    "FencePattern",
    "FenceTiming",
    "FenceConfigError",
    "FenceEdge",
    "FenceMergeUnit",
    "FenceRouterModel",
    "configure_fence_network",
    "run_fence_flood",
]
