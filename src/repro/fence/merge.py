"""Router-level fence merging and multicast — Section V-B / Figure 10.

Each router input port owns a fence counter and a preconfigured *expected
count* plus a *fence output mask*.  Arriving fence packets increment the
counter instead of being forwarded; when the counter reaches the expected
value, a single fence packet is multicast to every output in the mask and
the counter resets.  Because the router keeps forwarding non-fence packets
while waiting, the network fence is a one-way barrier.

:class:`FenceMergeUnit` models one input port's counter;
:class:`FenceRouterModel` models a router's set of input units, and
:func:`configure_fence_network` computes expected counts and output masks
for an arbitrary multicast DAG the way Anton 3's software preconfigures
them per fence pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple


class FenceConfigError(ValueError):
    """Raised for inconsistent fence network configurations."""


@dataclass
class FenceMergeUnit:
    """One input port's fence counter (Figure 10a).

    Attributes:
        expected: Count at which the merged fence fires.
        output_mask: Output ports the merged fence is multicast to.
    """

    expected: int
    output_mask: FrozenSet[str]
    count: int = 0
    fires: int = 0

    def __post_init__(self) -> None:
        if self.expected < 1:
            raise FenceConfigError("expected count must be >= 1")

    def arrive(self) -> Tuple[bool, FrozenSet[str]]:
        """Register one fence arrival.

        Returns ``(fired, outputs)``; when fired, the counter has reset
        and one fence must be sent to each port in ``outputs``.
        """
        self.count += 1
        if self.count > self.expected:
            raise FenceConfigError(
                f"fence counter overflow: {self.count} > {self.expected}")
        if self.count == self.expected:
            self.count = 0
            self.fires += 1
            return True, self.output_mask
        return False, frozenset()


class FenceRouterModel:
    """A router's per-input fence units, as configured for one pattern."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: Dict[str, FenceMergeUnit] = {}

    def configure_input(self, in_port: str, expected: int,
                        output_mask: Iterable[str]) -> None:
        self.inputs[in_port] = FenceMergeUnit(expected,
                                              frozenset(output_mask))

    def fence_arrival(self, in_port: str) -> FrozenSet[str]:
        """Process a fence on ``in_port``; returns ports to multicast to."""
        unit = self.inputs.get(in_port)
        if unit is None:
            raise FenceConfigError(
                f"{self.name}: no fence unit on input {in_port!r}")
        fired, outputs = unit.arrive()
        return outputs if fired else frozenset()


@dataclass(frozen=True)
class FenceEdge:
    """A directed link of the fence multicast DAG."""

    src: str        # router (or source component) name
    dst: str        # downstream router name
    dst_port: str   # input port at the destination


def configure_fence_network(
        sources: Mapping[str, Sequence[FenceEdge]],
        router_edges: Mapping[Tuple[str, str], Sequence[FenceEdge]],
) -> Dict[str, FenceRouterModel]:
    """Build per-router fence configuration for a multicast DAG.

    Args:
        sources: For each source component, the links its fence packet is
            injected on.
        router_edges: For each ``(router, input port)``, the downstream
            links a merged fence from that input must be multicast to.
            An empty sequence marks a delivery point (fence consumed).

    Returns:
        Router name -> configured :class:`FenceRouterModel`.  The expected
        count of each input port equals the number of upstream links that
        feed it (one merged fence arrives per upstream link, exactly as in
        Figure 10b).
    """
    inbound: Dict[Tuple[str, str], int] = {}
    for edges in sources.values():
        for edge in edges:
            inbound[(edge.dst, edge.dst_port)] = inbound.get(
                (edge.dst, edge.dst_port), 0) + 1
    for edges in router_edges.values():
        for edge in edges:
            inbound[(edge.dst, edge.dst_port)] = inbound.get(
                (edge.dst, edge.dst_port), 0) + 1

    routers: Dict[str, FenceRouterModel] = {}
    for (router_name, in_port), edges in router_edges.items():
        if (router_name, in_port) not in inbound:
            raise FenceConfigError(
                f"{router_name}[{in_port}] configured but unreachable")
        router = routers.setdefault(router_name,
                                    FenceRouterModel(router_name))
        mask = {_port_key(edge) for edge in edges}
        router.configure_input(
            in_port, expected=inbound[(router_name, in_port)],
            output_mask=mask)
    return routers


def _port_key(edge: FenceEdge) -> str:
    """Stable identifier for a downstream link in an output mask."""
    return f"{edge.dst}:{edge.dst_port}"


def run_fence_flood(sources: Mapping[str, Sequence[FenceEdge]],
                    router_edges: Mapping[Tuple[str, str], Sequence[FenceEdge]],
                    ) -> Dict[str, int]:
    """Simulate one complete fence over the DAG; returns deliveries.

    Every source fires exactly one fence packet down each of its links;
    routers merge and multicast per their configuration.  The return value
    maps each delivery point ``"router:port"`` to the number of fences it
    consumed (correct configurations deliver exactly one everywhere).
    """
    routers = configure_fence_network(sources, router_edges)
    deliveries: Dict[str, int] = {}
    frontier: List[FenceEdge] = []
    for edges in sources.values():
        frontier.extend(edges)
    guard = 0
    while frontier:
        guard += 1
        if guard > 1_000_000:
            raise FenceConfigError("fence flood did not terminate")
        edge = frontier.pop()
        key = (edge.dst, edge.dst_port)
        downstream = router_edges.get(key)
        if downstream is None:
            # Unconfigured endpoint: raw consumption (component sink).
            name = f"{edge.dst}:{edge.dst_port}"
            deliveries[name] = deliveries.get(name, 0) + 1
            continue
        unit = routers[edge.dst].inputs[edge.dst_port]
        fired, __ = unit.arrive()
        if not fired:
            continue
        if downstream:
            frontier.extend(downstream)
        else:
            # Configured delivery point: merged fence consumed here.
            name = f"{edge.dst}:{edge.dst_port}"
            deliveries[name] = deliveries.get(name, 0) + 1
    return deliveries
