"""Pure-function experiment surface for network-fence barriers.

Picklable entry point for the parallel runner (:mod:`repro.runner`):
builds a fresh machine, runs one barrier per requested synchronization
domain, and returns JSON-able latencies plus the Figure 11 linear fit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..netsim.config import MachineConfig
from ..netsim.surface import build_machine
from .engine import FenceEngine, FencePattern


def measure_fence_curve(
    dims: Sequence[int] = (4, 4, 8),
    chip_cols: int = 24,
    chip_rows: int = 12,
    seed: int = 42,
    hops: Optional[Sequence[int]] = None,
    max_hops: Optional[int] = None,
    pattern: str = "gc_to_gc",
    request_vcs: int = 4,
    slices: int = 2,
) -> dict:
    """Barrier latency per synchronization-domain hop count (Figure 11).

    ``hops`` pins the exact domain sizes to measure; otherwise every
    domain from 0 to ``max_hops`` (default: the torus diameter) is run.
    ``request_vcs``/``slices`` control fence-copy coverage, as in the
    512-node scaling study.
    """
    from ..analysis.fits import fit_latency_vs_hops

    machine = build_machine(config=MachineConfig(
        dims=tuple(dims), chip_cols=chip_cols, chip_rows=chip_rows,
        seed=seed, routing="randomized-minimal"))
    engine = FenceEngine(machine, request_vcs=request_vcs, slices=slices)
    if hops is None:
        limit = machine.torus.dims.diameter if max_hops is None else max_hops
        hop_list = list(range(limit + 1))
    else:
        hop_list = [int(h) for h in hops]
    fence_pattern = FencePattern(pattern)
    latencies = {h: float(engine.barrier_latency(h, fence_pattern)) for h in hop_list}
    fit = None
    if len([h for h in hop_list if h > 0]) >= 2:
        line = fit_latency_vs_hops(latencies)
        fit = {
            "fixed_ns": float(line.fixed_ns),
            "per_hop_ns": float(line.per_hop_ns),
            "r_squared": float(line.r_squared),
        }
    return {
        "num_nodes": machine.torus.dims.num_nodes,
        "pattern": fence_pattern.value,
        "copies_per_direction": engine.copies_per_direction,
        "latencies": {str(h): ns for h, ns in sorted(latencies.items())},
        "fit": fit,
    }
