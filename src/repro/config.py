"""Machine constants for the Anton 3 network model.

Every number in this module is taken from, or derived from, the HPCA 2022
paper "The Specialized High-Performance Network on Anton 3".  Table I of the
paper is reproduced verbatim in :data:`ASIC_GENERATIONS`; the remaining
constants come from the architecture description in Sections II-V.

The values are grouped into small frozen dataclasses so that simulations can
be parameterized (e.g. for ablation studies) while the defaults always
describe the machine as published.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Table I: key features for the three Anton ASICs.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AsicGeneration:
    """One column of Table I in the paper."""

    name: str
    power_on_year: int
    process_nm: int
    die_size_mm2: float
    clock_ghz: float
    max_pairwise_gops: float
    num_serdes: int
    serdes_lane_gbps: float
    inter_node_bidir_gbs: float


ASIC_GENERATIONS: Dict[str, AsicGeneration] = {
    "anton1": AsicGeneration(
        name="Anton 1",
        power_on_year=2008,
        process_nm=90,
        die_size_mm2=305.0,
        clock_ghz=0.970,
        max_pairwise_gops=31.0,
        num_serdes=66,
        serdes_lane_gbps=4.6,
        inter_node_bidir_gbs=76.0,
    ),
    "anton2": AsicGeneration(
        name="Anton 2",
        power_on_year=2013,
        process_nm=40,
        die_size_mm2=408.0,
        clock_ghz=1.65,
        max_pairwise_gops=251.0,
        num_serdes=96,
        serdes_lane_gbps=14.0,
        inter_node_bidir_gbs=336.0,
    ),
    "anton3": AsicGeneration(
        name="Anton 3",
        power_on_year=2020,
        process_nm=7,
        die_size_mm2=451.0,
        clock_ghz=2.80,
        max_pairwise_gops=5914.0,
        num_serdes=96,
        serdes_lane_gbps=29.0,
        inter_node_bidir_gbs=696.0,
    ),
}


# ---------------------------------------------------------------------------
# Anton 3 chip geometry and network parameters (Sections II-III).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChipConfig:
    """Physical layout and network parameters of one Anton 3 ASIC."""

    clock_ghz: float = 2.80
    core_tile_rows: int = 12
    core_tile_cols: int = 24
    edge_tile_rows: int = 12          # per side (left and right)
    edge_router_cols: int = 3         # Edge Routers per Edge Tile
    gcs_per_core_tile: int = 2
    ppims_per_core_tile: int = 2
    icbs_per_edge_tile: int = 2
    serdes_lanes: int = 96
    lane_gbps: float = 29.0
    lanes_per_neighbor: int = 16      # 96 lanes / 6 torus neighbors
    channel_slices_per_neighbor: int = 2

    # Packet format (Section III-B).
    flit_bits: int = 192
    header_bits: int = 64
    payload_bits: int = 128
    max_flits_per_packet: int = 2
    input_queue_flits: int = 8        # per VC

    # Router pipeline latencies, in core clock cycles (Section III-B).
    core_u_hop_cycles: int = 2
    core_v_hop_cycles: int = 5
    edge_hop_cycles: int = 3

    # Virtual channels (Section III-B2): 4 request VCs + 1 response VC.
    core_vcs: int = 2
    edge_request_vcs: int = 4
    edge_response_vcs: int = 1

    # Fence hardware limits (Section V-D).
    max_concurrent_fences: int = 14
    fence_counters_per_edge_input: int = 96

    # Particle cache organisation (Section IV-B).
    pcache_entries: int = 1024
    pcache_ways: int = 4
    pcache_delta_bits: int = 12       # D1/D2 storage per coordinate

    @property
    def cycle_ns(self) -> float:
        """Duration of one core clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    @property
    def edge_vcs(self) -> int:
        """Total VCs in the Edge Router (Section III-B2: five)."""
        return self.edge_request_vcs + self.edge_response_vcs

    @property
    def num_gcs(self) -> int:
        return self.core_tile_rows * self.core_tile_cols * self.gcs_per_core_tile

    @property
    def num_ppims(self) -> int:
        return self.core_tile_rows * self.core_tile_cols * self.ppims_per_core_tile

    @property
    def num_icbs(self) -> int:
        return 2 * self.edge_tile_rows * self.icbs_per_edge_tile

    @property
    def num_core_routers(self) -> int:
        return self.core_tile_rows * self.core_tile_cols

    @property
    def num_edge_routers(self) -> int:
        return 2 * self.edge_tile_rows * self.edge_router_cols

    @property
    def num_channel_adapters(self) -> int:
        # 24 Channel Adapters (Table II): 96 lanes / 4 lanes each, equiv.
        # one CA per Edge Tile.
        return 2 * self.edge_tile_rows

    @property
    def num_row_adapters(self) -> int:
        # Table II lists 72 Row Adapters: one per Edge Router row position
        # (ICB RAs plus Core Network RAs).
        return 72

    @property
    def neighbor_bandwidth_gbps(self) -> float:
        """Unidirectional bandwidth toward one torus neighbor (Gb/s)."""
        return self.lanes_per_neighbor * self.lane_gbps

    def bits_to_channel_ns(self, bits: float) -> float:
        """Serialization time of ``bits`` over one neighbor channel."""
        return bits / self.neighbor_bandwidth_gbps


@dataclass(frozen=True)
class MachineConfig:
    """A machine is a 3D torus of nodes, one ASIC per node."""

    dims: Tuple[int, int, int] = (4, 4, 8)     # the paper's 128-node machine
    chip: ChipConfig = field(default_factory=ChipConfig)

    @property
    def num_nodes(self) -> int:
        x, y, z = self.dims
        return x * y * z

    @property
    def diameter_hops(self) -> int:
        """Maximum minimal hop distance between any two nodes."""
        return sum(d // 2 for d in self.dims)

    def scaled(self, dims: Tuple[int, int, int]) -> "MachineConfig":
        return replace(self, dims=dims)


DEFAULT_CHIP = ChipConfig()
DEFAULT_MACHINE = MachineConfig()

# Published headline measurements used as reproduction targets.
PAPER_MIN_ONE_HOP_LATENCY_NS = 55.0
PAPER_LATENCY_FIXED_NS = 55.9
PAPER_LATENCY_PER_HOP_NS = 34.2
PAPER_FENCE_ZERO_HOP_NS = 51.5
PAPER_FENCE_FIXED_NS = 91.2
PAPER_FENCE_PER_HOP_NS = 51.8
PAPER_FENCE_GLOBAL_128_NS = 504.0
PAPER_INZ_REDUCTION_RANGE = (0.32, 0.40)
PAPER_INZ_PCACHE_REDUCTION_RANGE = (0.45, 0.62)
PAPER_APP_SPEEDUP_RANGE = (1.18, 1.62)
PAPER_TIMESTEP_UNCOMPRESSED_NS = 2000.0
PAPER_TIMESTEP_COMPRESSED_NS = 900.0
