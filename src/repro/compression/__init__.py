"""Application-specific compression: INZ and the particle cache (Sec. IV)."""

from . import inz
from .extrapolation import (
    ORDER_CONSTANT,
    ORDER_LINEAR,
    ORDER_QUADRATIC,
    CoordinatePredictor,
    PositionPredictor,
    saturate,
    wrap_i32,
)
from .frames import (
    KIND_COMPRESSED,
    KIND_FENCE,
    KIND_FULL,
    KIND_MARKER,
    ChannelAccounting,
    FrameConfig,
    FrameItem,
    chunk_into_frames,
    deserialize,
    serialize,
)
from .inz import InzEncoded, decode, decode_signed, encode, encode_signed
from .particle_cache import (
    CacheStats,
    CompressedPacket,
    EndOfStepPacket,
    FullPacket,
    ParticleCacheChannel,
    PositionPacket,
    ReceiveSideCache,
    SendSideCache,
)

__all__ = [
    "inz",
    "ORDER_CONSTANT",
    "ORDER_LINEAR",
    "ORDER_QUADRATIC",
    "CoordinatePredictor",
    "PositionPredictor",
    "saturate",
    "wrap_i32",
    "KIND_COMPRESSED",
    "KIND_FENCE",
    "KIND_FULL",
    "KIND_MARKER",
    "ChannelAccounting",
    "FrameConfig",
    "FrameItem",
    "chunk_into_frames",
    "deserialize",
    "serialize",
    "InzEncoded",
    "decode",
    "decode_signed",
    "encode",
    "encode_signed",
    "CacheStats",
    "CompressedPacket",
    "EndOfStepPacket",
    "FullPacket",
    "ParticleCacheChannel",
    "PositionPacket",
    "ReceiveSideCache",
    "SendSideCache",
]
