"""Array-based particle cache for full-system traffic accounting.

:class:`VectorParticleCache` is a performance-oriented implementation of
the Section IV-B particle cache: identical organization (set-associative,
finite-difference quadratic extrapolation, step-stamped eviction) but
processed one *batch* per call with numpy, because the full-system traffic
model pushes hundreds of thousands of position packets per simulated time
step through each channel.

Semantics relative to the reference object model
(:class:`~repro.compression.particle_cache.ParticleCacheChannel`):

* Hit/predict/update behavior is bit-identical (same wrap and saturation
  arithmetic; cross-checked by tests).
* Within one batch, all hits are processed before the misses' allocations
  (hardware processes packets in stream order; the difference is only
  visible when a miss evicts an entry that is hit *later in the same
  step*, which the stamp-threshold policy makes impossible: entries hit
  in the current step are never stale).
* Only the byte counts of the transmitted residuals are produced — the
  send and receive sides are mirrors, so one array suffices for traffic
  accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .extrapolation import ORDER_QUADRATIC

_WRAP = np.int64(1) << 32
_HALF = np.int64(1) << 31


def _wrap_i32(values: np.ndarray) -> np.ndarray:
    return (values + _HALF) % _WRAP - _HALF


@dataclass
class BatchResult:
    """Outcome of one batch of position packets through the cache."""

    hit: np.ndarray          # (M,) bool
    residuals: np.ndarray    # (M, 3) int64, valid where hit
    allocated: np.ndarray    # (M,) bool (miss that installed an entry)

    @property
    def hits(self) -> int:
        return int(self.hit.sum())

    @property
    def misses(self) -> int:
        return int((~self.hit).sum())


class VectorParticleCache:
    """One channel's synchronized particle cache, batch-processed."""

    def __init__(self, entries: int = 1024, ways: int = 4,
                 delta_bits: int = 12, order: int = ORDER_QUADRATIC,
                 evict_threshold: int = 1) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.num_sets = entries // ways
        self.ways = ways
        self.order = order
        self.evict_threshold = evict_threshold
        self._sat_lo = -(1 << (delta_bits - 1))
        self._sat_hi = (1 << (delta_bits - 1)) - 1
        self.step = 0
        self.tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self.stamps = np.zeros((self.num_sets, ways), dtype=np.int64)
        self.d0 = np.zeros((self.num_sets, ways, 3), dtype=np.int64)
        self.d1 = np.zeros((self.num_sets, ways, 3), dtype=np.int64)
        self.d2 = np.zeros((self.num_sets, ways, 3), dtype=np.int64)
        self.total_hits = 0
        self.total_misses = 0
        self.total_evictions = 0

    def _saturate(self, values: np.ndarray) -> np.ndarray:
        return np.clip(values, self._sat_lo, self._sat_hi)

    def process_batch(self, particle_ids: np.ndarray,
                      positions: np.ndarray) -> BatchResult:
        """Run one step's position packets (unique ids) through the cache.

        Args:
            particle_ids: (M,) unique non-negative particle identifiers.
            positions: (M, 3) signed 32-bit fixed-point positions.
        """
        ids = np.asarray(particle_ids, dtype=np.int64)
        pos = _wrap_i32(np.asarray(positions, dtype=np.int64))
        m = len(ids)
        # Same multiplicative index mix as the reference cache (see
        # particle_cache._CacheCore.set_index).
        mixed = (ids * 0x9E3779B1) & 0xFFFF_FFFF
        mixed ^= mixed >> 16
        set_idx = mixed % self.num_sets

        # Way lookup: compare against all ways of each packet's set.
        candidate_tags = self.tags[set_idx]              # (M, ways)
        matches = candidate_tags == ids[:, None]
        hit = matches.any(axis=1)
        way = np.where(hit, np.argmax(matches, axis=1), 0)

        residuals = np.zeros((m, 3), dtype=np.int64)
        if hit.any():
            hs, hw = set_idx[hit], way[hit]
            predict = self.d0[hs, hw].copy()
            if self.order >= 1:
                predict += self.d1[hs, hw]
            if self.order >= 2:
                predict += self.d2[hs, hw]
            predict = _wrap_i32(predict)
            actual = pos[hit]
            residuals[hit] = _wrap_i32(actual - predict)
            prev_d0 = self.d0[hs, hw]
            prev_d1 = self.d1[hs, hw]
            new_d1 = self._saturate(_wrap_i32(actual - prev_d0))
            new_d2 = self._saturate(_wrap_i32(actual - prev_d0 - prev_d1))
            self.d0[hs, hw] = actual
            self.d1[hs, hw] = new_d1
            self.d2[hs, hw] = new_d2
            self.stamps[hs, hw] = self.step

        allocated = np.zeros(m, dtype=bool)
        miss_indices = np.nonzero(~hit)[0]
        for i in miss_indices:
            s = set_idx[i]
            ways_tags = self.tags[s]
            free = np.nonzero(ways_tags < 0)[0]
            if len(free):
                w = free[0]
            else:
                stale = np.nonzero(
                    self.step - self.stamps[s] > self.evict_threshold)[0]
                if len(stale) == 0:
                    continue  # allocation failure: full packet, no entry
                w = stale[np.argmin(self.stamps[s][stale])]
                self.total_evictions += 1
            self.tags[s, w] = ids[i]
            self.stamps[s, w] = self.step
            self.d0[s, w] = pos[i]
            self.d1[s, w] = 0
            self.d2[s, w] = 0
            allocated[i] = True

        self.total_hits += int(hit.sum())
        self.total_misses += int((~hit).sum())
        return BatchResult(hit=hit, residuals=residuals, allocated=allocated)

    def end_of_step(self) -> None:
        self.step += 1

    @property
    def occupancy(self) -> int:
        return int((self.tags >= 0).sum())
