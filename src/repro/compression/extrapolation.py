"""Finite-difference position extrapolation — Section IV-B2 of the paper.

The particle cache predicts each coordinate of a particle's next position
with a quadratic extrapolator expressed in finite differences::

    D0[t] = x[t]
    D1[t] = x[t] - x[t-1]
    D2[t] = x[t] - 2 x[t-1] + x[t-2]

    estimate:  x_hat[t] = D0[t-1] + D1[t-1] + D2[t-1]
                       (= 3 x[t-1] - 3 x[t-2] + x[t-3])

and the state updates after observing the true ``x[t]``::

    D0[t] = x[t]
    D1[t] = x[t] - D0[t-1]
    D2[t] = x[t] - D0[t-1] - D1[t-1]

On allocation D1 and D2 are zero, so the estimator automatically ramps from
a constant predictor to linear and then quadratic as history accumulates —
no special-case handling, exactly as the paper notes.

The hardware stores D1 and D2 in 12 bits per coordinate.  We reproduce that
by saturating the stored differences to the signed 12-bit range; since the
send- and receive-side caches run this identical deterministic update on
the identical reconstructed positions, saturation never desynchronizes
them (and positions remain lossless — only prediction quality degrades).

Coordinates are 32-bit fixed-point integers and all arithmetic wraps
modulo 2^32 like the hardware datapath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

_WORD = 1 << 32
_HALF = 1 << 31

#: Predictor orders for the ablation study.
ORDER_CONSTANT = 0
ORDER_LINEAR = 1
ORDER_QUADRATIC = 2


def wrap_i32(value: int) -> int:
    """Wrap an integer into signed 32-bit two's-complement range."""
    value = (value + _HALF) % _WORD - _HALF
    return value


def saturate(value: int, bits: int) -> int:
    """Clamp ``value`` to the signed ``bits``-bit range."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


@dataclass
class CoordinatePredictor:
    """Finite-difference predictor state for one coordinate.

    Attributes:
        d0: Last observed coordinate (32-bit fixed point).
        d1: First difference, stored saturated to ``delta_bits``.
        d2: Second difference, stored saturated to ``delta_bits``.
        delta_bits: Storage width for d1/d2 (12 in the Anton 3 hardware).
        order: Highest difference used when predicting (2 = quadratic).
    """

    d0: int
    d1: int = 0
    d2: int = 0
    delta_bits: int = 12
    order: int = ORDER_QUADRATIC

    def __post_init__(self) -> None:
        if self.order not in (ORDER_CONSTANT, ORDER_LINEAR, ORDER_QUADRATIC):
            raise ValueError(f"unsupported predictor order {self.order}")
        self.d0 = wrap_i32(self.d0)
        self.d1 = saturate(wrap_i32(self.d1), self.delta_bits)
        self.d2 = saturate(wrap_i32(self.d2), self.delta_bits)

    def predict(self) -> int:
        """Estimate the next coordinate from the stored differences."""
        estimate = self.d0
        if self.order >= ORDER_LINEAR:
            estimate += self.d1
        if self.order >= ORDER_QUADRATIC:
            estimate += self.d2
        return wrap_i32(estimate)

    def update(self, actual: int) -> None:
        """Advance the difference state after observing ``actual``.

        Both cache sides call this with the *same* reconstructed value, so
        their states remain bit-identical.
        """
        actual = wrap_i32(actual)
        prev_d0, prev_d1 = self.d0, self.d1
        self.d0 = actual
        self.d1 = saturate(wrap_i32(actual - prev_d0), self.delta_bits)
        self.d2 = saturate(wrap_i32(actual - prev_d0 - prev_d1),
                           self.delta_bits)

    def residual(self, actual: int) -> int:
        """Signed difference between the actual value and the prediction."""
        return wrap_i32(wrap_i32(actual) - self.predict())

    def state(self) -> Tuple[int, int, int]:
        return (self.d0, self.d1, self.d2)


@dataclass
class PositionPredictor:
    """Independent per-axis predictors for an (x, y, z) position."""

    x: CoordinatePredictor
    y: CoordinatePredictor
    z: CoordinatePredictor

    @classmethod
    def fresh(cls, position: Tuple[int, int, int], delta_bits: int = 12,
              order: int = ORDER_QUADRATIC) -> "PositionPredictor":
        """Newly allocated entry: D0 = position, D1 = D2 = 0."""
        return cls(*(CoordinatePredictor(c, delta_bits=delta_bits, order=order)
                     for c in position))

    def predict(self) -> Tuple[int, int, int]:
        return (self.x.predict(), self.y.predict(), self.z.predict())

    def residual(self, position: Tuple[int, int, int]) -> Tuple[int, int, int]:
        return (self.x.residual(position[0]),
                self.y.residual(position[1]),
                self.z.residual(position[2]))

    def update(self, position: Tuple[int, int, int]) -> None:
        self.x.update(position[0])
        self.y.update(position[1])
        self.z.update(position[2])

    def state(self) -> Tuple[Tuple[int, int, int], ...]:
        return (self.x.state(), self.y.state(), self.z.state())
