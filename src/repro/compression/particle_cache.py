"""The particle cache — Section IV-B of the paper.

Two synchronized caches sit at either end of an I/O channel inside the
Channel Adapters.  The send-side cache sees every position packet before it
crosses the channel; on a hit it transmits only the INZ-compressed residual
between the actual position and a quadratic extrapolation of the particle's
history, plus a cache index that replaces the packet's static fields.  The
receive-side cache holds the identical history, makes the identical
prediction, and reconstructs the exact original packet — the scheme is
lossless and fully transparent to software.

Key published parameters (reproduced here as defaults): 1024 entries,
4-way set associative, 12-bit D1/D2 difference storage, and software-paced
eviction driven by an end-of-time-step marker packet with a configurable
staleness threshold.

The two sides stay bit-identical because (a) the channel delivers packets
in order, (b) every state update is a deterministic function of the packet
stream, and (c) the receive side reconstructs positions exactly before
updating.  ``tests/test_particle_cache.py`` checks this mirror property
with randomized streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from . import inz
from .extrapolation import ORDER_QUADRATIC, PositionPredictor, wrap_i32

Position = Tuple[int, int, int]


@dataclass(frozen=True)
class PositionPacket:
    """An atom-position export packet.

    Attributes:
        particle_id: Globally unique particle identifier.
        position: (x, y, z) in 32-bit signed fixed point.
        static_field: Per-particle metadata (type/charge index) that never
            changes during a simulation; replaced by the cache index in
            compressed packets.
    """

    particle_id: int
    position: Position
    static_field: int = 0

    def payload_words(self) -> List[int]:
        """The four payload words of the uncompressed packet."""
        x, y, z = self.position
        return [inz.to_u32(x), inz.to_u32(y), inz.to_u32(z),
                inz.to_u32(self.static_field)]


@dataclass(frozen=True)
class FullPacket:
    """A position packet transmitted uncompressed (cache miss)."""

    packet: PositionPacket


@dataclass(frozen=True)
class CompressedPacket:
    """A cache-hit packet: cache index plus INZ-encoded residual."""

    set_index: int
    way: int
    residual: inz.InzEncoded


@dataclass(frozen=True)
class EndOfStepPacket:
    """Software-sent marker that advances the particle-cache step counter."""


TransmittedPacket = Union[FullPacket, CompressedPacket, EndOfStepPacket]


@dataclass
class CacheEntry:
    particle_id: int
    static_field: int
    predictor: PositionPredictor
    stamp: int


@dataclass
class CacheStats:
    """Counters exposed by each cache side (identical on both when synced)."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    allocations: int = 0
    evictions: int = 0
    alloc_failures: int = 0
    steps: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _CacheCore:
    """State and deterministic policies shared by both cache sides."""

    def __init__(self, entries: int = 1024, ways: int = 4,
                 delta_bits: int = 12, order: int = ORDER_QUADRATIC,
                 evict_threshold: int = 1) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.num_sets = entries // ways
        self.ways = ways
        self.delta_bits = delta_bits
        self.order = order
        self.evict_threshold = evict_threshold
        self.step = 0
        self.stats = CacheStats()
        self._sets: List[List[Optional[CacheEntry]]] = [
            [None] * ways for __ in range(self.num_sets)]

    # -- policies (must be identical on both sides) ---------------------

    def set_index(self, particle_id: int) -> int:
        # Multiplicative (Fibonacci) mix: particle ids arrive in spatially
        # correlated patterns (e.g. face-adjacent atoms with a common
        # stride), which would alias catastrophically under a plain
        # modulo.  Hardware derives the index from well-mixed address
        # bits; this reproduces that behavior deterministically.
        mixed = (particle_id * 0x9E3779B1) & 0xFFFF_FFFF
        mixed ^= mixed >> 16  # fold high bits down for power-of-two sets
        return mixed % self.num_sets

    def lookup(self, particle_id: int) -> Optional[int]:
        """Way holding ``particle_id`` in its set, or None."""
        ways = self._sets[self.set_index(particle_id)]
        for way, entry in enumerate(ways):
            if entry is not None and entry.particle_id == particle_id:
                return way
        return None

    def victim_way(self, set_index: int) -> Optional[int]:
        """Deterministic allocation choice for a missing particle.

        Prefers an invalid way; otherwise evicts the oldest entry whose
        stamp trails the step counter by more than the threshold
        (Section IV-B1).  Returns None when no way may be allocated.
        """
        ways = self._sets[set_index]
        for way, entry in enumerate(ways):
            if entry is None:
                return way
        best_way = None
        best_stamp = None
        for way, entry in enumerate(ways):
            assert entry is not None
            if self.step - entry.stamp > self.evict_threshold:
                if best_stamp is None or entry.stamp < best_stamp:
                    best_way, best_stamp = way, entry.stamp
        return best_way

    def allocate(self, particle_id: int, static_field: int,
                 position: Position) -> Optional[int]:
        """Try to install a fresh entry; returns the way or None."""
        set_index = self.set_index(particle_id)
        way = self.victim_way(set_index)
        if way is None:
            self.stats.alloc_failures += 1
            return None
        if self._sets[set_index][way] is not None:
            self.stats.evictions += 1
        self._sets[set_index][way] = CacheEntry(
            particle_id=particle_id,
            static_field=static_field,
            predictor=PositionPredictor.fresh(
                position, delta_bits=self.delta_bits, order=self.order),
            stamp=self.step,
        )
        self.stats.allocations += 1
        return way

    def entry(self, set_index: int, way: int) -> CacheEntry:
        entry = self._sets[set_index][way]
        if entry is None:
            raise LookupError(
                f"no entry at set {set_index} way {way}; caches out of sync")
        return entry

    def advance_step(self) -> None:
        self.step += 1
        self.stats.steps += 1

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> Tuple:
        """Hashable deep snapshot used to verify the mirror property."""
        frozen = []
        for ways in self._sets:
            for entry in ways:
                if entry is None:
                    frozen.append(None)
                else:
                    frozen.append((entry.particle_id, entry.static_field,
                                   entry.predictor.state(), entry.stamp))
        return (self.step, tuple(frozen))

    @property
    def occupancy(self) -> int:
        return sum(1 for ways in self._sets for e in ways if e is not None)


class SendSideCache(_CacheCore):
    """The cache before the I/O channel: compresses outgoing packets."""

    def send(self, packet: PositionPacket) -> TransmittedPacket:
        """Transform one outgoing position packet for the channel."""
        self.stats.lookups += 1
        way = self.lookup(packet.particle_id)
        if way is None:
            self.stats.misses += 1
            self.allocate(packet.particle_id, packet.static_field,
                          packet.position)
            return FullPacket(packet)
        self.stats.hits += 1
        set_index = self.set_index(packet.particle_id)
        entry = self.entry(set_index, way)
        residual = entry.predictor.residual(packet.position)
        entry.predictor.update(packet.position)
        entry.stamp = self.step
        return CompressedPacket(set_index=set_index, way=way,
                                residual=inz.encode_signed(residual))

    def end_of_step(self) -> EndOfStepPacket:
        """Advance the local step counter and emit the marker packet."""
        self.advance_step()
        return EndOfStepPacket()


class ReceiveSideCache(_CacheCore):
    """The cache after the I/O channel: reconstructs original packets."""

    def receive(self, transmitted: TransmittedPacket) -> Optional[PositionPacket]:
        """Reconstruct the original packet (None for the step marker)."""
        if isinstance(transmitted, EndOfStepPacket):
            self.advance_step()
            return None
        if isinstance(transmitted, FullPacket):
            packet = transmitted.packet
            self.stats.lookups += 1
            self.stats.misses += 1
            self.allocate(packet.particle_id, packet.static_field,
                          packet.position)
            return packet
        if isinstance(transmitted, CompressedPacket):
            self.stats.lookups += 1
            self.stats.hits += 1
            entry = self.entry(transmitted.set_index, transmitted.way)
            residual = inz.decode_signed(transmitted.residual)[:3]
            predicted = entry.predictor.predict()
            position = tuple(wrap_i32(p + r)
                             for p, r in zip(predicted, residual))
            entry.predictor.update(position)
            entry.stamp = self.step
            return PositionPacket(particle_id=entry.particle_id,
                                  position=position,  # type: ignore[arg-type]
                                  static_field=entry.static_field)
        raise TypeError(f"unknown transmitted packet {transmitted!r}")


class ParticleCacheChannel:
    """A send/receive cache pair wired back-to-back for one channel.

    This is the unit deployed in each Channel Adapter.  It provides the
    whole-channel view used by the traffic accounting in ``repro.fullsim``
    and asserts losslessness on every packet.
    """

    def __init__(self, entries: int = 1024, ways: int = 4,
                 delta_bits: int = 12, order: int = ORDER_QUADRATIC,
                 evict_threshold: int = 1) -> None:
        kwargs = dict(entries=entries, ways=ways, delta_bits=delta_bits,
                      order=order, evict_threshold=evict_threshold)
        self.send_side = SendSideCache(**kwargs)
        self.receive_side = ReceiveSideCache(**kwargs)

    def transfer(self, packet: PositionPacket) -> Tuple[TransmittedPacket,
                                                        PositionPacket]:
        """Push one packet through the channel; returns (wire, delivered)."""
        transmitted = self.send_side.send(packet)
        delivered = self.receive_side.receive(transmitted)
        assert delivered is not None
        if delivered != packet:
            raise AssertionError(
                f"particle cache corrupted packet: sent {packet}, "
                f"delivered {delivered}")
        return transmitted, delivered

    def end_of_step(self) -> None:
        marker = self.send_side.end_of_step()
        self.receive_side.receive(marker)

    def in_sync(self) -> bool:
        """True when both sides hold bit-identical state."""
        return self.send_side.snapshot() == self.receive_side.snapshot()
