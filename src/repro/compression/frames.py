"""Channel-frame packing — Section IV-A of the paper.

Compressed payloads and their headers are "densely packed (at byte
granularity) into each fixed-length channel frame" before crossing the
off-chip interface.  This module models that layer: a stream of channel
items (packet headers plus INZ-shortened payloads) is serialized with
1-byte descriptors, the byte stream is chunked into fixed-length frames,
and the receive side recovers the exact item stream.

The descriptor encodes the item kind (2 bits) and the valid payload byte
count (0-16, 5 bits), mirroring the "number of valid bytes" field the
paper describes.  Packing is at byte granularity and items may straddle a
frame boundary, so channel utilization equals payload+descriptor bytes
over frame capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Item kinds carried over a channel.
KIND_FULL = 0          # uncompressed position/force packet (64-bit header)
KIND_COMPRESSED = 1    # particle-cache hit (cache index header)
KIND_MARKER = 2        # end-of-step marker
KIND_FENCE = 3         # fence packet

_KIND_BITS = 2
_COUNT_BITS = 5
_MAX_COUNT = (1 << _COUNT_BITS) - 1

#: Header bytes by kind: full packets carry the 64-bit flit header; a
#: compressed packet replaces it with a 3-byte header (opcode + 10-bit
#: cache index + sequence tag); markers and fences are header-only.
HEADER_BYTES = {
    KIND_FULL: 8,
    KIND_COMPRESSED: 3,
    KIND_MARKER: 1,
    KIND_FENCE: 3,
}


@dataclass(frozen=True)
class FrameItem:
    """One unit packed into channel frames."""

    kind: int
    payload: bytes

    def __post_init__(self) -> None:
        if self.kind not in HEADER_BYTES:
            raise ValueError(f"unknown frame item kind {self.kind}")
        if len(self.payload) > _MAX_COUNT:
            raise ValueError("payload exceeds descriptor count range")

    @property
    def wire_bytes(self) -> int:
        """Bytes this item occupies on the wire (descriptor + hdr + data)."""
        return 1 + HEADER_BYTES[self.kind] + len(self.payload)


@dataclass(frozen=True)
class FrameConfig:
    """Fixed-length channel frame geometry."""

    frame_bytes: int = 240

    def __post_init__(self) -> None:
        if self.frame_bytes < 32:
            raise ValueError("frames must hold at least 32 bytes")


def serialize(items: Sequence[FrameItem],
              headers: Sequence[bytes]) -> bytes:
    """Serialize items and their header bytes into one channel byte stream.

    ``headers[i]`` must be exactly ``HEADER_BYTES[items[i].kind]`` long.
    """
    if len(items) != len(headers):
        raise ValueError("items and headers must align")
    out = bytearray()
    for item, header in zip(items, headers):
        expected = HEADER_BYTES[item.kind]
        if len(header) != expected:
            raise ValueError(
                f"kind {item.kind} needs {expected} header bytes, "
                f"got {len(header)}")
        descriptor = (item.kind << _COUNT_BITS) | len(item.payload)
        out.append(descriptor)
        out += header
        out += item.payload
    return bytes(out)


def deserialize(stream: bytes) -> List[Tuple[FrameItem, bytes]]:
    """Inverse of :func:`serialize`; returns (item, header) pairs."""
    out: List[Tuple[FrameItem, bytes]] = []
    offset = 0
    size = len(stream)
    while offset < size:
        descriptor = stream[offset]
        offset += 1
        kind = descriptor >> _COUNT_BITS
        count = descriptor & _MAX_COUNT
        header_len = HEADER_BYTES.get(kind)
        if header_len is None:
            raise ValueError(f"corrupt stream: kind {kind}")
        if offset + header_len + count > size:
            raise ValueError("corrupt stream: truncated item")
        header = stream[offset:offset + header_len]
        offset += header_len
        payload = stream[offset:offset + count]
        offset += count
        out.append((FrameItem(kind, payload), header))
    return out


def chunk_into_frames(stream: bytes, config: FrameConfig) -> List[bytes]:
    """Split a byte stream into fixed-length frames (last one padded)."""
    frames = []
    for start in range(0, len(stream), config.frame_bytes):
        frame = stream[start:start + config.frame_bytes]
        if len(frame) < config.frame_bytes:
            frame = frame + b"\x00" * (config.frame_bytes - len(frame))
        frames.append(frame)
    return frames


@dataclass
class ChannelAccounting:
    """Running bit/frame accounting for one channel direction."""

    config: FrameConfig = FrameConfig()
    payload_bytes: int = 0
    items: int = 0

    def add(self, item: FrameItem) -> None:
        self.payload_bytes += item.wire_bytes
        self.items += 1

    def add_items(self, items: Iterable[FrameItem]) -> None:
        for item in items:
            self.add(item)

    @property
    def bits(self) -> int:
        return 8 * self.payload_bytes

    @property
    def frames(self) -> int:
        full, rem = divmod(self.payload_bytes, self.config.frame_bytes)
        return full + (1 if rem else 0)

    @property
    def utilization(self) -> float:
        """Useful bytes over frame capacity actually sent."""
        if self.frames == 0:
            return 0.0
        return self.payload_bytes / (self.frames * self.config.frame_bytes)
