"""Interleaved non-zero (INZ) encoding — Section IV-A of the paper.

Flit payloads on Anton 3 carry up to four signed 32-bit words.  INZ shrinks
payloads whose words have small absolute values:

1. Find the most significant non-zero word ``m`` (0-3).  An all-zero
   payload encodes to zero bytes.
2. Each non-zero word is transformed by ``invert_word`` (the paper's
   SystemVerilog function): the sign bit moves to the LSB and the other 31
   bits are conditionally inverted.  Small negative values therefore become
   small unsigned patterns (a zigzag-style map).
3. Words ``0..m`` are interleaved bitwise so that the high-order bits of
   all words land together at the top of the vector, maximizing the run of
   leading zero bytes.
4. The 2-bit word count ``m`` is concatenated at the least significant end
   (so it never disturbs the leading zeros), and leading zero bytes are
   dropped.
5. If the result would not fit in the 16-byte payload, the encoding is
   abandoned and the original bytes are sent with a valid-byte count of 16.

Encoding and decoding are exact inverses; see ``tests/test_inz.py`` for the
property-based round-trip checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

WORD_BITS = 32
WORD_MASK = 0xFFFF_FFFF
MAX_WORDS = 4
PAYLOAD_BYTES = 16
_SIGN_BIT = 1 << 31
_LOW31 = 0x7FFF_FFFF


def to_u32(word: int) -> int:
    """Interpret a Python int as an unsigned 32-bit word (two's complement)."""
    return word & WORD_MASK


def to_i32(word: int) -> int:
    """Interpret an unsigned 32-bit word as a signed value."""
    word &= WORD_MASK
    return word - (1 << 32) if word & _SIGN_BIT else word


def invert_word(word: int) -> int:
    """The paper's ``invert_word``: sign to LSB, conditional inversion.

    ``return {{31{w[31]}} ^ w[30:0], w[31]}`` in SystemVerilog.
    """
    word = to_u32(word)
    sign = word >> 31
    low = word & _LOW31
    if sign:
        low ^= _LOW31
    return (low << 1) | sign


def uninvert_word(encoded: int) -> int:
    """Inverse of :func:`invert_word`."""
    encoded = to_u32(encoded)
    sign = encoded & 1
    low = encoded >> 1
    if sign:
        low ^= _LOW31
    return (sign << 31) | low


def interleave(words: Sequence[int]) -> int:
    """Bitwise-interleave ``words`` (low word in the low lane).

    Bit ``j`` of word ``i`` lands at position ``j * len(words) + i`` of the
    result, so bit 31 of every word sits in the top ``len(words)`` bits.
    """
    lanes = len(words)
    result = 0
    for i, word in enumerate(words):
        word = to_u32(word)
        for j in range(WORD_BITS):
            if word >> j & 1:
                result |= 1 << (j * lanes + i)
    return result


def deinterleave(vector: int, lanes: int) -> List[int]:
    """Inverse of :func:`interleave` for ``lanes`` words."""
    words = [0] * lanes
    for j in range(WORD_BITS):
        for i in range(lanes):
            if vector >> (j * lanes + i) & 1:
                words[i] |= 1 << j
    return words


@dataclass(frozen=True)
class InzEncoded:
    """Result of INZ-encoding one quad-word payload.

    Attributes:
        data: The transmitted bytes (little-endian vector, leading zero
            bytes already removed).  Raw payload bytes when abandoned.
        num_bytes: Valid byte count placed in the channel-frame descriptor.
            0 for an all-zero payload, 16 when the encoding was abandoned.
        abandoned: True when the original payload was sent instead.
    """

    data: bytes
    num_bytes: int
    abandoned: bool

    @property
    def payload_bits(self) -> int:
        """Bits of payload that cross the channel (excludes descriptors)."""
        return 8 * self.num_bytes


def _raw_bytes(words: Sequence[int]) -> bytes:
    out = bytearray()
    for word in words:
        out += to_u32(word).to_bytes(4, "little")
    return bytes(out)


def encode(words: Sequence[int]) -> InzEncoded:
    """INZ-encode up to four signed 32-bit words.

    Shorter payloads are treated as zero-padded quads; the decoder always
    returns four words.
    """
    if len(words) > MAX_WORDS:
        raise ValueError(f"INZ payloads hold at most {MAX_WORDS} words")
    quad = [to_u32(w) for w in words] + [0] * (MAX_WORDS - len(words))

    top = -1
    for i, word in enumerate(quad):
        if word:
            top = i
    if top < 0:
        return InzEncoded(data=b"", num_bytes=0, abandoned=False)

    lanes = top + 1
    transformed = [invert_word(w) if w else 0 for w in quad[:lanes]]
    vector = (interleave(transformed) << 2) | top
    num_bytes = (vector.bit_length() + 7) // 8
    if num_bytes >= PAYLOAD_BYTES:
        return InzEncoded(data=_raw_bytes(quad), num_bytes=PAYLOAD_BYTES,
                          abandoned=True)
    return InzEncoded(data=vector.to_bytes(num_bytes, "little"),
                      num_bytes=num_bytes, abandoned=False)


def decode(encoded: InzEncoded) -> List[int]:
    """Decode an :class:`InzEncoded` payload back to four unsigned words."""
    return decode_bytes(encoded.data, encoded.num_bytes)


def decode_bytes(data: bytes, num_bytes: int) -> List[int]:
    """Decode raw INZ channel bytes given the descriptor's byte count."""
    if num_bytes == 0:
        return [0] * MAX_WORDS
    if len(data) != num_bytes:
        raise ValueError(
            f"descriptor says {num_bytes} bytes but got {len(data)}")
    if num_bytes == PAYLOAD_BYTES:
        return [int.from_bytes(data[i:i + 4], "little")
                for i in range(0, PAYLOAD_BYTES, 4)]
    vector = int.from_bytes(data, "little")
    top = vector & 3
    lanes = top + 1
    transformed = deinterleave(vector >> 2, lanes)
    words = [uninvert_word(w) if w else 0 for w in transformed]
    return words + [0] * (MAX_WORDS - lanes)


def encode_signed(values: Sequence[int]) -> InzEncoded:
    """Convenience wrapper for signed inputs (e.g. position deltas)."""
    return encode([to_u32(v) for v in values])


def decode_signed(encoded: InzEncoded) -> List[int]:
    """Decode to signed 32-bit values."""
    return [to_i32(w) for w in decode(encoded)]


def encoded_payload_bits(words: Sequence[int]) -> int:
    """Payload bits INZ sends for ``words`` (the Fig. 9a accounting unit)."""
    return encode(words).payload_bits


def encoded_sizes(words: "np.ndarray") -> "np.ndarray":
    """Vectorized INZ byte counts for an (N, 4) array of word payloads.

    Returns the per-payload valid-byte counts :func:`encode` would report,
    without materializing the encoded bytes — the fast path used by the
    full-system traffic model.  ``tests/test_inz.py`` cross-checks it
    against the reference encoder.
    """
    import numpy as np

    quads = np.asarray(words, dtype=np.int64)
    if quads.ndim != 2 or quads.shape[1] != MAX_WORDS:
        raise ValueError("encoded_sizes expects an (N, 4) array")
    unsigned = quads & WORD_MASK

    # invert_word, vectorized.
    sign = unsigned >> 31
    low = unsigned & _LOW31
    low = np.where(sign == 1, low ^ _LOW31, low)
    transformed = (low << 1) | sign

    nonzero = unsigned != 0
    any_nonzero = nonzero.any(axis=1)
    # Index of the most significant non-zero word (0..3).
    top = np.where(any_nonzero,
                   MAX_WORDS - 1 - np.argmax(nonzero[:, ::-1], axis=1), 0)
    lanes = top + 1

    # Bit length of each transformed word (values < 2^32, exact in f64).
    bitlen = np.zeros_like(transformed)
    positive = transformed > 0
    bitlen[positive] = np.floor(
        np.log2(transformed[positive].astype(np.float64))).astype(np.int64) + 1

    # Highest set bit position in the interleaved vector:
    # bit (bitlen-1) of lane i lands at (bitlen-1)*lanes + i.
    lane_index = np.arange(MAX_WORDS)[None, :]
    positions = np.where(
        (bitlen > 0) & (lane_index <= top[:, None]),
        (bitlen - 1) * lanes[:, None] + lane_index, -1)
    max_pos = positions.max(axis=1)

    total_bits = max_pos + 1 + 2  # plus the 2-bit word count at the LSB
    sizes = (total_bits + 7) // 8
    sizes = np.where(any_nonzero, sizes, 0)
    return np.where(sizes >= PAYLOAD_BYTES, PAYLOAD_BYTES, sizes)
