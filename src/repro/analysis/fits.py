"""Linear latency fits (Figures 5 and 11 report their results this way)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """``latency = fixed_ns + per_hop_ns * hops``."""

    fixed_ns: float
    per_hop_ns: float
    r_squared: float

    def predict(self, hops: float) -> float:
        return self.fixed_ns + self.per_hop_ns * hops


def fit_latency_vs_hops(points: Dict[int, float],
                        exclude_zero_hop: bool = True) -> LinearFit:
    """Least-squares fit of latency against hop count.

    The paper excludes the 0-hop case from the Figure 5 fit because
    intra-node packets skip the Edge Network and channels entirely;
    ``exclude_zero_hop`` mirrors that.
    """
    items = sorted(points.items())
    if exclude_zero_hop:
        items = [(h, v) for h, v in items if h > 0]
    if len(items) < 2:
        raise ValueError("need at least two hop counts to fit")
    hops = np.array([h for h, __ in items], dtype=np.float64)
    lat = np.array([v for __, v in items], dtype=np.float64)
    design = np.vstack([hops, np.ones_like(hops)]).T
    (slope, intercept), residuals, __, __ = np.linalg.lstsq(
        design, lat, rcond=None)
    predicted = design @ np.array([slope, intercept])
    ss_res = float(np.sum((lat - predicted) ** 2))
    ss_tot = float(np.sum((lat - lat.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(fixed_ns=float(intercept), per_hop_ns=float(slope),
                     r_squared=r2)
