"""Congestion forensics: automated root-cause diagnosis of observed runs.

The paper's central evidence is explanatory — per-hop latency
breakdowns (Fig 6) and activity/traffic attribution (Figs 9/12) that
say *why* the network behaves as it does.  This module turns the raw
observability artifacts of :mod:`repro.observe` into that kind of
answer, fully post hoc (pure arithmetic over the metrics/trace JSON, no
re-simulation), surfaced as ``repro-runner diagnose <digest>``:

* **Per-hop latency decomposition** — every traced packet's lifecycle
  spans are folded into queue wait / serialization / propagation /
  router (on-chip) / injection / ejection components, aggregated by hop
  count, and the components sum to the measured end-to-end latency
  exactly (the router component is defined as the remainder the channel
  spans cannot account for: on-chip mesh traversal and pipeline delays).
* **Backpressure attribution** — links are classified as saturated from
  their busy-fraction/occupancy series, and every credit stall is
  attributed to the *downstream* node that withheld the credits (a stall
  on ``A->B`` means B's input queue for that VC was full).  Nodes are
  ranked by attributed inflow stalls — the hotspot ejectors — and a
  saturation tree is grown upstream from each, showing the congestion
  wave the root cause launched.
* **Fence critical path** — per-fence straggler node (the completion
  that gated the barrier) plus the congested links incident to it.
* **Topology heatmaps** — per-node stall/occupancy intensity arranged
  by torus coordinate plane, rendered as ASCII in the report and stored
  as plain value arrays in the artifact.

Everything here is deterministic: fixed thresholds, stable sort keys,
and canonical-JSON output, so diagnosis artifacts are byte-identical
across ``--jobs`` splits (their inputs already are).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..observe.schema import DIAGNOSIS_SCHEMA_ID

__all__ = [
    "BUSY_THRESHOLD",
    "OCCUPANCY_THRESHOLD",
    "backpressure_attribution",
    "compare_diagnoses",
    "diagnose_run",
    "fence_critical_paths",
    "hop_latency_decomposition",
    "link_summaries",
    "render_comparison",
    "render_diagnosis",
    "topology_heatmaps",
]

#: A link is saturated when its serialization resource is busy at least
#: this fraction of the observation window ...
BUSY_THRESHOLD = 0.5
#: ... or its send queues hold at least this many flits on average
#: (credit stalls back packets up at the sender, not the wire).
OCCUPANCY_THRESHOLD = 2.0

#: Tree growth bounds: stall trees are explanatory, not exhaustive.
_TREE_DEPTH = 3
_TREE_ROOTS = 3
_ROUTE_LINKS = 8

#: Heatmap intensity ramp, low to high.
_HEAT_CHARS = " .:-=+*#%@"


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Per-hop latency decomposition (trace layer).
# ----------------------------------------------------------------------

def hop_latency_decomposition(trace: Mapping) -> Optional[Dict[str, object]]:
    """Fold one machine's trace spans into per-hop-class components.

    Returns ``None`` when the payload has no spans to decompose.  Each
    hop class row reports mean component latencies whose sum equals the
    mean measured end-to-end latency: ``router`` is defined as the
    remainder after the instrumented channel spans (queue, serialization,
    propagation) and the endpoint overheads (inject, eject), i.e. the
    on-chip mesh traversal the channel monitors cannot see.
    """
    spans = trace.get("spans") or []
    if not spans:
        return None
    packets: Dict[Tuple[int, int], Dict[str, object]] = {}
    for span in spans:
        trace_id = tuple(span["trace_id"])
        record = packets.setdefault(trace_id, {
            "inject_start": None, "inject_ns": 0.0, "queue_ns": 0.0,
            "ser_ns": 0.0, "prop_ns": 0.0, "eject_ns": 0.0,
            "deliver_ns": None, "hops": None,
        })
        kind = span["kind"]
        start, end = span["start_ns"], span["end_ns"]
        duration = end - start
        args = span.get("args", {})
        if kind == "inject":
            record["inject_start"] = start
            record["inject_ns"] = duration
        elif kind == "queue":
            record["queue_ns"] += duration
        elif kind == "transmit":
            # ser_ns rides in the span args (serialization vs wire
            # propagation split); pre-forensics traces lack it — count
            # the whole span as serialization then.
            ser = args.get("ser_ns", duration)
            record["ser_ns"] += ser
            record["prop_ns"] += duration - ser
        elif kind == "eject":
            record["eject_ns"] += duration
        elif kind == "deliver":
            record["deliver_ns"] = end
            record["hops"] = args.get("hops")
    classes: Dict[int, List[Dict[str, float]]] = {}
    incomplete = 0
    for record in packets.values():
        if record["inject_start"] is None or record["deliver_ns"] is None:
            incomplete += 1  # still in flight at end of run
            continue
        end_to_end = record["deliver_ns"] - record["inject_start"]
        accounted = (record["inject_ns"] + record["queue_ns"]
                     + record["ser_ns"] + record["prop_ns"]
                     + record["eject_ns"])
        hops = record["hops"] if record["hops"] is not None else 0
        classes.setdefault(int(hops), []).append({
            "inject": record["inject_ns"],
            "queue": record["queue_ns"],
            "serialization": record["ser_ns"],
            "propagation": record["prop_ns"],
            "eject": record["eject_ns"],
            "router": end_to_end - accounted,
            "end_to_end": end_to_end,
        })
    rows = []
    for hops in sorted(classes):
        members = classes[hops]
        mean_ns = {
            component: _mean([m[component] for m in members])
            for component in ("inject", "queue", "serialization",
                              "propagation", "router", "eject")
        }
        rows.append({
            "hops": hops,
            "packets": len(members),
            "mean_ns": mean_ns,
            # The measured mean, not the component sum — the schema
            # validator asserts the two agree within rounding.
            "end_to_end_ns": _mean([m["end_to_end"] for m in members]),
        })
    if not rows:
        return None
    return {
        "packets": sum(row["packets"] for row in rows),
        "in_flight": incomplete,
        "classes": rows,
    }


# ----------------------------------------------------------------------
# Backpressure attribution (metrics layer).
# ----------------------------------------------------------------------

def link_summaries(metrics: Mapping) -> List[Dict[str, object]]:
    """Per-link rollups of the sliced series: busy, occupancy, stalls.

    Covers every monitored link (the ``links`` endpoint table); rows are
    sorted by name for deterministic downstream output.
    """
    gauges = metrics.get("gauges", {})
    counters = metrics.get("stats", {}).get("counters", {})
    links = metrics.get("links", {})
    rows = []
    for name in sorted(links):
        endpoints = links[name]
        busy = _mean(gauges.get(f"link/{name}/busy", []))
        vc_occupancy = {}
        vc_stalls = {}
        vc = 0
        while f"link/{name}/vc{vc}/occupancy" in gauges:
            occupancy = _mean(gauges[f"link/{name}/vc{vc}/occupancy"])
            if occupancy:
                vc_occupancy[str(vc)] = occupancy
            stalls = counters.get(f"link/{name}/vc{vc}/stalls", 0)
            if stalls:
                vc_stalls[str(vc)] = stalls
            vc += 1
        occupancy = sum(vc_occupancy.values())
        stalls = counters.get(f"link/{name}/stalls", 0)
        rows.append({
            "link": name,
            "src": endpoints["src"],
            "dst": endpoints["dst"],
            "busy_fraction": busy,
            "occupancy": occupancy,
            "vc_occupancy": vc_occupancy,
            "stalls": stalls,
            "vc_stalls": vc_stalls,
            "saturated": bool(busy >= BUSY_THRESHOLD
                              or occupancy >= OCCUPANCY_THRESHOLD),
        })
    return rows


def backpressure_attribution(metrics: Mapping) -> Dict[str, object]:
    """Saturated links, ranked downstream root causes, saturation trees.

    The attribution model: a credit stall on link ``A->B`` means the
    downstream router B withheld credits (its input queue for that VC
    was full), so every stall charges node B.  Nodes ranked by charged
    inflow stalls are the congestion roots — under hotspot traffic,
    the hotspot ejector.  From each top root a tree is grown upstream
    through stalled links, showing how the pressure wave propagates.
    """
    rows = link_summaries(metrics)
    saturated = [row for row in rows if row["saturated"] or row["stalls"]]
    by_dst: Dict[int, List[Dict[str, object]]] = {}
    for row in rows:
        if row["stalls"] or row["saturated"]:
            by_dst.setdefault(row["dst"], []).append(row)
    causes = []
    for node, incident in sorted(by_dst.items()):
        inflow = sum(row["stalls"] for row in incident)
        saturated_in = sorted(
            row["link"] for row in incident if row["saturated"])
        causes.append({
            "node": node,
            "inflow_stalls": inflow,
            "saturated_in": saturated_in,
            # Saturated inflow without stalls still indicates pressure;
            # weight stalls first, saturation as tie-break mass.
            "score": float(inflow) + 0.5 * len(saturated_in),
        })
    causes.sort(key=lambda row: (-row["score"], row["node"]))
    trees = [
        _saturation_tree(cause["node"], by_dst)
        for cause in causes[:_TREE_ROOTS]
    ]
    return {
        "thresholds": {
            "busy_fraction": BUSY_THRESHOLD,
            "occupancy_flits": OCCUPANCY_THRESHOLD,
        },
        "total_stalls": sum(row["stalls"] for row in rows),
        "saturated": [
            {key: row[key] for key in (
                "link", "src", "dst", "busy_fraction", "occupancy",
                "stalls", "vc_stalls")}
            for row in sorted(saturated,
                              key=lambda r: (-r["stalls"], r["link"]))
        ],
        "root_causes": causes,
        "trees": trees,
    }


def _saturation_tree(root: int,
                     by_dst: Mapping[int, List[Dict[str, object]]]
                     ) -> Dict[str, object]:
    """Grow one congestion tree upstream from a root-cause node.

    Breadth-first through stalled/saturated links ending at the frontier
    nodes; every link appears at most once, so cyclic backpressure (a
    congested ring feeding itself) terminates.
    """
    edges = []
    seen_links = set()
    frontier = [root]
    for depth in range(1, _TREE_DEPTH + 1):
        next_frontier = []
        for node in frontier:
            incident = sorted(by_dst.get(node, []),
                              key=lambda r: (-r["stalls"], r["link"]))
            for row in incident:
                if row["link"] in seen_links:
                    continue
                seen_links.add(row["link"])
                edges.append({
                    "link": row["link"],
                    "src": row["src"],
                    "dst": row["dst"],
                    "stalls": row["stalls"],
                    "vc_stalls": row["vc_stalls"],
                    "depth": depth,
                })
                next_frontier.append(row["src"])
        frontier = next_frontier
        if not frontier:
            break
    return {"root": root, "edges": edges}


# ----------------------------------------------------------------------
# Fence critical path (metrics layer).
# ----------------------------------------------------------------------

def fence_critical_paths(metrics: Mapping) -> Dict[str, object]:
    """Per-fence straggler plus the congested links on its route.

    The straggler is the node whose completion gated the barrier; the
    links reported are the stalled/saturated links incident to it (the
    local congestion that plausibly delayed its traffic).
    """
    fences = metrics.get("fences") or []
    rows = link_summaries(metrics)
    paths = []
    for fence in fences:
        straggler = fence["straggler"]
        congested = sorted(
            (row for row in rows
             if (row["stalls"] or row["saturated"])
             and straggler in (row["src"], row["dst"])),
            key=lambda r: (-r["stalls"], r["link"]))
        paths.append({
            "fence_id": fence["fence_id"],
            "straggler": straggler,
            "wait_ns": fence["last_ns"] - fence["start_ns"],
            "spread_ns": fence["last_ns"] - fence["first_ns"],
            "completions": fence["completions"],
            "congested_links": [row["link"]
                                for row in congested[:_ROUTE_LINKS]],
        })
    return {"count": len(paths), "critical_paths": paths}


# ----------------------------------------------------------------------
# Topology heatmaps (metrics layer).
# ----------------------------------------------------------------------

def topology_heatmaps(metrics: Mapping) -> List[Dict[str, object]]:
    """Per-node intensity arrays for the stall and occupancy heatmaps.

    Stalls charge the *downstream* node (the attribution model);
    occupancy charges the *source* node (the flits are queued at the
    sender).  Values are plain per-node-id arrays so the artifact stays
    canonical JSON; :func:`render_heatmap` draws them.
    """
    topology = metrics.get("topology")
    if not topology:
        return []
    dims = topology["dims"]
    count = dims[0] * dims[1] * dims[2]
    stalls = [0.0] * count
    occupancy = [0.0] * count
    for row in link_summaries(metrics):
        if 0 <= row["dst"] < count:
            stalls[row["dst"]] += row["stalls"]
        if 0 <= row["src"] < count:
            occupancy[row["src"]] += row["occupancy"]
    return [
        {"metric": "stalls", "dims": list(dims), "values": stalls},
        {"metric": "occupancy", "dims": list(dims),
         "values": [round(value, 6) for value in occupancy]},
    ]


def render_heatmap(heatmap: Mapping) -> str:
    """ASCII heatmap, one grid per torus Z plane (x across, y down)."""
    dims = heatmap["dims"]
    values = heatmap["values"]
    peak = max(values) if values else 0.0
    lines = [f"{heatmap['metric']} by torus coordinate "
             f"(x across, y down; peak {peak:g})"]
    ramp = len(_HEAT_CHARS) - 1
    for z in range(dims[2]):
        lines.append(f"  z={z}")
        for y in range(dims[1]):
            row = []
            for x in range(dims[0]):
                node = (x * dims[1] + y) * dims[2] + z
                value = values[node]
                level = (0 if peak <= 0
                         else max(1, round(ramp * value / peak))
                         if value > 0 else 0)
                row.append(_HEAT_CHARS[level])
            lines.append("    " + " ".join(row))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Whole-run diagnosis and comparison.
# ----------------------------------------------------------------------

def diagnose_run(metrics_artifact: Mapping,
                 trace_artifact: Optional[Mapping] = None) -> List[dict]:
    """Diagnose every machine of one observed run.

    Takes the loaded ``<digest>.metrics.json`` artifact (and optionally
    the matching trace artifact) and returns the per-machine diagnosis
    payloads — the ``machines`` list of the diagnosis artifact.
    """
    metrics_machines = metrics_artifact.get("machines") or []
    trace_machines = (trace_artifact.get("machines")
                      if trace_artifact else None) or []
    payloads = []
    for index, metrics in enumerate(metrics_machines):
        trace = trace_machines[index] if index < len(trace_machines) else None
        payloads.append({
            "schema": DIAGNOSIS_SCHEMA_ID,
            "end_ns": metrics.get("end_ns", 0.0),
            "latency": (hop_latency_decomposition(trace)
                        if trace is not None else None),
            "backpressure": backpressure_attribution(metrics),
            "fences": fence_critical_paths(metrics),
            "heatmaps": topology_heatmaps(metrics),
        })
    return payloads


def render_diagnosis(digest: str, machines: Sequence[Mapping]) -> str:
    """The human-readable diagnosis report for one run."""
    from .report import format_table

    lines = [f"diagnosis for {digest[:16]}"]
    for index, machine in enumerate(machines):
        if len(machines) > 1:
            lines.append(f"-- machine {index} --")
        latency = machine.get("latency")
        lines.append("")
        lines.append("== per-hop latency decomposition ==")
        if latency:
            headers = ("hops", "packets", "end-to-end", "inject", "queue",
                       "serialize", "propagate", "router", "eject")
            rows = []
            for row in latency["classes"]:
                mean = row["mean_ns"]
                rows.append([
                    row["hops"], row["packets"],
                    f"{row['end_to_end_ns']:.1f}",
                    f"{mean['inject']:.1f}", f"{mean['queue']:.1f}",
                    f"{mean['serialization']:.1f}",
                    f"{mean['propagation']:.1f}",
                    f"{mean['router']:.1f}", f"{mean['eject']:.1f}",
                ])
            lines.append(format_table(headers, rows))
            lines.append(f"({latency['packets']} delivered traced packets, "
                         f"{latency['in_flight']} still in flight; ns)")
        else:
            lines.append("(no trace layer: rerun with --trace to decompose)")
        backpressure = machine["backpressure"]
        thresholds = backpressure["thresholds"]
        lines.append("")
        lines.append("== backpressure attribution ==")
        lines.append(f"total credit stalls: {backpressure['total_stalls']}; "
                     f"saturated = busy >= {thresholds['busy_fraction']:g} "
                     f"or queued flits >= "
                     f"{thresholds['occupancy_flits']:g}")
        saturated = backpressure["saturated"]
        if saturated:
            rows = [[row["link"], f"{row['busy_fraction']:.2f}",
                     f"{row['occupancy']:.2f}", row["stalls"],
                     _format_vc_stalls(row["vc_stalls"]), f"n{row['dst']}"]
                    for row in saturated[:12]]
            lines.append(format_table(
                ("link", "busy", "occ", "stalls", "per-vc", "downstream"),
                rows))
            if len(saturated) > 12:
                lines.append(f"(+{len(saturated) - 12} more)")
        else:
            lines.append("no saturated or stalled links")
        causes = backpressure["root_causes"]
        if causes:
            lines.append("root causes (stalls attributed downstream):")
            for rank, cause in enumerate(causes[:_TREE_ROOTS], start=1):
                lines.append(
                    f"  #{rank} node n{cause['node']}: "
                    f"{cause['inflow_stalls']} inflow stalls, "
                    f"{len(cause['saturated_in'])} saturated in-links")
            for tree in backpressure["trees"]:
                if not tree["edges"]:
                    continue
                lines.append(f"saturation tree rooted at n{tree['root']}:")
                for edge in tree["edges"]:
                    indent = "  " * edge["depth"]
                    vc = _format_vc_stalls(edge["vc_stalls"])
                    vc_text = f" [{vc}]" if vc else ""
                    lines.append(
                        f"{indent}n{edge['dst']} <- {edge['link']} "
                        f"({edge['stalls']} stalls{vc_text})")
        fences = machine["fences"]
        lines.append("")
        lines.append("== fence critical path ==")
        if fences["critical_paths"]:
            for path in fences["critical_paths"]:
                congested = (", ".join(path["congested_links"])
                             or "none congested")
                lines.append(
                    f"fence {path['fence_id']}: straggler "
                    f"n{path['straggler']}, wait {path['wait_ns']:.1f} ns "
                    f"(spread {path['spread_ns']:.1f} ns over "
                    f"{path['completions']} completions); "
                    f"links at straggler: {congested}")
        else:
            lines.append("(no fences observed)")
        lines.append("")
        lines.append("== topology heatmaps ==")
        heatmaps = machine["heatmaps"]
        if heatmaps:
            for heatmap in heatmaps:
                lines.append(render_heatmap(heatmap))
        else:
            lines.append("(no topology section in the metrics artifact)")
    return "\n".join(lines) + "\n"


def _format_vc_stalls(vc_stalls: Mapping[str, int]) -> str:
    return " ".join(f"vc{vc}:{count}"
                    for vc, count in sorted(vc_stalls.items(),
                                            key=lambda kv: int(kv[0])))


def compare_diagnoses(a: Mapping, b: Mapping) -> Dict[str, object]:
    """Structured diff of two diagnosis artifacts (policy-ablation view).

    Compares machine 0 of each run: total stalls, saturated-link sets,
    top root causes, and the per-hop-class end-to-end latencies — the
    questions a routing ablation asks ("why does adaptive-escape beat
    fixed-xyz under tornado").
    """
    machine_a = (a.get("machines") or [{}])[0]
    machine_b = (b.get("machines") or [{}])[0]
    bp_a = machine_a.get("backpressure", {})
    bp_b = machine_b.get("backpressure", {})
    sat_a = {row["link"] for row in bp_a.get("saturated", [])}
    sat_b = {row["link"] for row in bp_b.get("saturated", [])}
    latency = []
    classes_a = {row["hops"]: row
                 for row in (machine_a.get("latency") or {}).get("classes", [])}
    classes_b = {row["hops"]: row
                 for row in (machine_b.get("latency") or {}).get("classes", [])}
    for hops in sorted(set(classes_a) | set(classes_b)):
        row_a, row_b = classes_a.get(hops), classes_b.get(hops)
        latency.append({
            "hops": hops,
            "a_ns": row_a["end_to_end_ns"] if row_a else None,
            "b_ns": row_b["end_to_end_ns"] if row_b else None,
            "queue_a_ns": row_a["mean_ns"]["queue"] if row_a else None,
            "queue_b_ns": row_b["mean_ns"]["queue"] if row_b else None,
        })
    return {
        "a": a.get("digest"),
        "b": b.get("digest"),
        "stalls": {"a": bp_a.get("total_stalls", 0),
                   "b": bp_b.get("total_stalls", 0)},
        "saturated": {
            "common": sorted(sat_a & sat_b),
            "only_a": sorted(sat_a - sat_b),
            "only_b": sorted(sat_b - sat_a),
        },
        "root_causes": {
            "a": [c["node"] for c in bp_a.get("root_causes", [])[:3]],
            "b": [c["node"] for c in bp_b.get("root_causes", [])[:3]],
        },
        "latency": latency,
    }


def render_comparison(diff: Mapping) -> str:
    """The human-readable report of a ``diagnose --compare`` diff."""
    from .report import format_table

    a = (diff.get("a") or "a")[:16]
    b = (diff.get("b") or "b")[:16]
    stalls = diff["stalls"]
    saturated = diff["saturated"]
    lines = [
        f"comparing {a} (A) vs {b} (B)",
        f"credit stalls: A={stalls['a']} B={stalls['b']} "
        f"(delta {stalls['b'] - stalls['a']:+d})",
        f"saturated links: {len(saturated['common'])} shared, "
        f"{len(saturated['only_a'])} only in A, "
        f"{len(saturated['only_b'])} only in B",
    ]
    for label, names in (("only in A", saturated["only_a"]),
                         ("only in B", saturated["only_b"])):
        for name in names[:6]:
            lines.append(f"  {label}: {name}")
        if len(names) > 6:
            lines.append(f"  {label}: (+{len(names) - 6} more)")
    causes = diff["root_causes"]
    lines.append(
        "top root causes: "
        f"A={' '.join(f'n{n}' for n in causes['a']) or '-'}  "
        f"B={' '.join(f'n{n}' for n in causes['b']) or '-'}")
    if diff["latency"]:
        rows = []
        for row in diff["latency"]:
            rows.append([
                row["hops"],
                "-" if row["a_ns"] is None else f"{row['a_ns']:.1f}",
                "-" if row["b_ns"] is None else f"{row['b_ns']:.1f}",
                "-" if row["queue_a_ns"] is None
                else f"{row['queue_a_ns']:.1f}",
                "-" if row["queue_b_ns"] is None
                else f"{row['queue_b_ns']:.1f}",
            ])
        lines.append(format_table(
            ("hops", "A end-to-end", "B end-to-end", "A queue", "B queue"),
            rows))
    return "\n".join(lines) + "\n"
