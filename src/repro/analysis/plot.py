"""ASCII scatter/line charts for sweep results (``report --plot``).

Terminal-friendly plotting so latency-load curves (and any other sweep
column pair) can be eyeballed straight from ``repro-runner report``
without a plotting stack: points are binned onto a character raster
with labeled axis extents, and multiple series (e.g. one routing policy
per marker) share the raster with a legend.

The renderer is deliberately dependency-free and deterministic: same
points in, same characters out, so tests can assert on the output.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = ["ascii_chart", "series_from_runs"]

#: Marker characters assigned to series in insertion order.
SERIES_MARKERS = "*o+x#@%&"

Point = Tuple[float, float]


def _bounds(values: Sequence[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        # Degenerate axis: pad so the single value sits mid-scale.
        pad = abs(lo) * 0.5 or 0.5
        return lo - pad, hi + pad
    return lo, hi


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.3g}"
    return f"{value:.4g}"


def ascii_chart(
    series: Mapping[str, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    title: str = "",
    force_legend: bool = False,
) -> str:
    """Render named point series as one ASCII chart.

    ``series`` maps a legend label to its ``(x, y)`` points; all series
    share the axis scales.  ``width``/``height`` size the plotting
    raster (axes and labels come on top).  Series beyond the marker
    alphabet reuse its last marker.

    The legend renders whenever there are multiple series or a named
    one; ``force_legend`` renders it even for a single unnamed series
    (label ``(all)``) — the CLI sets it when ``--plot-by`` was
    requested, so grouping that collapses to one series still shows
    which series the marker is.
    """
    if width < 8 or height < 4:
        raise ValueError("chart needs width >= 8 and height >= 4")
    named = [(label, [(float(x), float(y)) for x, y in points])
             for label, points in series.items() if points]
    if not named:
        raise ValueError("nothing to plot: every series is empty")
    xs = [x for __, points in named for x, __unused in points]
    ys = [y for __, points in named for __unused, y in points]
    x_lo, x_hi = _bounds(xs)
    y_lo, y_hi = _bounds(ys)

    grid = [[" "] * width for __ in range(height)]
    for index, (label, points) in enumerate(named):
        marker = SERIES_MARKERS[min(index, len(SERIES_MARKERS) - 1)]
        for x, y in points:
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    y_ticks = (_format_tick(y_hi), _format_tick(y_lo))
    margin = max(len(tick) for tick in y_ticks)
    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{'':{margin}} {y_label}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            tick = y_ticks[0]
        elif row_index == height - 1:
            tick = y_ticks[1]
        else:
            tick = ""
        lines.append(f"{tick:>{margin}} |{''.join(row)}")
    lines.append(f"{'':{margin}} +{'-' * width}")
    x_lo_tick, x_hi_tick = _format_tick(x_lo), _format_tick(x_hi)
    gap = max(1, width - len(x_lo_tick) - len(x_hi_tick))
    lines.append(f"{'':{margin}}  {x_lo_tick}{'':{gap}}{x_hi_tick}")
    if x_label:
        lines.append(f"{'':{margin}}  {x_label}")
    if force_legend or len(named) > 1 or named[0][0]:
        legend = "   ".join(
            f"{SERIES_MARKERS[min(i, len(SERIES_MARKERS) - 1)]} "
            f"{label or '(all)'}"
            for i, (label, __) in enumerate(named))
        lines.append(f"{'':{margin}}  {legend}")
    return "\n".join(lines)


def series_from_runs(
    runs: Iterable[Mapping[str, object]],
    x: str,
    y: str,
    by: Sequence[str] = (),
) -> Dict[str, List[Point]]:
    """Extract chart series from runner run records.

    ``x`` and ``y`` are flattened column names (parameter keys or dotted
    result paths, e.g. ``classes.request.latency_ns.mean`` — the same
    naming ``report --percentiles`` uses); ``by`` groups runs into one
    series per distinct value combination (e.g. ``("pattern",
    "routing")``).  Runs missing a column, or with non-numeric values,
    are skipped; each series comes back sorted by x.
    """
    from .aggregate import flatten_mapping

    series: Dict[str, List[Point]] = {}
    for run in runs:
        flat = flatten_mapping(run.get("params", {}) or {})
        flat.update(flatten_mapping(run.get("result", {}) or {}))
        try:
            point = (float(flat[x]), float(flat[y]))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            continue
        if not all(math.isfinite(v) for v in point):
            continue
        label = "/".join(str(flat.get(key, "?")) for key in by)
        series.setdefault(label, []).append(point)
    for points in series.values():
        points.sort()
    return series
