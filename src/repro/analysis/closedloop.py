"""Analysis of closed-loop workload sweeps (:mod:`repro.workload`).

A throughput-vs-window curve has the complementary shape to the
open-loop latency-vs-load curve: accepted throughput rises with the
outstanding window while latency stays near zero-load, then the fabric
saturates and additional outstanding requests only queue — throughput
plateaus and latency grows linearly in ``W`` (Little's law).  The
**knee** is the smallest window that already achieves (a configurable
fraction of) the plateau throughput: the window an application needs to
keep the network busy, and the point past which deeper pipelining buys
only latency.

The module also renders the closed-vs-open comparison the subsystem
exists for: the closed-loop plateau against the open-loop saturation
throughput of the same (pattern, routing) curve, and per-window latency
slowdown relative to the open-loop zero-load latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .report import format_table
from .saturation import SaturationAnalysis

__all__ = [
    "DEFAULT_KNEE_FRACTION",
    "WindowSweepAnalysis",
    "detect_knee",
    "analyze_window_sweep",
    "group_window_sweep_runs",
    "window_sweep_table",
    "window_sweep_tables",
    "closed_vs_open_table",
    "phase_loop_table",
]

DEFAULT_KNEE_FRACTION = 0.95


def detect_knee(
    windows: Sequence[int],
    throughputs: Sequence[float],
    knee_fraction: float = DEFAULT_KNEE_FRACTION,
) -> int:
    """The smallest window achieving ``knee_fraction`` of peak throughput.

    ``windows`` must be sorted ascending.  Degenerate curves are handled
    conservatively: a flat curve (including all-zero throughput) knees at
    the smallest window, and a curve still rising at the largest window
    knees at that largest window — the sweep simply did not reach the
    plateau, which callers can detect by comparing against
    ``windows[-1]``.
    """
    if len(windows) != len(throughputs):
        raise ValueError("windows and throughputs must have equal length")
    if not windows:
        raise ValueError("knee detection needs at least one point")
    if list(windows) != sorted(windows):
        raise ValueError("windows must be sorted ascending")
    if not 0.0 < knee_fraction <= 1.0:
        raise ValueError("knee fraction must be in (0, 1]")
    threshold = max(throughputs) * knee_fraction
    for window, throughput in zip(windows, throughputs):
        if throughput >= threshold:
            return window
    raise AssertionError("unreachable: the peak itself meets the threshold")


@dataclass(frozen=True)
class WindowSweepAnalysis:
    """The outcome of knee detection over one window sweep."""

    pattern: str
    routing: str
    knee_fraction: float
    knee_window: int
    #: (window, accepted load, mean transaction latency ns) per point.
    points: Tuple[Tuple[int, float, float], ...]

    @property
    def plateau_accepted_load(self) -> float:
        """The curve's self-throttled throughput ceiling."""
        return max(accepted for __, accepted, __unused in self.points)

    @property
    def latency_at_knee_ns(self) -> float:
        for window, __, latency in self.points:
            if window == self.knee_window:
                return latency
        raise AssertionError("knee window missing from points")

    @property
    def zero_window_latency_ns(self) -> float:
        """Mean transaction latency at the smallest swept window."""
        return self.points[0][2]

    def to_dict(self) -> Dict[str, object]:
        return {
            "pattern": self.pattern,
            "routing": self.routing,
            "knee_fraction": self.knee_fraction,
            "knee_window": self.knee_window,
            "plateau_accepted_load": self.plateau_accepted_load,
            "latency_at_knee_ns": self.latency_at_knee_ns,
            "points": [list(point) for point in self.points],
        }


def _point_from_run(
    run: Mapping[str, object],
) -> Optional[Tuple[int, float, float, str, str]]:
    result = run.get("result")
    if not isinstance(result, Mapping) or "window" not in result:
        return None
    transactions = result.get("transactions")
    if not isinstance(transactions, Mapping):
        return None
    latency = transactions.get("latency_ns")
    if not isinstance(latency, Mapping):
        return None
    return (
        int(result["window"]),
        float(result.get("accepted_load", 0.0)),
        float(latency["mean"]),
        str(result.get("pattern", "")),
        str(result.get("routing", "")),
    )


def analyze_window_sweep(
    runs: Iterable[Mapping[str, object]],
    knee_fraction: float = DEFAULT_KNEE_FRACTION,
) -> WindowSweepAnalysis:
    """Knee analysis over the run records of one window sweep.

    ``runs`` are runner records of ``measure_window_point`` results
    (fresh or loaded from a results payload); they must all belong to
    one (pattern, routing) curve.
    """
    points: List[Tuple[int, float, float]] = []
    patterns = set()
    routings = set()
    for run in runs:
        extracted = _point_from_run(run)
        if extracted is None:
            continue
        window, accepted, latency, pattern, routing = extracted
        points.append((window, accepted, latency))
        patterns.add(pattern)
        routings.add(routing)
    if not points:
        raise ValueError("no completed window-sweep points in these runs")
    if len(patterns) > 1:
        raise ValueError(
            f"window sweep mixes traffic patterns: {sorted(patterns)}")
    if len(routings) > 1:
        raise ValueError(
            f"window sweep mixes routing policies: {sorted(routings)}")
    points.sort(key=lambda p: p[0])
    windows = [p[0] for p in points]
    throughputs = [p[1] for p in points]
    return WindowSweepAnalysis(
        pattern=patterns.pop(),
        routing=routings.pop(),
        knee_fraction=knee_fraction,
        knee_window=detect_knee(windows, throughputs, knee_fraction),
        points=tuple(points))


def group_window_sweep_runs(
    runs: Iterable[Mapping[str, object]],
) -> Dict[Tuple[str, str], List[Mapping[str, object]]]:
    """Split run records into per-curve groups keyed ``(pattern, routing)``."""
    groups: Dict[Tuple[str, str], List[Mapping[str, object]]] = {}
    for run in runs:
        extracted = _point_from_run(run)
        if extracted is None:
            continue
        __, __unused, __a, pattern, routing = extracted
        groups.setdefault((pattern, routing), []).append(run)
    return groups


def window_sweep_table(
    runs: Iterable[Mapping[str, object]],
    knee_fraction: float = DEFAULT_KNEE_FRACTION,
    title: str = "",
) -> str:
    """A throughput/latency-vs-window table plus the detected knee."""
    analysis = analyze_window_sweep(runs, knee_fraction)
    rows = [[f"{window:d}", f"{accepted:.3f}", f"{latency:.1f}"]
            for window, accepted, latency in analysis.points]
    table = format_table(
        ("window", "accepted load", "mean latency ns"), rows)
    verdict = (f"knee at window {analysis.knee_window} "
               f"({analysis.knee_fraction:g} of plateau accepted load "
               f"{analysis.plateau_accepted_load:.3f})")
    header = f"{title}\n" if title else ""
    curve = (f"{analysis.pattern}/{analysis.routing}" if analysis.routing
             else analysis.pattern)
    return f"{header}{table}\n{curve}: {verdict}"


def window_sweep_tables(
    runs: Iterable[Mapping[str, object]],
    knee_fraction: float = DEFAULT_KNEE_FRACTION,
    title: str = "",
) -> str:
    """Per-curve window tables for a mixed record stream."""
    groups = group_window_sweep_runs(runs)
    if not groups:
        raise ValueError("no completed window-sweep points in these runs")
    tables = []
    for (pattern, routing) in sorted(groups):
        curve = f"{pattern}/{routing}" if routing else pattern
        label = f"{title} [{curve}]" if title else curve
        tables.append(window_sweep_table(groups[(pattern, routing)],
                                         knee_fraction, title=label))
    return "\n\n".join(tables)


def closed_vs_open_table(
    window_analysis: WindowSweepAnalysis,
    open_analysis: SaturationAnalysis,
    title: str = "",
) -> str:
    """Closed-loop windows against the open-loop curve they self-throttle to.

    One row per window: accepted load, what fraction of the open-loop
    saturation throughput that is, and the latency slowdown relative to
    the open-loop zero-load latency.  The verdict line compares the
    closed-loop plateau with the open-loop ceiling — the sanity bound
    the closed-loop benchmarks pin (a window can fill the fabric but
    never push more through it than open-loop saturation).
    """
    if (window_analysis.pattern, window_analysis.routing) != (
            open_analysis.pattern, open_analysis.routing):
        raise ValueError(
            "closed/open comparison needs matching (pattern, routing): "
            f"{window_analysis.pattern}/{window_analysis.routing} vs "
            f"{open_analysis.pattern}/{open_analysis.routing}")
    open_ceiling = open_analysis.max_accepted_load
    zero_load = open_analysis.zero_load_latency_ns
    rows = []
    for window, accepted, latency in window_analysis.points:
        fraction = accepted / open_ceiling if open_ceiling else float("nan")
        slowdown = latency / zero_load if zero_load else float("nan")
        rows.append([f"{window:d}", f"{accepted:.3f}", f"{fraction:.2f}",
                     f"{slowdown:.2f}x"])
    table = format_table(
        ("window", "accepted load", "of open-loop sat", "latency slowdown"),
        rows)
    curve = f"{window_analysis.pattern}/{window_analysis.routing}"
    plateau = window_analysis.plateau_accepted_load
    verdict = (f"closed-loop plateau {plateau:.3f} vs open-loop saturation "
               f"throughput {open_ceiling:.3f} "
               f"({plateau / open_ceiling:.2f}x)" if open_ceiling else
               f"closed-loop plateau {plateau:.3f} (open-loop accepted zero)")
    header = f"{title}\n" if title else ""
    return f"{header}{table}\n{curve}: {verdict}"


def _phase_row_from_run(
    run: Mapping[str, object],
) -> Optional[Tuple[str, str, int, int, int, float, float]]:
    result = run.get("result")
    if not isinstance(result, Mapping) or "mean_iteration_ns" not in result:
        return None
    return (
        str(result.get("pattern", "")),
        str(result.get("routing", "")),
        int(result.get("window", 0)),
        int(result.get("messages_per_node", 0)),
        len(result.get("iterations", []) or []),
        float(result["mean_iteration_ns"]),
        float(result.get("mean_fence_wait_fraction", 0.0)),
    )


def phase_loop_table(
    runs: Iterable[Mapping[str, object]],
    title: str = "",
) -> str:
    """One row per phase-loop configuration: iteration time and fence wait.

    The comparison format for ``phase-loop-*`` sweeps, which fan the
    routing-policy axis out over one fence-synchronized workload — the
    closed-loop analogue of the routing-ablation tables.
    """
    rows = []
    for run in runs:
        extracted = _phase_row_from_run(run)
        if extracted is not None:
            rows.append(extracted)
    if not rows:
        raise ValueError("no completed phase-loop runs in these records")
    rows.sort(key=lambda r: (r[0], r[1], r[2], r[3]))
    formatted = [[pattern, routing, f"{window:d}", f"{messages:d}",
                  f"{iterations:d}", f"{iteration_ns:.1f}",
                  f"{fence_fraction:.2f}"]
                 for (pattern, routing, window, messages, iterations,
                      iteration_ns, fence_fraction) in rows]
    table = format_table(
        ("pattern", "routing", "window", "msgs/node", "iters",
         "mean iteration ns", "fence-wait frac"),
        formatted)
    return f"{title}\n{table}" if title else table
