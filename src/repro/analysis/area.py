"""Die-area model — Tables II and III of the paper.

The paper reports the area of the four network component types as
percentages of the 451 mm^2 Anton 3 floorplan, and the incremental cost
of the particle cache and network fence.  This model works from
*per-instance* areas (derived from the published totals and component
counts) so that configuration changes — more cache entries, more fence
counters, different tile counts — re-price the tables, which is what the
ablation benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..config import ASIC_GENERATIONS, ChipConfig, DEFAULT_CHIP

#: Published totals (Table II): component -> (count, % of total die area).
PAPER_TABLE2 = {
    "Core Routers": (288, 9.4),
    "Edge Routers": (72, 1.4),
    "Channel Adapters": (24, 2.8),
    "Row Adapters": (72, 0.5),
}

#: Published feature costs (Table III): feature -> % of total die area.
PAPER_TABLE3 = {
    "Particle Cache": 1.6,
    "Network Fence": 0.2,
}

DIE_AREA_MM2 = ASIC_GENERATIONS["anton3"].die_size_mm2


@dataclass(frozen=True)
class AreaRow:
    name: str
    count: int
    area_mm2: float
    percent_of_die: float


@dataclass
class AreaModel:
    """Parametric network-area model for one chip configuration.

    Per-instance areas are calibrated once from the published Table II/III
    percentages at the default configuration; scaling knobs then re-price
    modified designs:

    * Channel Adapter area splits into a fixed part and the particle-cache
      SRAM (which scales with entries x per-entry state).
    * Router areas include the fence counter arrays (which scale with the
      number of fence counters per input port).
    """

    chip: ChipConfig = field(default_factory=lambda: DEFAULT_CHIP)
    pcache_entries: int = 1024
    fence_counters_per_edge_input: int = 96
    die_area_mm2: float = DIE_AREA_MM2

    # Calibrated per-instance areas (mm^2) at the published design point.
    core_router_mm2: float = DIE_AREA_MM2 * 0.094 / 288
    edge_router_mm2: float = DIE_AREA_MM2 * 0.014 / 72
    channel_adapter_mm2: float = DIE_AREA_MM2 * 0.028 / 24
    row_adapter_mm2: float = DIE_AREA_MM2 * 0.005 / 72

    # Feature carve-outs at the published design point.
    pcache_total_mm2: float = DIE_AREA_MM2 * 0.016
    fence_total_mm2: float = DIE_AREA_MM2 * 0.002

    def _pcache_scale(self) -> float:
        return self.pcache_entries / 1024

    def _fence_scale(self) -> float:
        return self.fence_counters_per_edge_input / 96

    def component_rows(self) -> List[AreaRow]:
        """Table II: network component contributions to die area."""
        chip = self.chip
        pcache_extra = self.pcache_total_mm2 * (self._pcache_scale() - 1.0)
        fence_extra = self.fence_total_mm2 * (self._fence_scale() - 1.0)
        entries = [
            ("Core Routers", chip.num_core_routers,
             self.core_router_mm2 * chip.num_core_routers),
            ("Edge Routers", chip.num_edge_routers,
             self.edge_router_mm2 * chip.num_edge_routers + fence_extra),
            ("Channel Adapters", chip.num_channel_adapters,
             self.channel_adapter_mm2 * chip.num_channel_adapters
             + pcache_extra),
            ("Row Adapters", chip.num_row_adapters,
             self.row_adapter_mm2 * chip.num_row_adapters),
        ]
        return [AreaRow(name, count, area,
                        100.0 * area / self.die_area_mm2)
                for name, count, area in entries]

    def feature_rows(self) -> List[AreaRow]:
        """Table III: implementation cost of the two network features."""
        pcache = self.pcache_total_mm2 * self._pcache_scale()
        fence = self.fence_total_mm2 * self._fence_scale()
        return [
            AreaRow("Particle Cache", self.chip.num_channel_adapters,
                    pcache, 100.0 * pcache / self.die_area_mm2),
            AreaRow("Network Fence",
                    self.chip.num_core_routers + self.chip.num_edge_routers,
                    fence, 100.0 * fence / self.die_area_mm2),
        ]

    def network_total_percent(self) -> float:
        """The paper's headline: network uses ~14.1% of the die."""
        return sum(row.percent_of_die for row in self.component_rows())

    def feature_total_percent(self) -> float:
        """Table III total: ~1.8% for particle cache plus fence."""
        return sum(row.percent_of_die for row in self.feature_rows())
