"""Saturation-point detection for open-loop load sweeps.

A latency-vs-offered-load curve has the classic interconnect shape: flat
near the zero-load latency, then diverging as offered load approaches
the saturation throughput.  Following standard practice we define the
saturation point as the offered load at which mean latency first exceeds
a multiple (default 3x) of the zero-load latency, interpolating linearly
between the bracketing load points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .report import format_table

__all__ = [
    "DEFAULT_LATENCY_MULTIPLE",
    "SaturationAnalysis",
    "detect_saturation",
    "analyze_load_sweep",
    "group_load_sweep_runs",
    "load_sweep_table",
    "load_sweep_tables",
]

DEFAULT_LATENCY_MULTIPLE = 3.0


@dataclass(frozen=True)
class SaturationAnalysis:
    """The outcome of saturation detection over one load sweep."""

    pattern: str
    zero_load_latency_ns: float
    latency_multiple: float
    saturation_load: Optional[float]
    #: (offered load, mean request latency ns, accepted load) per point.
    points: Tuple[Tuple[float, float, float], ...]
    #: Routing policy the curve was measured under ("" for pre-routing
    #: records that did not carry the field).
    routing: str = ""

    @property
    def saturated(self) -> bool:
        return self.saturation_load is not None

    @property
    def max_accepted_load(self) -> float:
        """The highest accepted load any point sustained — the curve's
        throughput ceiling, the routing-ablation comparison metric."""
        return max(accepted for __, __unused, accepted in self.points)

    def to_dict(self) -> Dict[str, object]:
        return {
            "pattern": self.pattern,
            "routing": self.routing,
            "zero_load_latency_ns": self.zero_load_latency_ns,
            "latency_multiple": self.latency_multiple,
            "saturation_load": self.saturation_load,
            "points": [list(point) for point in self.points],
        }


def detect_saturation(
    loads: Sequence[float],
    latencies: Sequence[float],
    latency_multiple: float = DEFAULT_LATENCY_MULTIPLE,
) -> Optional[float]:
    """Offered load where latency first crosses the divergence threshold.

    ``loads`` must be sorted ascending; the zero-load latency is taken
    from the lowest load point.  Returns ``None`` when the curve stays
    below ``latency_multiple x`` zero-load latency everywhere (the sweep
    never saturated).
    """
    if len(loads) != len(latencies):
        raise ValueError("loads and latencies must have equal length")
    if not loads:
        raise ValueError("saturation detection needs at least one point")
    if list(loads) != sorted(loads):
        raise ValueError("loads must be sorted ascending")
    if latency_multiple <= 1.0:
        raise ValueError("latency multiple must exceed 1")
    threshold = latencies[0] * latency_multiple
    for i, latency in enumerate(latencies):
        if latency <= threshold:
            continue
        if i == 0:
            return loads[0]
        prev_load, prev_lat = loads[i - 1], latencies[i - 1]
        frac = (threshold - prev_lat) / (latency - prev_lat)
        return prev_load + frac * (loads[i] - prev_load)
    return None


def _point_from_run(
    run: Mapping[str, object],
) -> Optional[Tuple[float, float, float, str, str]]:
    result = run.get("result")
    if not isinstance(result, Mapping):
        return None
    classes = result.get("classes")
    if not isinstance(classes, Mapping):
        return None
    request = classes.get("request")
    if not isinstance(request, Mapping):
        return None
    latency = request.get("latency_ns")
    if not isinstance(latency, Mapping):
        return None
    return (
        float(result["offered_load"]),
        float(latency["mean"]),
        float(result.get("accepted_load", 0.0)),
        str(result.get("pattern", "")),
        str(result.get("routing", "")),
    )


def analyze_load_sweep(
    runs: Iterable[Mapping[str, object]],
    latency_multiple: float = DEFAULT_LATENCY_MULTIPLE,
) -> SaturationAnalysis:
    """Saturation analysis over the run records of one load sweep.

    ``runs`` are runner records of ``load_sweep_point`` results (fresh or
    loaded from a results payload); they are sorted by offered load and
    reduced to the mean request latency per point.
    """
    points: List[Tuple[float, float, float]] = []
    patterns = set()
    routings = set()
    for run in runs:
        extracted = _point_from_run(run)
        if extracted is None:
            continue
        load, latency, accepted, pattern, routing = extracted
        points.append((load, latency, accepted))
        patterns.add(pattern)
        routings.add(routing)
    if not points:
        raise ValueError("no completed load-sweep points in these runs")
    if len(patterns) > 1:
        raise ValueError(
            f"load sweep mixes traffic patterns: {sorted(patterns)}")
    if len(routings) > 1:
        raise ValueError(
            f"load sweep mixes routing policies: {sorted(routings)}")
    points.sort(key=lambda p: p[0])
    loads = [p[0] for p in points]
    latencies = [p[1] for p in points]
    return SaturationAnalysis(
        pattern=patterns.pop(),
        routing=routings.pop(),
        zero_load_latency_ns=latencies[0],
        latency_multiple=latency_multiple,
        saturation_load=detect_saturation(loads, latencies, latency_multiple),
        points=tuple(points))


def group_load_sweep_runs(
    runs: Iterable[Mapping[str, object]],
) -> Dict[Tuple[str, str], List[Mapping[str, object]]]:
    """Split run records into per-curve groups keyed ``(pattern, routing)``.

    Routing-ablation sweeps mix several adversarial patterns (and report
    pages mix several policies) in one record stream; each group is one
    latency-vs-load curve :func:`analyze_load_sweep` accepts.
    """
    groups: Dict[Tuple[str, str], List[Mapping[str, object]]] = {}
    for run in runs:
        extracted = _point_from_run(run)
        if extracted is None:
            continue
        __, __unused, __a, pattern, routing = extracted
        groups.setdefault((pattern, routing), []).append(run)
    return groups


def load_sweep_table(
    runs: Iterable[Mapping[str, object]],
    latency_multiple: float = DEFAULT_LATENCY_MULTIPLE,
    title: str = "",
) -> str:
    """A latency-vs-offered-load table plus the detected saturation point."""
    analysis = analyze_load_sweep(runs, latency_multiple)
    rows = [[f"{load:.3f}", f"{latency:.1f}", f"{accepted:.3f}"]
            for load, latency, accepted in analysis.points]
    table = format_table(
        ("offered load", "mean latency ns", "accepted load"), rows)
    if analysis.saturated:
        verdict = (f"saturation at offered load ~{analysis.saturation_load:.3f} "
                   f"({analysis.latency_multiple:g}x zero-load latency "
                   f"{analysis.zero_load_latency_ns:.1f} ns)")
    else:
        verdict = (f"no saturation within sweep "
                   f"(latency stayed under {analysis.latency_multiple:g}x "
                   f"zero-load {analysis.zero_load_latency_ns:.1f} ns)")
    header = f"{title}\n" if title else ""
    curve = (f"{analysis.pattern}/{analysis.routing}" if analysis.routing
             else analysis.pattern)
    return f"{header}{table}\n{curve}: {verdict}"


def load_sweep_tables(
    runs: Iterable[Mapping[str, object]],
    latency_multiple: float = DEFAULT_LATENCY_MULTIPLE,
    title: str = "",
) -> str:
    """Per-curve latency-vs-load tables for a mixed record stream.

    Groups the runs by ``(pattern, routing)`` and renders one
    :func:`load_sweep_table` per curve — the report format for
    ``route-ablation-*`` sweeps, which mix adversarial patterns on
    purpose.  Raises ``ValueError`` when no group yields any points.
    """
    groups = group_load_sweep_runs(runs)
    if not groups:
        raise ValueError("no completed load-sweep points in these runs")
    tables = []
    for (pattern, routing) in sorted(groups):
        curve = f"{pattern}/{routing}" if routing else pattern
        label = f"{title} [{curve}]" if title else curve
        tables.append(load_sweep_table(groups[(pattern, routing)],
                                       latency_multiple, title=label))
    return "\n\n".join(tables)
