"""Analysis: fits, area model, activity traces, report formatting."""

from .activity import (
    COMPONENTS,
    ActivityTrace,
    Interval,
    render_ascii,
    trace_from_breakdowns,
)
from .area import PAPER_TABLE2, PAPER_TABLE3, AreaModel, AreaRow
from .fits import LinearFit, fit_latency_vs_hops
from .report import Comparison, comparison_table, format_table, within_band

__all__ = [
    "COMPONENTS",
    "ActivityTrace",
    "Interval",
    "render_ascii",
    "trace_from_breakdowns",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "AreaModel",
    "AreaRow",
    "LinearFit",
    "fit_latency_vs_hops",
    "Comparison",
    "comparison_table",
    "format_table",
    "within_band",
]
