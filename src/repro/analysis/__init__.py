"""Analysis: fits, area model, activity traces, report formatting."""

from .activity import (
    COMPONENTS,
    ActivityTrace,
    Interval,
    render_ascii,
    trace_from_breakdowns,
)
from .aggregate import (
    flatten_mapping,
    load_payload,
    rows_to_csv,
    sweep_rows,
    sweep_table,
    sweeps_to_csv,
)
from .area import PAPER_TABLE2, PAPER_TABLE3, AreaModel, AreaRow
from .fits import LinearFit, fit_latency_vs_hops
from .report import Comparison, comparison_table, format_table, within_band

__all__ = [
    "COMPONENTS",
    "ActivityTrace",
    "Interval",
    "render_ascii",
    "trace_from_breakdowns",
    "flatten_mapping",
    "load_payload",
    "rows_to_csv",
    "sweep_rows",
    "sweep_table",
    "sweeps_to_csv",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "AreaModel",
    "AreaRow",
    "LinearFit",
    "fit_latency_vs_hops",
    "Comparison",
    "comparison_table",
    "format_table",
    "within_band",
]
