"""Analysis: fits, area model, activity traces, report formatting."""

from .activity import (
    COMPONENTS,
    ActivityTrace,
    Interval,
    render_ascii,
    trace_from_breakdowns,
)
from .aggregate import (
    flatten_mapping,
    grouped_percentile_table,
    grouped_percentiles,
    load_payload,
    percentile,
    rows_to_csv,
    summarize_values,
    sweep_rows,
    sweep_table,
    sweeps_to_csv,
)
from .area import PAPER_TABLE2, PAPER_TABLE3, AreaModel, AreaRow
from .closedloop import (
    WindowSweepAnalysis,
    analyze_window_sweep,
    closed_vs_open_table,
    detect_knee,
    group_window_sweep_runs,
    phase_loop_table,
    window_sweep_table,
    window_sweep_tables,
)
from .fits import LinearFit, fit_latency_vs_hops
from .plot import ascii_chart, series_from_runs
from .report import Comparison, comparison_table, format_table, within_band
from .saturation import (
    SaturationAnalysis,
    analyze_load_sweep,
    detect_saturation,
    group_load_sweep_runs,
    load_sweep_table,
    load_sweep_tables,
)

__all__ = [
    "COMPONENTS",
    "ActivityTrace",
    "Interval",
    "render_ascii",
    "trace_from_breakdowns",
    "flatten_mapping",
    "grouped_percentile_table",
    "grouped_percentiles",
    "load_payload",
    "percentile",
    "rows_to_csv",
    "summarize_values",
    "sweep_rows",
    "sweep_table",
    "sweeps_to_csv",
    "SaturationAnalysis",
    "WindowSweepAnalysis",
    "analyze_load_sweep",
    "analyze_window_sweep",
    "ascii_chart",
    "closed_vs_open_table",
    "detect_knee",
    "group_window_sweep_runs",
    "phase_loop_table",
    "window_sweep_table",
    "window_sweep_tables",
    "detect_saturation",
    "group_load_sweep_runs",
    "load_sweep_table",
    "load_sweep_tables",
    "series_from_runs",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "AreaModel",
    "AreaRow",
    "LinearFit",
    "fit_latency_vs_hops",
    "Comparison",
    "comparison_table",
    "format_table",
    "within_band",
]
