"""Aggregation of runner sweep results into tables, CSV, and JSON.

The parallel runner (:mod:`repro.runner`) emits one record per run:
``{"experiment": name, "params": {...}, "result": {...}}``.  The helpers
here flatten those records into rectangular rows so a sweep can be
printed next to the paper's figures (:func:`sweep_table`), exported for
plotting (:func:`rows_to_csv`), or reloaded from a results file
(:func:`load_payload`).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .report import format_table


def flatten_mapping(
    mapping: Mapping[str, object], prefix: str = ""
) -> Dict[str, object]:
    """Flatten nested dicts into dotted keys; lists become JSON strings.

    Example:
        >>> flatten_mapping({"fit": {"fixed_ns": 55.9}, "dims": [4, 4, 8]})
        {'fit.fixed_ns': 55.9, 'dims': '[4, 4, 8]'}
    """
    flat: Dict[str, object] = {}
    for key, value in mapping.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_mapping(value, prefix=f"{name}."))
        elif isinstance(value, (list, tuple)):
            flat[name] = json.dumps(list(value))
        else:
            flat[name] = value
    return flat


def sweep_rows(
    runs: Iterable[Mapping[str, object]],
) -> Tuple[List[str], List[List[object]]]:
    """Rectangularize run records into ``(headers, rows)``.

    Headers are the union of flattened parameter keys followed by the
    union of flattened result keys, each in sorted order; a result key
    that collides with a parameter key is prefixed with ``result.``.
    """
    flattened = []
    param_keys: set = set()
    result_keys: set = set()
    for run in runs:
        params = flatten_mapping(run.get("params", {}) or {})
        results = flatten_mapping(run.get("result", {}) or {})
        param_keys.update(params)
        result_keys.update(results)
        flattened.append((params, results))
    headers = sorted(param_keys)
    result_headers = [
        (key, f"result.{key}" if key in param_keys else key)
        for key in sorted(result_keys)
    ]
    headers = headers + [shown for _, shown in result_headers]
    rows = []
    for params, results in flattened:
        row: List[object] = [params.get(key, "") for key in sorted(param_keys)]
        row.extend(results.get(key, "") for key, _ in result_headers)
        rows.append(row)
    return headers, rows


def _compact(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.6g}"
    return value


def sweep_table(runs: Iterable[Mapping[str, object]], title: str = "") -> str:
    """A plain-text table of one sweep's runs (floats compacted)."""
    headers, rows = sweep_rows(runs)
    if not rows:
        return f"{title}\n(no runs)" if title else "(no runs)"
    table = format_table(headers, [[_compact(cell) for cell in row] for row in rows])
    return f"{title}\n{table}" if title else table


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV text (full float precision) for ``headers``/``rows``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow([repr(c) if isinstance(c, float) else c for c in row])
    return buffer.getvalue()


def sweeps_to_csv(sweeps: Iterable[Mapping[str, object]]) -> str:
    """CSV for a whole payload; a ``sweep`` column labels each run."""
    records = []
    for sweep in sweeps:
        for run in sweep.get("runs", []):
            record = dict(run)
            params = dict(record.get("params", {}) or {})
            params["sweep"] = sweep.get("label", "")
            record["params"] = params
            records.append(record)
    headers, rows = sweep_rows(records)
    return rows_to_csv(headers, rows)


def load_payload(text: str) -> List[Dict[str, object]]:
    """Parse runner JSON output into a list of sweep records.

    Accepts the ``{"sweeps": [...]}`` envelope the CLI emits, a bare
    list of sweeps, or a single sweep object.
    """
    data = json.loads(text)
    if isinstance(data, Mapping) and "sweeps" in data:
        data = data["sweeps"]
    if isinstance(data, Mapping):
        data = [data]
    sweeps = []
    for entry in data:
        if not isinstance(entry, Mapping) or "runs" not in entry:
            raise ValueError("not a runner result payload")
        sweeps.append(dict(entry))
    return sweeps
