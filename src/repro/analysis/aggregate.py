"""Aggregation of runner sweep results into tables, CSV, and JSON.

The parallel runner (:mod:`repro.runner`) emits one record per run:
``{"experiment": name, "params": {...}, "result": {...}}``.  The helpers
here flatten those records into rectangular rows so a sweep can be
printed next to the paper's figures (:func:`sweep_table`), exported for
plotting (:func:`rows_to_csv`), or reloaded from a results file
(:func:`load_payload`).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .report import format_table


def flatten_mapping(
    mapping: Mapping[str, object], prefix: str = ""
) -> Dict[str, object]:
    """Flatten nested dicts into dotted keys; lists become JSON strings.

    Example:
        >>> flatten_mapping({"fit": {"fixed_ns": 55.9}, "dims": [4, 4, 8]})
        {'fit.fixed_ns': 55.9, 'dims': '[4, 4, 8]'}
    """
    flat: Dict[str, object] = {}
    for key, value in mapping.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_mapping(value, prefix=f"{name}."))
        elif isinstance(value, (list, tuple)):
            flat[name] = json.dumps(list(value))
        else:
            flat[name] = value
    return flat


def sweep_rows(
    runs: Iterable[Mapping[str, object]],
) -> Tuple[List[str], List[List[object]]]:
    """Rectangularize run records into ``(headers, rows)``.

    Headers are the union of flattened parameter keys followed by the
    union of flattened result keys, each in sorted order; a result key
    that collides with a parameter key is prefixed with ``result.``.
    """
    flattened = []
    param_keys: set = set()
    result_keys: set = set()
    for run in runs:
        params = flatten_mapping(run.get("params", {}) or {})
        results = flatten_mapping(run.get("result", {}) or {})
        param_keys.update(params)
        result_keys.update(results)
        flattened.append((params, results))
    headers = sorted(param_keys)
    result_headers = [
        (key, f"result.{key}" if key in param_keys else key)
        for key in sorted(result_keys)
    ]
    headers = headers + [shown for _, shown in result_headers]
    rows = []
    for params, results in flattened:
        row: List[object] = [params.get(key, "") for key in sorted(param_keys)]
        row.extend(results.get(key, "") for key, _ in result_headers)
        rows.append(row)
    return headers, rows


def _compact(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.6g}"
    return value


def sweep_table(runs: Iterable[Mapping[str, object]], title: str = "") -> str:
    """A plain-text table of one sweep's runs (floats compacted)."""
    headers, rows = sweep_rows(runs)
    if not rows:
        return f"{title}\n(no runs)" if title else "(no runs)"
    table = format_table(headers, [[_compact(cell) for cell in row] for row in rows])
    return f"{title}\n{table}" if title else table


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV text (full float precision) for ``headers``/``rows``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow([repr(c) if isinstance(c, float) else c for c in row])
    return buffer.getvalue()


def sweeps_to_csv(sweeps: Iterable[Mapping[str, object]]) -> str:
    """CSV for a whole payload; a ``sweep`` column labels each run."""
    records = []
    for sweep in sweeps:
        for run in sweep.get("runs", []):
            record = dict(run)
            params = dict(record.get("params", {}) or {})
            params["sweep"] = sweep.get("label", "")
            record["params"] = params
            records.append(record)
    headers, rows = sweep_rows(records)
    return rows_to_csv(headers, rows)


#: The percentile set reported by grouped summaries and the traffic
#: surfaces (p50/p95/p99 plus the extremes via count/mean/max).
SUMMARY_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def _percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Example:
        >>> percentile([1.0, 2.0, 3.0, 4.0], 50.0)
        2.5
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    return _percentile_of_sorted(sorted(float(v) for v in values), q)


def summarize_values(
    values: Sequence[float],
    percentiles: Sequence[float] = SUMMARY_PERCENTILES,
) -> Dict[str, object]:
    """Count/mean/max plus the standard percentile set for one sample set.

    This is the single aggregation path shared by the figure-5 latency
    tables and the load-sweep reports: both feed their raw latency
    samples through here so every table exposes the same columns.
    """
    if not values:
        raise ValueError("summarize_values needs at least one sample")
    ordered = sorted(float(v) for v in values)
    summary: Dict[str, object] = {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
    }
    for q in percentiles:
        label = f"p{q:g}".replace(".", "_")
        summary[label] = _percentile_of_sorted(ordered, q)
    return summary


def grouped_percentiles(
    records: Iterable[Mapping[str, object]],
    by: str,
    value: str,
    percentiles: Sequence[float] = SUMMARY_PERCENTILES,
) -> Dict[object, Dict[str, object]]:
    """Per-group percentile summaries over flattened run records.

    ``records`` are runner run records (``{"params": ..., "result": ...}``);
    each is flattened with :func:`flatten_mapping`, grouped by the ``by``
    column (a parameter key), and the ``value`` column (a result key) is
    summarized per group with :func:`summarize_values`.  Records missing
    either column are skipped.
    """
    groups: Dict[object, List[float]] = {}
    for record in records:
        flat = flatten_mapping(record.get("params", {}) or {})
        flat.update(flatten_mapping(record.get("result", {}) or {}))
        if by not in flat or value not in flat:
            continue
        groups.setdefault(flat[by], []).append(float(flat[value]))  # type: ignore[arg-type]

    def key_order(item: Tuple[object, List[float]]) -> Tuple[int, object]:
        key = item[0]
        # Numeric keys sort numerically (hops 0..12, not "0", "1", "10");
        # everything else falls back to string order.
        if isinstance(key, (int, float)) and not isinstance(key, bool):
            return (0, key)
        return (1, str(key))

    return {
        key: summarize_values(samples, percentiles)
        for key, samples in sorted(groups.items(), key=key_order)
    }


def grouped_percentile_table(
    records: Iterable[Mapping[str, object]],
    by: str,
    value: str,
    percentiles: Sequence[float] = SUMMARY_PERCENTILES,
    title: str = "",
) -> str:
    """A plain-text table of :func:`grouped_percentiles` output."""
    groups = grouped_percentiles(records, by, value, percentiles)
    if not groups:
        return f"{title}\n(no samples)" if title else "(no samples)"
    first = next(iter(groups.values()))
    headers = [by] + list(first)
    rows = [
        [_compact(key)] + [_compact(v) for v in summary.values()]
        for key, summary in groups.items()
    ]
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def load_payload(text: str) -> List[Dict[str, object]]:
    """Parse runner JSON output into a list of sweep records.

    Accepts the ``{"sweeps": [...]}`` envelope the CLI emits, a bare
    list of sweeps, or a single sweep object.
    """
    data = json.loads(text)
    if isinstance(data, Mapping) and "sweeps" in data:
        data = data["sweeps"]
    if isinstance(data, Mapping):
        data = [data]
    sweeps = []
    for entry in data:
        if not isinstance(entry, Mapping) or "runs" not in entry:
            raise ValueError("not a runner result payload")
        sweeps.append(dict(entry))
    return sweeps
