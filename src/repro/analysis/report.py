"""Table/figure printers shared by the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures; these
helpers format the rows the way the paper reports them, next to the
published values so the comparison is visible in the benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Plain-text table with padded columns."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


@dataclass(frozen=True)
class Comparison:
    """A measured value next to its published counterpart."""

    name: str
    measured: float
    published: float
    unit: str = ""

    @property
    def ratio(self) -> float:
        if self.published == 0:
            return float("inf")
        return self.measured / self.published

    def row(self) -> Tuple[str, str, str, str]:
        return (self.name, f"{self.measured:.2f}",
                f"{self.published:.2f}", f"{self.ratio:.2f}x")


def comparison_table(comparisons: Sequence[Comparison],
                     title: str = "") -> str:
    table = format_table(
        ("quantity", "measured", "paper", "ratio"),
        [c.row() for c in comparisons])
    return f"{title}\n{table}" if title else table


def within_band(value: float, band: Tuple[float, float],
                slack: float = 0.0) -> bool:
    """Is ``value`` inside [lo*(1-slack), hi*(1+slack)]?"""
    lo, hi = band
    return lo * (1.0 - slack) <= value <= hi * (1.0 + slack)
