"""ASCII timelines over observability metrics artifacts.

``repro-runner report --timeline METRIC`` renders one sliced metric of
a ``<digest>.metrics.json`` artifact (:mod:`repro.observe.artifacts`)
as an ASCII chart: slice midpoints on the x axis, per-slice values on
the y axis, one series per machine the run built.  Slice gauges plot
their time-weighted means; slice counters plot per-slice event counts.

Built on the same renderer as ``report --plot``
(:func:`repro.analysis.plot.ascii_chart`), so output is deterministic
and test-assertable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from .plot import ascii_chart

__all__ = ["available_metrics", "render_timeline", "timeline_points"]


def _machine_payloads(artifact: Mapping) -> List[Mapping]:
    machines = artifact.get("machines")
    if not isinstance(machines, list) or not machines:
        raise ValueError("not a metrics artifact: no machines list")
    return machines


def available_metrics(artifact: Mapping) -> List[Tuple[str, str]]:
    """All plottable ``(kind, name)`` pairs across the run's machines.

    ``kind`` is ``gauge`` or ``counter``; sorted for stable help text.
    """
    names = set()
    for machine in _machine_payloads(artifact):
        for name in machine.get("gauges", {}):
            names.add(("gauge", name))
        for name in machine.get("counters", {}):
            names.add(("counter", name))
    return sorted(names)


def timeline_points(artifact: Mapping,
                    metric: str) -> Dict[str, List[Tuple[float, float]]]:
    """Per-machine ``(slice_midpoint_ns, value)`` series for one metric.

    ``metric`` names a slice gauge or slice counter; machines that never
    recorded it are skipped.  Raises ``ValueError`` (listing what *is*
    available) when no machine carries the metric.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for index, machine in enumerate(_machine_payloads(artifact)):
        values = machine.get("gauges", {}).get(metric)
        if values is None:
            values = machine.get("counters", {}).get(metric)
        if values is None:
            continue
        period = float(machine["period_ns"])
        series[f"m{index}"] = [
            ((slice_index + 0.5) * period, float(value))
            for slice_index, value in enumerate(values)
        ]
    if not series:
        names = ", ".join(name for __, name in available_metrics(artifact))
        raise ValueError(
            f"metric {metric!r} not in this artifact; available: {names}")
    return series


def render_timeline(artifact: Mapping, metric: str,
                    width: int = 64, height: int = 16) -> str:
    """The ASCII timeline chart for one metric of one artifact."""
    series = timeline_points(artifact, metric)
    digest = str(artifact.get("digest", ""))[:12]
    return ascii_chart(
        series,
        width=width,
        height=height,
        x_label="t_ns",
        y_label=metric,
        title=f"{metric} @ {digest}" if digest else metric,
        force_legend=len(series) > 1,
    )
