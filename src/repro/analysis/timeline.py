"""ASCII timelines over observability metrics artifacts.

``repro-runner report --timeline METRIC`` renders one sliced metric of
a ``<digest>.metrics.json`` artifact (:mod:`repro.observe.artifacts`)
as an ASCII chart: slice midpoints on the x axis, per-slice values on
the y axis, one series per machine the run built.  Slice gauges plot
their time-weighted means; slice counters plot per-slice event counts.

``--by vc`` expands a metric family across virtual channels: metric
names like ``link/<name>/vc<k>/occupancy`` share the family
``link/<name>/occupancy``, and ``--timeline link/<name>/occupancy --by
vc`` charts one series per channel (``vc0``, ``vc1``, ...) instead of
requiring one invocation per channel.

Built on the same renderer as ``report --plot``
(:func:`repro.analysis.plot.ascii_chart`), so output is deterministic
and test-assertable.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple

from .plot import ascii_chart

__all__ = ["available_metrics", "render_timeline", "timeline_points"]


def _machine_payloads(artifact: Mapping) -> List[Mapping]:
    machines = artifact.get("machines")
    if not isinstance(machines, list) or not machines:
        raise ValueError("not a metrics artifact: no machines list")
    return machines


def available_metrics(artifact: Mapping) -> List[Tuple[str, str]]:
    """All plottable ``(kind, name)`` pairs across the run's machines.

    ``kind`` is ``gauge`` or ``counter``; sorted for stable help text.
    """
    names = set()
    for machine in _machine_payloads(artifact):
        for name in machine.get("gauges", {}):
            names.add(("gauge", name))
        for name in machine.get("counters", {}):
            names.add(("counter", name))
    return sorted(names)


def _slice_series(machine: Mapping, name: str) -> Optional[List[float]]:
    values = machine.get("gauges", {}).get(name)
    if values is None:
        values = machine.get("counters", {}).get(name)
    return values


def _points(machine: Mapping, values: List[float]) -> List[Tuple[float, float]]:
    period = float(machine["period_ns"])
    return [
        ((slice_index + 0.5) * period, float(value))
        for slice_index, value in enumerate(values)
    ]


def _vc_pattern(metric: str) -> "re.Pattern[str]":
    """The per-VC name pattern of one metric family.

    ``link/<name>/occupancy`` expands to every recorded
    ``link/<name>/vc<k>/occupancy``: the channel component slots in
    before the final path segment.
    """
    head, sep, leaf = metric.rpartition("/")
    if not sep:
        raise ValueError(
            f"--by vc needs a path-shaped metric family, got {metric!r}")
    return re.compile(
        rf"^{re.escape(head)}/vc(\d+)/{re.escape(leaf)}$")


def timeline_points(
    artifact: Mapping,
    metric: str,
    by: Optional[str] = None,
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-machine ``(slice_midpoint_ns, value)`` series for one metric.

    ``metric`` names a slice gauge or slice counter; machines that never
    recorded it are skipped.  With ``by="vc"``, ``metric`` names a
    family instead and every ``.../vc<k>/...`` member becomes its own
    series (``vc<k>``, or ``m<i>/vc<k>`` across multiple machines).
    Raises ``ValueError`` (listing what *is* available) when nothing
    matches.
    """
    if by not in (None, "vc"):
        raise ValueError(f"unsupported --by {by!r}; expected 'vc'")
    machines = _machine_payloads(artifact)
    series: Dict[str, List[Tuple[float, float]]] = {}
    if by == "vc":
        pattern = _vc_pattern(metric)
        for index, machine in enumerate(machines):
            names = set(machine.get("gauges", {})) | set(
                machine.get("counters", {}))
            matched = sorted(
                (int(match.group(1)), name)
                for name in names
                for match in (pattern.match(name),)
                if match is not None
            )
            for channel, name in matched:
                label = (
                    f"vc{channel}" if len(machines) == 1
                    else f"m{index}/vc{channel}"
                )
                series[label] = _points(
                    machine, _slice_series(machine, name))
    else:
        for index, machine in enumerate(machines):
            values = _slice_series(machine, metric)
            if values is None:
                continue
            series[f"m{index}"] = _points(machine, values)
    if not series:
        names = ", ".join(name for __, name in available_metrics(artifact))
        what = f"family {metric!r} (--by vc)" if by else f"metric {metric!r}"
        raise ValueError(
            f"{what} not in this artifact; available: {names}")
    return series


def render_timeline(artifact: Mapping, metric: str,
                    width: int = 64, height: int = 16,
                    by: Optional[str] = None) -> str:
    """The ASCII timeline chart for one metric of one artifact."""
    series = timeline_points(artifact, metric, by=by)
    digest = str(artifact.get("digest", ""))[:12]
    title_metric = f"{metric} by {by}" if by else metric
    return ascii_chart(
        series,
        width=width,
        height=height,
        x_label="t_ns",
        y_label=metric,
        title=f"{title_metric} @ {digest}" if digest else title_metric,
        force_legend=len(series) > 1 or by is not None,
    )
