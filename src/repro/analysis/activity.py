"""Machine-activity traces — the Figure 12 renderer.

Figure 12 plots, for a window of wall-clock time, which hardware
components are busy: channel columns (position packets red, force packets
green), GC integration columns, and PPIM streaming columns.  This module
builds the equivalent trace from the time-step phase model and renders it
as an ASCII heat strip (one row per time bin, one column per component),
which the Fig. 12 benchmark prints for compression-on and -off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..fullsim.timestep import TimestepBreakdown
from ..fullsim.traffic import StepTraffic


@dataclass(frozen=True)
class Interval:
    """A busy interval of one component."""

    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class ActivityTrace:
    """Busy intervals per component over one or more time steps."""

    components: List[str]
    intervals: Dict[str, List[Interval]] = field(default_factory=dict)
    end_ns: float = 0.0

    def add(self, component: str, start_ns: float, end_ns: float) -> None:
        if component not in self.components:
            raise ValueError(f"unknown component {component!r}")
        if end_ns < start_ns:
            raise ValueError("interval ends before it starts")
        self.intervals.setdefault(component, []).append(
            Interval(start_ns, end_ns))
        self.end_ns = max(self.end_ns, end_ns)

    def utilization(self, component: str, start: float, end: float) -> float:
        """Busy fraction of ``component`` within [start, end)."""
        if end <= start:
            return 0.0
        busy = 0.0
        for iv in self.intervals.get(component, []):
            busy += max(0.0, min(iv.end_ns, end) - max(iv.start_ns, start))
        return busy / (end - start)


COMPONENTS = ["channel:positions", "channel:forces", "gc:integration",
              "ppim:pairs"]


def trace_from_breakdowns(breakdowns: Sequence[TimestepBreakdown],
                          traffics: Sequence[StepTraffic]) -> ActivityTrace:
    """Lay consecutive time steps' phases onto a shared timeline.

    Within a step: positions stream out first (the channels carry position
    packets), forces return over the tail of the window; PPIM streaming
    overlaps the channel window; integration and sync serialize after.
    """
    if len(breakdowns) != len(traffics):
        raise ValueError("breakdowns and traffics must align")
    trace = ActivityTrace(components=list(COMPONENTS))
    clock = 0.0
    for breakdown, traffic in zip(breakdowns, traffics):
        window = max(breakdown.channel_ns, breakdown.ppim_ns)
        start = clock + breakdown.pipeline_fill_ns
        total_bits = max(traffic.position_bits + traffic.force_bits, 1)
        pos_frac = traffic.position_bits / total_bits
        pos_end = start + breakdown.channel_ns * pos_frac
        force_end = start + breakdown.channel_ns
        trace.add("channel:positions", start, pos_end)
        trace.add("channel:forces", pos_end, force_end)
        trace.add("ppim:pairs", start, start + breakdown.ppim_ns)
        integ_start = clock + breakdown.pairwise_phase_ns
        trace.add("gc:integration", integ_start,
                  integ_start + breakdown.integration_ns)
        clock += breakdown.total_ns
        trace.end_ns = max(trace.end_ns, clock)
    return trace


_SHADES = " .:-=+*#%@"


def render_ascii(trace: ActivityTrace, bins: int = 40,
                 bin_labels: bool = True) -> str:
    """Render the trace as rows of utilization shades (Fig. 12 style)."""
    if bins < 1:
        raise ValueError("need at least one bin")
    width = trace.end_ns / bins if trace.end_ns > 0 else 1.0
    header = " time(ns) | " + " | ".join(
        f"{name:^18}" for name in trace.components)
    lines = [header, "-" * len(header)]
    for b in range(bins):
        start, end = b * width, (b + 1) * width
        cells = []
        for name in trace.components:
            u = trace.utilization(name, start, end)
            shade = _SHADES[min(int(u * (len(_SHADES) - 1) + 0.5),
                                len(_SHADES) - 1)]
            cells.append(shade * 18)
        label = f"{start:9.0f}" if bin_labels else " " * 9
        lines.append(f"{label} | " + " | ".join(cells))
    return "\n".join(lines)
