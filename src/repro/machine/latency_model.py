"""Analytic end-to-end latency model — the Figure 6 breakdown.

Figure 6 of the paper decomposes the minimum 55-ns one-hop end-to-end
latency across the endpoints and network components.  This model rebuilds
that decomposition from the same :class:`~repro.netsim.params.
LatencyParams` the flit simulator uses, so the two agree by construction;
``tests/test_latency_model.py`` cross-checks the sum against a measured
best-placement netsim ping.

The minimum path places both GCs adjacent to the exit/entry edge on the
channel's row, so the on-chip distances are the minimum achievable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..netsim.params import DEFAULT_PARAMS, LatencyParams


@dataclass(frozen=True)
class BreakdownEntry:
    """One bar segment of the Figure 6 breakdown."""

    component: str
    ns: float


def minimum_one_hop_breakdown(
        params: LatencyParams = DEFAULT_PARAMS) -> List[BreakdownEntry]:
    """Component-by-component latency of the best-placement 1-hop path.

    The path: GC software issue -> TRTR -> one Core Network U hop -> RA ->
    Edge Network to the Channel Adapter (two inner-column hops plus the
    outer-column crossing) -> SERDES/wire/SERDES -> receive CA -> Edge
    Network to the destination RA -> one U hop -> TRTR -> SRAM counted
    write -> blocking-read release.
    """
    c = params.cycles
    flit = params.flit_serialization_ns
    mesh_flit = params.cycle_ns  # one flit per cycle on on-chip links
    entries = [
        BreakdownEntry("GC send (software + issue)",
                       c(params.gc_send_overhead_cycles)),
        BreakdownEntry("TRTR (inject)", c(params.trtr_cycles) + mesh_flit),
        BreakdownEntry("Core Network (1 U hop)",
                       c(params.core_u_cycles) + mesh_flit),
        BreakdownEntry("RA (core->edge)", c(params.ra_cycles) + mesh_flit),
        BreakdownEntry("Edge Network to CA (3 ERTR hops)",
                       3 * (c(params.edge_hop_cycles) + mesh_flit)),
        BreakdownEntry("CA (encode + frame)", c(params.ca_tx_cycles)
                       + mesh_flit),
        BreakdownEntry("SERDES TX", params.serdes_tx_ns + flit),
        BreakdownEntry("Wire", params.wire_ns),
        BreakdownEntry("SERDES RX", params.serdes_rx_ns),
        BreakdownEntry("CA (decode)", c(params.ca_rx_cycles) + mesh_flit),
        BreakdownEntry("Edge Network to RA (3 ERTR hops)",
                       3 * (c(params.edge_hop_cycles) + mesh_flit)),
        BreakdownEntry("RA (edge->core)", c(params.ra_cycles) + mesh_flit),
        BreakdownEntry("Core Network (1 U hop)",
                       c(params.core_u_cycles) + mesh_flit),
        BreakdownEntry("TRTR (eject) + SRAM write",
                       c(params.trtr_cycles + params.sram_write_cycles)),
        BreakdownEntry("Blocking read release",
                       c(params.unstall_cycles)),
    ]
    return entries


def breakdown_total_ns(params: LatencyParams = DEFAULT_PARAMS) -> float:
    return sum(e.ns for e in minimum_one_hop_breakdown(params))


def per_hop_breakdown(
        params: LatencyParams = DEFAULT_PARAMS) -> List[BreakdownEntry]:
    """The recurring cost of one additional torus hop (intra-dimensional
    pass through an intermediate node: CA in, outer column, CA out, and
    the channel itself)."""
    c = params.cycles
    mesh_flit = params.cycle_ns
    return [
        BreakdownEntry("CA (decode)", c(params.ca_rx_cycles) + mesh_flit),
        BreakdownEntry("Outer-column ERTR hops",
                       2 * (c(params.edge_hop_cycles) + mesh_flit)),
        BreakdownEntry("CA (encode)", c(params.ca_tx_cycles) + mesh_flit),
        BreakdownEntry("SERDES TX", params.serdes_tx_ns
                       + params.flit_serialization_ns),
        BreakdownEntry("Wire", params.wire_ns),
        BreakdownEntry("SERDES RX", params.serdes_rx_ns),
    ]


def per_hop_total_ns(params: LatencyParams = DEFAULT_PARAMS) -> float:
    return sum(e.ns for e in per_hop_breakdown(params))
