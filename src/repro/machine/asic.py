"""Floorplan inventory of the Anton 3 ASIC — Section II-B / Figure 1.

The chip is a tiled layout: a 24 x 12 array of Core Tiles flanked by 12
Edge Tiles per side.  This module enumerates every tile and every network
endpoint with its coordinates; the area model and the documentation (and
several tests) consume this inventory, and it double-checks the component
counts published in Table II.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..config import ChipConfig, DEFAULT_CHIP


class TileKind(enum.Enum):
    CORE = "core"
    EDGE = "edge"


class ComponentKind(enum.Enum):
    GEOMETRY_CORE = "gc"
    PPIM = "ppim"
    BOND_CALCULATOR = "bc"
    CORE_ROUTER = "core_router"
    EDGE_ROUTER = "edge_router"
    ICB = "icb"
    CHANNEL_ADAPTER = "channel_adapter"
    ROW_ADAPTER = "row_adapter"


@dataclass(frozen=True)
class Tile:
    """One tile of the chip floorplan."""

    kind: TileKind
    column: int     # core tiles: 0-23; edge tiles: -1 (left) or 24 (right)
    row: int


@dataclass(frozen=True)
class Component:
    """One hardware component instance with its tile location."""

    kind: ComponentKind
    tile: Tile
    index: int  # instance index within the tile


class AsicFloorplan:
    """Enumerates the tiles and components of one ASIC."""

    def __init__(self, chip: ChipConfig = DEFAULT_CHIP) -> None:
        self.chip = chip

    # -- tiles ----------------------------------------------------------

    def core_tiles(self) -> Iterator[Tile]:
        for u in range(self.chip.core_tile_cols):
            for v in range(self.chip.core_tile_rows):
                yield Tile(TileKind.CORE, u, v)

    def edge_tiles(self) -> Iterator[Tile]:
        for row in range(self.chip.edge_tile_rows):
            yield Tile(TileKind.EDGE, -1, row)
            yield Tile(TileKind.EDGE, self.chip.core_tile_cols, row)

    def tiles(self) -> Iterator[Tile]:
        yield from self.core_tiles()
        yield from self.edge_tiles()

    # -- components -----------------------------------------------------

    def components(self) -> Iterator[Component]:
        chip = self.chip
        for tile in self.core_tiles():
            for g in range(chip.gcs_per_core_tile):
                yield Component(ComponentKind.GEOMETRY_CORE, tile, g)
            for p in range(chip.ppims_per_core_tile):
                yield Component(ComponentKind.PPIM, tile, p)
            yield Component(ComponentKind.BOND_CALCULATOR, tile, 0)
            yield Component(ComponentKind.CORE_ROUTER, tile, 0)
        for tile in self.edge_tiles():
            for e in range(chip.edge_router_cols):
                yield Component(ComponentKind.EDGE_ROUTER, tile, e)
            for i in range(chip.icbs_per_edge_tile):
                yield Component(ComponentKind.ICB, tile, i)
            yield Component(ComponentKind.CHANNEL_ADAPTER, tile, 0)
            # Row adapters: one per ICB plus one for the core-network row.
            for r in range(3):
                yield Component(ComponentKind.ROW_ADAPTER, tile, r)

    def component_counts(self) -> Dict[ComponentKind, int]:
        counts: Dict[ComponentKind, int] = {}
        for component in self.components():
            counts[component.kind] = counts.get(component.kind, 0) + 1
        return counts

    def validate_against_paper(self) -> List[str]:
        """Cross-check the inventory against Table II; returns mismatches."""
        counts = self.component_counts()
        expected = {
            ComponentKind.CORE_ROUTER: 288,
            ComponentKind.EDGE_ROUTER: 72,
            ComponentKind.CHANNEL_ADAPTER: 24,
            ComponentKind.ROW_ADAPTER: 72,
        }
        problems = []
        for kind, want in expected.items():
            have = counts.get(kind, 0)
            if have != want:
                problems.append(f"{kind.value}: have {have}, paper says {want}")
        return problems
