"""Functional/timing models of the compute-side chip components.

These model the units the network feeds (Section II-B): the PPIM pair
pipelines, the ICB stream buffers, the Bond Calculator, and the GC
integration loop.  The full-system time-step model prices phases with
their throughput figures; the examples use them to explain machine
behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import ChipConfig, DEFAULT_CHIP


@dataclass
class PpimModel:
    """A Pairwise Point Interaction Module.

    Holds up to ``stored_set_capacity`` stored-set atoms and computes one
    pairwise interaction per ``1 / pairs_per_cycle`` cycles against each
    streamed atom.
    """

    clock_ghz: float = 2.8
    pairs_per_cycle: float = 0.25
    stored_set_capacity: int = 128
    stored_atoms: int = 0
    pairs_computed: int = 0

    def load_stored_set(self, count: int) -> None:
        if count > self.stored_set_capacity:
            raise ValueError(
                f"stored set of {count} exceeds capacity "
                f"{self.stored_set_capacity}")
        self.stored_atoms = count

    def stream_time_ns(self, streamed_atoms: int) -> float:
        """Time to stream ``streamed_atoms`` against the stored set."""
        pairs = streamed_atoms * self.stored_atoms
        self.pairs_computed += pairs
        rate = self.pairs_per_cycle * self.clock_ghz  # pairs per ns
        return pairs / rate if rate > 0 else 0.0


@dataclass
class IcbModel:
    """An Interaction Control Block: buffers stream-set atom positions
    arriving from the Edge Network and streams them across its row."""

    buffer_capacity: int = 4096
    buffered: int = 0
    streamed_total: int = 0
    fence_seen: bool = False

    def buffer_positions(self, count: int) -> None:
        if self.buffered + count > self.buffer_capacity:
            raise ValueError("ICB buffer overflow")
        self.buffered += count

    def receive_fence(self) -> None:
        """A GC-to-ICB network fence: all positions have arrived; the row
        may be notified that streaming can complete (Section V)."""
        self.fence_seen = True

    def stream_all(self) -> int:
        """Stream every buffered position; requires the fence first."""
        if not self.fence_seen:
            raise RuntimeError(
                "ICB cannot finish streaming before its network fence")
        count = self.buffered
        self.streamed_total += count
        self.buffered = 0
        self.fence_seen = False
        return count


@dataclass
class BondCalculatorModel:
    """The Bond Calculator: forces between bonded atom pairs/triples."""

    clock_ghz: float = 2.8
    bonds_per_cycle: float = 0.5

    def compute_time_ns(self, num_bonds: int) -> float:
        rate = self.bonds_per_cycle * self.clock_ghz
        return num_bonds / rate if rate > 0 else 0.0


@dataclass
class GeometryCoreModel:
    """GC integration loop timing: per-atom force summation + update."""

    clock_ghz: float = 2.8
    cycles_per_atom: float = 30.0

    def integration_time_ns(self, atoms: int) -> float:
        return atoms * self.cycles_per_atom / self.clock_ghz


def chip_pair_throughput_gops(chip: ChipConfig = DEFAULT_CHIP,
                              ops_per_pair: float = 50.0,
                              pairs_per_cycle: float = 0.25) -> float:
    """Aggregate pairwise arithmetic throughput of one chip.

    With every PPIM pipeline saturated (one pair per cycle, ~50 arithmetic
    operations each), the chip reaches the neighborhood of Table I's
    5914 GOPS maximum; the default de-rated pair rate gives the sustained
    figure the time-step model uses.
    """
    return (chip.num_ppims * pairs_per_cycle * chip.clock_ghz
            * ops_per_pair)
