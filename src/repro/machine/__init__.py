"""Machine-level models: floorplan, components, analytic latency."""

from .asic import AsicFloorplan, Component, ComponentKind, Tile, TileKind
from .components import (
    BondCalculatorModel,
    GeometryCoreModel,
    IcbModel,
    PpimModel,
    chip_pair_throughput_gops,
)
from .latency_model import (
    BreakdownEntry,
    breakdown_total_ns,
    minimum_one_hop_breakdown,
    per_hop_breakdown,
    per_hop_total_ns,
)

__all__ = [
    "AsicFloorplan",
    "Component",
    "ComponentKind",
    "Tile",
    "TileKind",
    "BondCalculatorModel",
    "GeometryCoreModel",
    "IcbModel",
    "PpimModel",
    "chip_pair_throughput_gops",
    "BreakdownEntry",
    "breakdown_total_ns",
    "minimum_one_hop_breakdown",
    "per_hop_breakdown",
    "per_hop_total_ns",
]
