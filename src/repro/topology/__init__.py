"""Topology substrates: 3D torus (inter-node) and 2D mesh (on-chip)."""

from .mesh import Mesh2D, MeshDims
from .torus import (
    AXIS_NAMES,
    DIMENSION_ORDERS,
    DIRECTIONS,
    Torus3D,
    TorusDims,
    direction_name,
)

__all__ = [
    "AXIS_NAMES",
    "DIMENSION_ORDERS",
    "DIRECTIONS",
    "Mesh2D",
    "MeshDims",
    "Torus3D",
    "TorusDims",
    "direction_name",
]
