"""3D torus topology used by the Anton 3 inter-node network.

Anton 3 machines connect up to 512 nodes in a 3D torus (Section II-B of the
paper).  Inter-node routing is minimal and oblivious: each packet follows a
dimension-order route using one of the six possible orders (XYZ, XZY, YXZ,
YZX, ZXY, ZYX), chosen randomly per packet independent of network load
(Section III-B2).  Response packets are restricted to XYZ order and treat
the torus as a mesh (no wraparound on the dateline) so a single response VC
suffices for deadlock freedom.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

Coord = Tuple[int, int, int]

#: The six minimal dimension orders of Section III-B2, as axis index tuples.
DIMENSION_ORDERS: Tuple[Tuple[int, int, int], ...] = tuple(
    itertools.permutations((0, 1, 2)))

AXIS_NAMES = ("X", "Y", "Z")

#: Directions: (axis, sign) for X+, X-, Y+, Y-, Z+, Z-.
DIRECTIONS: Tuple[Tuple[int, int], ...] = (
    (0, +1), (0, -1), (1, +1), (1, -1), (2, +1), (2, -1))


def direction_name(direction: Tuple[int, int]) -> str:
    axis, sign = direction
    return f"{AXIS_NAMES[axis]}{'+' if sign > 0 else '-'}"


@dataclass(frozen=True)
class TorusDims:
    """Dimensions of a 3D torus machine."""

    x: int
    y: int
    z: int

    def __post_init__(self) -> None:
        for value in (self.x, self.y, self.z):
            if value < 1:
                raise ValueError(f"torus dimension must be >= 1, got {value}")

    @classmethod
    def of(cls, dims: Sequence[int]) -> "TorusDims":
        if len(dims) != 3:
            raise ValueError("a 3D torus needs exactly three dimensions")
        return cls(*dims)

    def as_tuple(self) -> Coord:
        return (self.x, self.y, self.z)

    @property
    def num_nodes(self) -> int:
        return self.x * self.y * self.z

    @property
    def diameter(self) -> int:
        """Maximum minimal hop count between any node pair."""
        return sum(d // 2 for d in self.as_tuple())


class Torus3D:
    """A 3D torus with minimal-routing helpers.

    Node identity is the coordinate triple ``(x, y, z)``; a dense integer
    id is available for array-indexed bookkeeping.
    """

    def __init__(self, dims: Sequence[int]) -> None:
        self.dims = TorusDims.of(tuple(dims))

    # -- identity ------------------------------------------------------

    def nodes(self) -> Iterator[Coord]:
        dx, dy, dz = self.dims.as_tuple()
        for x in range(dx):
            for y in range(dy):
                for z in range(dz):
                    yield (x, y, z)

    def node_id(self, coord: Coord) -> int:
        x, y, z = self.normalize(coord)
        return (x * self.dims.y + y) * self.dims.z + z

    def coord_of(self, node_id: int) -> Coord:
        if not 0 <= node_id < self.dims.num_nodes:
            raise ValueError(f"node id {node_id} out of range")
        z = node_id % self.dims.z
        rest = node_id // self.dims.z
        y = rest % self.dims.y
        x = rest // self.dims.y
        return (x, y, z)

    def normalize(self, coord: Coord) -> Coord:
        dims = self.dims.as_tuple()
        return tuple(c % d for c, d in zip(coord, dims))  # type: ignore[return-value]

    # -- neighbors and distances ---------------------------------------

    def neighbor(self, coord: Coord, axis: int, sign: int) -> Coord:
        """The adjacent node in direction ``(axis, sign)``."""
        if axis not in (0, 1, 2) or sign not in (-1, 1):
            raise ValueError(f"bad direction ({axis}, {sign})")
        moved = list(self.normalize(coord))
        moved[axis] = (moved[axis] + sign) % self.dims.as_tuple()[axis]
        return tuple(moved)  # type: ignore[return-value]

    def neighbors(self, coord: Coord) -> List[Tuple[Tuple[int, int], Coord]]:
        """All six (direction, neighbor) pairs for ``coord``."""
        return [((axis, sign), self.neighbor(coord, axis, sign))
                for axis, sign in DIRECTIONS]

    def axis_offset(self, src: int, dst: int, axis: int) -> int:
        """Signed minimal offset along ``axis`` from src to dst coordinates.

        Ties (exactly half way around an even ring) resolve to the positive
        direction, matching a fixed hardware convention.
        """
        size = self.dims.as_tuple()[axis]
        delta = (dst - src) % size
        if delta > size // 2:
            return delta - size
        if delta == size - delta and delta != 0:
            return delta  # tie: go positive
        return delta

    def min_hops(self, a: Coord, b: Coord) -> int:
        """Minimal torus hop distance between two nodes."""
        a = self.normalize(a)
        b = self.normalize(b)
        return sum(abs(self.axis_offset(a[i], b[i], i)) for i in range(3))

    def mesh_hops(self, a: Coord, b: Coord) -> int:
        """Hop distance with wraparound links forbidden (response routes)."""
        a = self.normalize(a)
        b = self.normalize(b)
        return sum(abs(b[i] - a[i]) for i in range(3))

    def is_wrap_hop(self, coord: Coord, axis: int, sign: int) -> bool:
        """Whether one hop from ``coord`` in ``(axis, sign)`` crosses the
        wraparound link of its ring — the dateline of the VC discipline."""
        if axis not in (0, 1, 2) or sign not in (-1, 1):
            raise ValueError(f"bad direction ({axis}, {sign})")
        c = self.normalize(coord)[axis]
        size = self.dims.as_tuple()[axis]
        return (c == size - 1 and sign > 0) or (c == 0 and sign < 0)

    def offsets(self, src: Coord, dst: Coord) -> Coord:
        src = self.normalize(src)
        dst = self.normalize(dst)
        return tuple(self.axis_offset(src[i], dst[i], i)
                     for i in range(3))  # type: ignore[return-value]

    # -- routes ----------------------------------------------------------

    def dimension_order_route(self, src: Coord, dst: Coord,
                              order: Sequence[int]) -> List[Coord]:
        """The node sequence of a minimal dimension-order route.

        ``order`` is a permutation of (0, 1, 2); e.g. (0, 1, 2) is XYZ.
        The returned list starts at ``src`` and ends at ``dst``.
        """
        if sorted(order) != [0, 1, 2]:
            raise ValueError(f"order must be a permutation of (0,1,2): {order}")
        src = self.normalize(src)
        dst = self.normalize(dst)
        offs = list(self.offsets(src, dst))
        path = [src]
        here = list(src)
        dims = self.dims.as_tuple()
        for axis in order:
            step = 1 if offs[axis] > 0 else -1
            for __ in range(abs(offs[axis])):
                here[axis] = (here[axis] + step) % dims[axis]
                path.append(tuple(here))  # type: ignore[arg-type]
        return path

    def all_minimal_routes(self, src: Coord, dst: Coord) -> List[List[Coord]]:
        """Routes for all six dimension orders (duplicates removed)."""
        seen = set()
        routes = []
        for order in DIMENSION_ORDERS:
            route = self.dimension_order_route(src, dst, order)
            key = tuple(route)
            if key not in seen:
                seen.add(key)
                routes.append(route)
        return routes

    def nodes_within(self, center: Coord, hops: int) -> List[Coord]:
        """All nodes with minimal distance <= hops from ``center``."""
        return [coord for coord in self.nodes()
                if self.min_hops(center, coord) <= hops]

    def response_route(self, src: Coord, dst: Coord) -> List[Coord]:
        """Route for response packets: fixed XYZ order, mesh-restricted.

        Section III-B2: responses follow XYZ order and treat the torus as a
        mesh, never crossing the wraparound link, so one VC is deadlock-free.
        """
        src = self.normalize(src)
        dst = self.normalize(dst)
        path = [src]
        here = list(src)
        for axis in (0, 1, 2):
            step = 1 if dst[axis] > here[axis] else -1
            while here[axis] != dst[axis]:
                here[axis] += step
                path.append(tuple(here))  # type: ignore[arg-type]
        return path
