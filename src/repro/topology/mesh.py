"""2D mesh helpers for the on-chip Core and Edge Networks.

The Core Network is a 24x12 mesh of Core Routers using fixed U->V
dimension-order routing (Section III-B1 of the paper); U is the horizontal
(column) axis and V the vertical (row) axis.  The Edge Networks are 12x3
meshes on each side of the chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

MeshCoord = Tuple[int, int]  # (u, v)


@dataclass(frozen=True)
class MeshDims:
    """Dimensions of a 2D mesh: ``u`` columns by ``v`` rows."""

    u: int
    v: int

    def __post_init__(self) -> None:
        if self.u < 1 or self.v < 1:
            raise ValueError(f"mesh dims must be >= 1, got {self.u}x{self.v}")

    @property
    def num_nodes(self) -> int:
        return self.u * self.v


class Mesh2D:
    """A 2D mesh with U->V dimension-order routing."""

    def __init__(self, u: int, v: int) -> None:
        self.dims = MeshDims(u, v)

    def contains(self, coord: MeshCoord) -> bool:
        u, v = coord
        return 0 <= u < self.dims.u and 0 <= v < self.dims.v

    def nodes(self) -> Iterator[MeshCoord]:
        for u in range(self.dims.u):
            for v in range(self.dims.v):
                yield (u, v)

    def node_id(self, coord: MeshCoord) -> int:
        self._check(coord)
        u, v = coord
        return u * self.dims.v + v

    def coord_of(self, node_id: int) -> MeshCoord:
        if not 0 <= node_id < self.dims.num_nodes:
            raise ValueError(f"node id {node_id} out of range")
        return (node_id // self.dims.v, node_id % self.dims.v)

    def _check(self, coord: MeshCoord) -> None:
        if not self.contains(coord):
            raise ValueError(f"coordinate {coord} outside {self.dims}")

    def neighbors(self, coord: MeshCoord) -> List[MeshCoord]:
        self._check(coord)
        u, v = coord
        candidates = [(u + 1, v), (u - 1, v), (u, v + 1), (u, v - 1)]
        return [c for c in candidates if self.contains(c)]

    def hop_distance(self, a: MeshCoord, b: MeshCoord) -> int:
        self._check(a)
        self._check(b)
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def uv_route(self, src: MeshCoord, dst: MeshCoord) -> List[MeshCoord]:
        """U->V dimension-order route from src to dst (inclusive).

        Packets first travel along the U (column) axis, then along V, which
        is the fixed order of the Core Network (Section III-B1).
        """
        self._check(src)
        self._check(dst)
        path = [src]
        u, v = src
        step = 1 if dst[0] > u else -1
        while u != dst[0]:
            u += step
            path.append((u, v))
        step = 1 if dst[1] > v else -1
        while v != dst[1]:
            v += step
            path.append((u, v))
        return path

    def u_hops(self, src: MeshCoord, dst: MeshCoord) -> int:
        return abs(src[0] - dst[0])

    def v_hops(self, src: MeshCoord, dst: MeshCoord) -> int:
        return abs(src[1] - dst[1])
