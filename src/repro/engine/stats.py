"""Statistics primitives shared by the simulators.

These are intentionally simple, dependency-free accumulators: counters,
a scalar summary (mean/min/max), a fixed-bin histogram, and a time series
recorder used for the machine-activity plots (Figure 12 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """A named monotonically increasing counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter.add requires a non-negative amount")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Summary:
    """Streaming scalar summary: count, mean, min, max, variance."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Summary") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min, self.max = other.min, other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)  # type: ignore[arg-type]
        self.max = max(self.max, other.max)  # type: ignore[arg-type]


class Histogram:
    """Fixed-width binned histogram over [lo, hi)."""

    def __init__(self, lo: float, hi: float, bins: int, name: str = "") -> None:
        if hi <= lo:
            raise ValueError("Histogram requires hi > lo")
        if bins <= 0:
            raise ValueError("Histogram requires at least one bin")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0

    @property
    def bin_width(self) -> float:
        return (self.hi - self.lo) / self.bins

    def observe(self, value: float) -> None:
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            index = int((value - self.lo) / self.bin_width)
            self.counts[min(index, self.bins - 1)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def bin_edges(self) -> List[float]:
        return [self.lo + i * self.bin_width for i in range(self.bins + 1)]

    def percentile(self, q: float) -> float:
        """Deterministic percentile from the binned counts.

        ``q`` is in ``[0, 100]`` (the :mod:`repro.analysis.aggregate`
        convention).  The target rank ``q/100 * total`` is located by a
        cumulative walk over the bins with linear interpolation inside
        the containing bin; mass in the underflow/overflow regions
        resolves to ``lo``/``hi`` (the histogram cannot know more).
        Returns ``nan`` for an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile requires q in [0, 100]")
        total = self.total
        if total == 0:
            return math.nan
        target = q / 100.0 * total
        cumulative = float(self.underflow)
        if target <= cumulative and self.underflow:
            return self.lo
        for index, count in enumerate(self.counts):
            if count and target <= cumulative + count:
                fraction = (target - cumulative) / count
                return self.lo + (index + fraction) * self.bin_width
            cumulative += count
        return self.hi


@dataclass
class Sample:
    time: float
    value: float


class TimeSeries:
    """Append-only (time, value) series with window aggregation."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[Sample] = []

    def record(self, time: float, value: float) -> None:
        if self.samples and time < self.samples[-1].time:
            raise ValueError("TimeSeries requires non-decreasing time")
        self.samples.append(Sample(time, value))

    def __len__(self) -> int:
        return len(self.samples)

    def window_mean(self, start: float, end: float) -> float:
        values = [s.value for s in self.samples if start <= s.time < end]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def rebin(self, start: float, end: float, bins: int) -> List[float]:
        """Average value per uniform time bin (empty bins are 0)."""
        if bins <= 0:
            raise ValueError("rebin requires bins >= 1")
        width = (end - start) / bins
        out = []
        for i in range(bins):
            out.append(self.window_mean(start + i * width,
                                        start + (i + 1) * width))
        return out


class StatsRegistry:
    """A flat namespace of named statistics objects."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._summaries: Dict[str, Summary] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def summary(self, name: str) -> Summary:
        if name not in self._summaries:
            self._summaries[name] = Summary(name)
        return self._summaries[name]

    def histogram(self, name: str, lo: float = 0.0, hi: float = 1.0,
                  bins: int = 10) -> Histogram:
        """The named histogram, created on first use with these bounds.

        Later calls return the existing histogram and must agree on the
        binning — two call sites silently observing into differently
        shaped bins would corrupt every percentile.
        """
        existing = self._histograms.get(name)
        if existing is None:
            existing = self._histograms[name] = Histogram(lo, hi, bins, name)
        elif (existing.lo, existing.hi, existing.bins) != (lo, hi, bins):
            raise ValueError(
                f"histogram {name!r} already exists with bounds "
                f"({existing.lo}, {existing.hi}, {existing.bins}), "
                f"requested ({lo}, {hi}, {bins})")
        return existing

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counter_values(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deep, JSON-able copy of every registered statistic.

        Deterministic by construction (keys sorted, values copied), so
        two registries fed the same observations snapshot identically;
        empty summaries export ``None`` for mean/min/max to keep the
        payload strict-JSON (no NaN).
        """
        return {
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "summaries": {
                name: {
                    "count": summary.count,
                    "mean": summary.mean if summary.count else None,
                    "min": summary.min,
                    "max": summary.max,
                    "stddev": summary.stddev if summary.count else None,
                }
                for name, summary in sorted(self._summaries.items())
            },
            "histograms": {
                name: {
                    "lo": hist.lo,
                    "hi": hist.hi,
                    "bins": hist.bins,
                    "counts": list(hist.counts),
                    "underflow": hist.underflow,
                    "overflow": hist.overflow,
                }
                for name, hist in sorted(self._histograms.items())
            },
            "series": {
                name: {
                    "times": [sample.time for sample in series.samples],
                    "values": [sample.value for sample in series.samples],
                }
                for name, series in sorted(self._series.items())
            },
        }

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        self._summaries.clear()
        self._histograms.clear()
        self._series.clear()
