"""Statistics primitives shared by the simulators.

These are intentionally simple, dependency-free accumulators: counters,
a scalar summary (mean/min/max), a fixed-bin histogram, and a time series
recorder used for the machine-activity plots (Figure 12 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """A named monotonically increasing counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter.add requires a non-negative amount")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Summary:
    """Streaming scalar summary: count, mean, min, max, variance."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Summary") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min, self.max = other.min, other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)  # type: ignore[arg-type]
        self.max = max(self.max, other.max)  # type: ignore[arg-type]


class Histogram:
    """Fixed-width binned histogram over [lo, hi)."""

    def __init__(self, lo: float, hi: float, bins: int, name: str = "") -> None:
        if hi <= lo:
            raise ValueError("Histogram requires hi > lo")
        if bins <= 0:
            raise ValueError("Histogram requires at least one bin")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0

    @property
    def bin_width(self) -> float:
        return (self.hi - self.lo) / self.bins

    def observe(self, value: float) -> None:
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            index = int((value - self.lo) / self.bin_width)
            self.counts[min(index, self.bins - 1)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def bin_edges(self) -> List[float]:
        return [self.lo + i * self.bin_width for i in range(self.bins + 1)]


@dataclass
class Sample:
    time: float
    value: float


class TimeSeries:
    """Append-only (time, value) series with window aggregation."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[Sample] = []

    def record(self, time: float, value: float) -> None:
        if self.samples and time < self.samples[-1].time:
            raise ValueError("TimeSeries requires non-decreasing time")
        self.samples.append(Sample(time, value))

    def __len__(self) -> int:
        return len(self.samples)

    def window_mean(self, start: float, end: float) -> float:
        values = [s.value for s in self.samples if start <= s.time < end]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def rebin(self, start: float, end: float, bins: int) -> List[float]:
        """Average value per uniform time bin (empty bins are 0)."""
        if bins <= 0:
            raise ValueError("rebin requires bins >= 1")
        width = (end - start) / bins
        out = []
        for i in range(bins):
            out.append(self.window_mean(start + i * width,
                                        start + (i + 1) * width))
        return out


class StatsRegistry:
    """A flat namespace of named statistics objects."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._summaries: Dict[str, Summary] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def summary(self, name: str) -> Summary:
        if name not in self._summaries:
            self._summaries[name] = Summary(name)
        return self._summaries[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counter_values(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        self._summaries.clear()
        self._series.clear()
