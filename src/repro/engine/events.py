"""Event heap for the discrete-event simulation kernel.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number guarantees deterministic FIFO ordering among
events scheduled for the same time and priority, which keeps every
simulation in this package fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time (ns in this package) at which to fire.
        priority: Lower fires first among same-time events.
        seq: Tie-breaker preserving scheduling order.
        action: Zero-argument callable run when the event fires.
        cancelled: Cancelled events are skipped when popped.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    tag: Any = field(default=None, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        tag: Any = None,
    ) -> Event:
        """Schedule ``action`` at absolute ``time``; returns a cancel handle."""
        event = Event(time=time, priority=priority, seq=next(self._counter),
                      action=action, tag=tag)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or None if the queue drains."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def clear(self) -> None:
        self._heap.clear()
