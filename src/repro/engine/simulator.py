"""Discrete-event simulator kernel.

All network simulations in this package run on :class:`Simulator`.  Time is
measured in nanoseconds (float); components that think in clock cycles
convert via their chip configuration.  The kernel is deliberately small:
an event heap, a current time, and a run loop with step/time limits.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling in the past)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.at(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Time and scheduling.
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def at(self, time: float, action: Callable[[], None],
           priority: int = 0, tag: Any = None) -> Event:
        """Schedule ``action`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} ns; now is {self._now} ns")
        return self._queue.push(time, action, priority=priority, tag=tag)

    def after(self, delay: float, action: Callable[[], None],
              priority: int = 0, tag: Any = None) -> Event:
        """Schedule ``action`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, action,
                                priority=priority, tag=tag)

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.action()
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or event budget.

        Returns the simulation time when the loop stopped.
        """
        self._running = True
        self._stop_requested = False
        processed = 0
        try:
            while not self._stop_requested:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 50_000_000) -> float:
        """Run to completion with a safety budget against livelock."""
        end = self.run(max_events=max_events)
        if self._queue.peek_time() is not None:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events")
        return end

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    def reset(self) -> None:
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
