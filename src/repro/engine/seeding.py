"""Deterministic seed derivation for reproducible parallel runs.

Parallel sweeps (:mod:`repro.runner`) build every simulated machine in
whichever worker process a run lands on, so component seeds must be
(a) stable across processes, platforms, and Python versions and (b)
statistically independent between components.  ``derive_seed`` hashes a
root seed plus a label path with SHA-256; :class:`NetworkMachine
<repro.netsim.machine.NetworkMachine>` derives its per-chip RNG streams
through it, and experiment surfaces take explicit root seeds as
parameters.

Python's built-in ``hash`` is unsuitable here: it is salted per process
for strings, so two workers could disagree about derived seeds.
"""

from __future__ import annotations

import hashlib
import json

#: Derived seeds fit in a non-negative 31-bit int, valid for every
#: consumer of ``random.Random`` seeds in this package.
SEED_BITS = 31


def derive_seed(root: object, *path: object, bits: int = SEED_BITS) -> int:
    """Derive a child seed from ``root`` and a label path.

    The derivation is a SHA-256 hash over the canonical JSON encoding of
    ``[root, *path]``, truncated to ``bits`` bits, so it is stable across
    processes and runs.

    Example:
        >>> derive_seed(42, "machine") == derive_seed(42, "machine")
        True
        >>> derive_seed(42, "machine") != derive_seed(42, "harness")
        True
    """
    blob = json.dumps([root, *path], sort_keys=True, default=str)
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)
