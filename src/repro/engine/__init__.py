"""Discrete-event simulation kernel (substrate)."""

from .events import Event, EventQueue
from .seeding import derive_seed
from .simulator import SimulationError, Simulator
from .stats import Counter, Histogram, StatsRegistry, Summary, TimeSeries

__all__ = [
    "Event",
    "EventQueue",
    "derive_seed",
    "SimulationError",
    "Simulator",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "Summary",
    "TimeSeries",
]
