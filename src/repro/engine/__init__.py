"""Discrete-event simulation kernel (substrate)."""

from .events import Event, EventQueue
from .simulator import SimulationError, Simulator
from .stats import Counter, Histogram, StatsRegistry, Summary, TimeSeries

__all__ = [
    "Event",
    "EventQueue",
    "SimulationError",
    "Simulator",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "Summary",
    "TimeSeries",
]
