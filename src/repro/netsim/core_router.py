"""The Core Router and the on-chip Core Network — Section III-B1.

Each Core Tile contains a Core Router built from four sub-routers (one
URTR, two VRTRs, and a TRTR).  URTR moves packets along the U (column)
axis at two cycles per hop; VRTR moves along V (row) at five cycles per
hop; TRTR connects the tile's GCs and BC to the network.  Routing is
fixed U->V dimension order, and packets bound for remote ASICs travel
along U only, exiting through a Row Adapter at the chip edge.

The simulator composes the three sub-router roles into one
:class:`CoreRouter` object per tile and charges the published per-hop
cycle counts based on the traversal direction, so event cost stays at one
event per tile-hop while the architecture (and its latencies) match the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..engine.simulator import Simulator
from .fabric import FabricError, Link, Router
from .packet import CoreAddress, Packet, TrafficClass
from .params import LatencyParams

#: Core-network VCs: one per traffic class (Section III-B1: "just two VCs
#: suffice to avoid network deadlock between requests and responses").
CORE_VC_REQUEST = 0
CORE_VC_RESPONSE = 1


def core_vc(packet: Packet) -> int:
    if packet.traffic_class is TrafficClass.RESPONSE:
        return CORE_VC_RESPONSE
    return CORE_VC_REQUEST


@dataclass(frozen=True)
class SubRouterSpec:
    """Latency role of one Core Router sub-router (URTR/VRTR/TRTR)."""

    name: str
    hop_cycles: int


class CoreRouter(Router):
    """One tile's router; composed of URTR, VRTR and TRTR roles.

    Output ports: ``U+``, ``U-``, ``V+``, ``V-`` toward neighbor tiles and
    ``RA`` toward the edge network (only on edge-adjacent columns).  Local
    sinks ``gc0``/``gc1`` deliver to the tile's Geometry Cores.

    The ``in_port`` on arrival is the direction of travel (e.g. a packet
    sent out ``U+`` arrives with ``in_port == "U+"``), which determines
    the sub-router traversed and hence the pipeline charge.
    """

    def __init__(self, sim: Simulator, name: str, u: int, v: int,
                 chip: "CoreNetworkHost", params: LatencyParams) -> None:
        super().__init__(sim, name)
        self.u = u
        self.v = v
        self._chip = chip
        self._params = params
        self.urtr = SubRouterSpec("URTR", params.core_u_cycles)
        self.vrtr = SubRouterSpec("VRTR", params.core_v_cycles)
        self.trtr = SubRouterSpec("TRTR", params.trtr_cycles)

    def pipeline_ns(self, packet: Packet, in_port: str) -> float:
        params = self._params
        if in_port.startswith("U"):
            return params.cycles(self.urtr.hop_cycles)
        if in_port.startswith("V"):
            return params.cycles(self.vrtr.hop_cycles)
        if in_port == "inject":
            return params.cycles(self.trtr.hop_cycles)
        if in_port == "RA":
            return params.cycles(params.ra_cycles)
        raise FabricError(f"{self.name}: unknown in_port {in_port}")

    def route(self, packet: Packet, vc: int,
              in_port: str) -> Tuple[str, str, Optional[int]]:
        out_vc = core_vc(packet)
        if packet.dst_node == self._chip.coord:
            return self._route_local(packet, out_vc)
        # Remote destination: U-only travel toward the exit edge.
        exit_u = self._chip.exit_column(packet)
        if self.u == exit_u:
            return ("link", "RA", out_vc)
        return ("link", "U+" if exit_u > self.u else "U-", out_vc)

    def _route_local(self, packet: Packet,
                     out_vc: int) -> Tuple[str, str, Optional[int]]:
        dst = packet.dst_core
        if self.u != dst.tile_u:
            return ("link", "U+" if dst.tile_u > self.u else "U-", out_vc)
        if self.v != dst.tile_v:
            return ("link", "V+" if dst.tile_v > self.v else "V-", out_vc)
        return ("local", f"gc{dst.which}", None)


class CoreNetworkHost:
    """Interface the CoreRouters need from their chip."""

    coord: Tuple[int, int, int]

    def exit_column(self, packet: Packet) -> int:
        raise NotImplementedError


class CoreNetwork:
    """The 24x12 mesh of Core Routers on one chip."""

    def __init__(self, sim: Simulator, chip: CoreNetworkHost,
                 params: LatencyParams, cols: int = 24, rows: int = 12,
                 vcs: int = 2, credit_flits: int = 8,
                 tag: str = "") -> None:
        self._sim = sim
        self._params = params
        self.cols = cols
        self.rows = rows
        self.routers: Dict[Tuple[int, int], CoreRouter] = {}
        for u in range(cols):
            for v in range(rows):
                name = f"core({u},{v})@{tag or chip.coord}"
                self.routers[(u, v)] = CoreRouter(sim, name, u, v, chip,
                                                  params)
        ser = params.cycle_ns  # one flit per cycle on mesh channels
        for (u, v), router in self.routers.items():
            for port, (nu, nv) in (("U+", (u + 1, v)), ("U-", (u - 1, v)),
                                   ("V+", (u, v + 1)), ("V-", (u, v - 1))):
                neighbor = self.routers.get((nu, nv))
                if neighbor is None:
                    continue
                link = Link(
                    sim, f"{router.name}->{port}", latency_ns=0.0,
                    ser_ns_per_flit=ser, vcs=vcs, credit_flits=credit_flits,
                    deliver=_mesh_deliver(neighbor, port))
                router.add_output(port, link)

    def router(self, u: int, v: int) -> CoreRouter:
        return self.routers[(u, v)]

    def inject(self, packet: Packet, at: CoreAddress) -> None:
        """Inject from a GC through its tile's TRTR."""
        router = self.routers[(at.tile_u, at.tile_v)]
        router.receive(packet, core_vc(packet), "inject", None)

    def attach_gc_sink(self, at: CoreAddress,
                       handler: Callable[[Packet], None]) -> None:
        self.routers[(at.tile_u, at.tile_v)].add_sink(f"gc{at.which}",
                                                      handler)

    def attach_ra(self, u: int, v: int, link: Link) -> None:
        """Wire the RA-facing output of an edge-adjacent router."""
        self.routers[(u, v)].add_output("RA", link)

    def receive_from_ra(self, packet: Packet, vc: int, u: int, v: int) -> None:
        self.routers[(u, v)].receive(packet, vc, "RA", None)


def _mesh_deliver(neighbor: CoreRouter, direction: str):
    def deliver(packet: Packet, vc: int, link: Link) -> None:
        neighbor.receive(packet, vc, direction, link)
    return deliver
