"""The Edge Network: Edge Routers, Row Adapters, Channel Adapters.

Each side of the chip carries a 12-row x 3-column mesh of Edge Routers
(Section II-B).  The network implements inter-node torus routing with a
column-partitioned policy (Section III-B2, Figure 4):

* The **outermost column** is reserved for intra-dimensional traffic —
  packets that arrived from a channel and continue along the same torus
  dimension.  The opposite directions of a dimension attach to adjacent
  rows, so a through packet makes a single vertical hop.
* The **two inner columns** carry everything else (packets injected from
  the Core Network and packets turning between torus dimensions), chosen
  per packet in a randomized fashion for load balance.

Row Adapters (RA) join the Core Network to the inner column; Channel
Adapters (CA) join the outer column to the SERDES channel slices and host
the particle cache and INZ codecs (modeled for traffic accounting in
:mod:`repro.fullsim`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..engine.simulator import Simulator
from ..topology.torus import DIRECTIONS, direction_name
from .fabric import FabricError, Link, Router
from .packet import Packet, RESPONSE_VC, TrafficClass, request_vc
from .params import LatencyParams

#: Row where each torus direction's Channel Adapter attaches (both edges).
#: Opposite directions sit on adjacent rows (Figure 4).
DIRECTION_ROWS: Dict[Tuple[int, int], int] = {
    (0, +1): 0, (0, -1): 1,
    (1, +1): 4, (1, -1): 5,
    (2, +1): 8, (2, -1): 9,
}

OUTER_COL = 2
INNER_COLS = (0, 1)


def compact_direction_rows() -> Dict[Tuple[int, int], int]:
    """Direction-row map for reduced-size test chips (rows >= 6)."""
    return {direction: i for i, direction in enumerate(DIRECTIONS)}


def edge_vc(packet: Packet) -> int:
    """Edge-network VC for a packet (4 escape/request VCs + 1 response
    VC + 1 adaptive VC).

    Requests carry their phase/dateline VC (``request_vc`` reads the
    state :func:`repro.routing.note_hop` maintains — or the adaptive VC
    when the per-hop chooser won one) through the edge mesh and onto
    the channel; responses always ride the response VC.
    """
    if packet.traffic_class is TrafficClass.RESPONSE:
        return RESPONSE_VC
    return request_vc(packet)


@dataclass
class EdgeTarget:
    """Routing plan for one packet's traversal of an Edge Network.

    The packet first reaches ``via_col`` (horizontal moves), then travels
    vertically to ``row``, then horizontally to ``exit_col``, and finally
    leaves through ``exit_port``.
    """

    via_col: int
    row: int
    exit_col: int
    exit_port: str


class EdgeRouter(Router):
    """One ERTR at (col, row) of an Edge Network."""

    def __init__(self, sim: Simulator, name: str, col: int, row: int,
                 params: LatencyParams) -> None:
        super().__init__(sim, name)
        self.col = col
        self.row = row
        self._params = params

    def pipeline_ns(self, packet: Packet, in_port: str) -> float:
        return self._params.cycles(self._params.edge_hop_cycles)

    def route(self, packet: Packet, vc: int,
              in_port: str) -> Tuple[str, str, Optional[int]]:
        target: Optional[EdgeTarget] = getattr(packet, "edge_target", None)
        if target is None:
            raise FabricError(f"{self.name}: packet {packet.pid} has no "
                              "edge target")
        out_vc = edge_vc(packet)
        # Phase 1: reach the via column before moving vertically.
        if self.row != target.row:
            if self.col != target.via_col:
                return ("link",
                        "E" if target.via_col > self.col else "W", out_vc)
            return ("link", "N" if target.row > self.row else "S", out_vc)
        # Phase 2: at the target row; go to the exit column, then out.
        if self.col != target.exit_col:
            return ("link",
                    "E" if target.exit_col > self.col else "W", out_vc)
        return ("link", target.exit_port, out_vc)


class RowAdapter(Router):
    """Connects one Core Network row to the Edge Network's inner column.

    On the core-to-edge crossing the RA asks the chip to plan the packet's
    path through the Edge Network (exit channel choice happens here).
    """

    def __init__(self, sim: Simulator, name: str, row: int,
                 params: LatencyParams,
                 plan_egress: Callable[[Packet], None]) -> None:
        super().__init__(sim, name)
        self.row = row
        self._params = params
        self._plan_egress = plan_egress

    def pipeline_ns(self, packet: Packet, in_port: str) -> float:
        return self._params.cycles(self._params.ra_cycles)

    def route(self, packet: Packet, vc: int,
              in_port: str) -> Tuple[str, str, Optional[int]]:
        if in_port == "core":
            self._plan_egress(packet)
            return ("link", "edge", edge_vc(packet))
        if in_port == "edge":
            from .core_router import core_vc
            return ("link", "core", core_vc(packet))
        raise FabricError(f"{self.name}: unknown in_port {in_port}")


class ChannelAdapter(Router):
    """Joins the outer Edge Network column to one channel slice.

    The CA hosts the particle cache and INZ codecs (bit-level effects are
    accounted in :mod:`repro.fullsim`); in the flit simulator it charges
    the encode/decode pipeline cycles and hands arriving packets to the
    chip for ingress planning (continue, turn, or deliver).
    """

    def __init__(self, sim: Simulator, name: str,
                 direction: Tuple[int, int], slice_index: int,
                 params: LatencyParams,
                 plan_ingress: Callable[[Packet, Tuple[int, int]], str]) -> None:
        super().__init__(sim, name)
        self.direction = direction
        self.slice_index = slice_index
        self._params = params
        self._plan_ingress = plan_ingress

    def pipeline_ns(self, packet: Packet, in_port: str) -> float:
        if in_port == "edge":
            return self._params.cycles(self._params.ca_tx_cycles)
        return self._params.cycles(self._params.ca_rx_cycles)

    def route(self, packet: Packet, vc: int,
              in_port: str) -> Tuple[str, str, Optional[int]]:
        if in_port == "edge":
            return ("link", "channel", edge_vc(packet))
        if in_port == "channel":
            disposition = self._plan_ingress(packet, self.direction)
            if disposition == "fence":
                return ("local", "fence", None)
            return ("link", "edge", edge_vc(packet))
        raise FabricError(f"{self.name}: unknown in_port {in_port}")


class EdgeNetwork:
    """One side's 3x12 mesh of Edge Routers with its RAs and CAs."""

    def __init__(self, sim: Simulator, side: str, node_tag: str,
                 params: LatencyParams, rows: int = 12,
                 credit_flits: int = 8, vcs: Optional[int] = None,
                 direction_rows: Optional[Dict[Tuple[int, int], int]] = None) -> None:
        self._sim = sim
        self.side = side
        self.rows = rows
        self._params = params
        # Full link VC budget (escape + response + adaptive) unless the
        # caller narrows it: packets keep their VC across the edge mesh.
        vcs = params.link_vcs if vcs is None else vcs
        self.vcs = vcs
        if direction_rows is None:
            direction_rows = (DIRECTION_ROWS if rows >= 10
                              else compact_direction_rows())
        if max(direction_rows.values()) >= rows:
            raise FabricError("direction rows do not fit this Edge Network")
        self.direction_rows = dict(direction_rows)
        self.routers: Dict[Tuple[int, int], EdgeRouter] = {}
        for col in range(3):
            for row in range(rows):
                name = f"ertr{side}({col},{row})@{node_tag}"
                self.routers[(col, row)] = EdgeRouter(sim, name, col, row,
                                                      params)
        ser = params.cycle_ns
        for (col, row), router in self.routers.items():
            for port, (ncol, nrow) in (("E", (col + 1, row)),
                                       ("W", (col - 1, row)),
                                       ("N", (col, row + 1)),
                                       ("S", (col, row - 1))):
                neighbor = self.routers.get((ncol, nrow))
                if neighbor is None:
                    continue
                link = Link(sim, f"{router.name}->{port}", latency_ns=0.0,
                            ser_ns_per_flit=ser, vcs=vcs,
                            credit_flits=credit_flits,
                            deliver=_edge_deliver(neighbor, port))
                router.add_output(port, link)

    def router(self, col: int, row: int) -> EdgeRouter:
        return self.routers[(col, row)]

    def attach_ra(self, row: int, ra: RowAdapter,
                  vcs: Optional[int] = None, credit_flits: int = 8) -> None:
        """Wire a Row Adapter to the inner column at ``row`` (both ways)."""
        inner = self.routers[(0, row)]
        params = self._params
        vcs = self.vcs if vcs is None else vcs
        to_edge = Link(self._sim, f"{ra.name}->edge", latency_ns=0.0,
                       ser_ns_per_flit=params.cycle_ns, vcs=vcs,
                       credit_flits=credit_flits,
                       deliver=lambda p, v, l: inner.receive(p, v, "RA", l))
        ra.add_output("edge", to_edge)
        to_ra = Link(self._sim, f"{inner.name}->RA", latency_ns=0.0,
                     ser_ns_per_flit=params.cycle_ns, vcs=vcs,
                     credit_flits=credit_flits,
                     deliver=lambda p, v, l: ra.receive(p, v, "edge", l))
        inner.add_output("RA", to_ra)

    def attach_ca(self, ca: ChannelAdapter,
                  vcs: Optional[int] = None, credit_flits: int = 8) -> None:
        """Wire a Channel Adapter to the outer column at its row."""
        row = self.direction_rows[ca.direction]
        outer = self.routers[(OUTER_COL, row)]
        params = self._params
        vcs = self.vcs if vcs is None else vcs
        port = f"CA:{direction_name(ca.direction)}"
        to_ca = Link(self._sim, f"{outer.name}->{port}", latency_ns=0.0,
                     ser_ns_per_flit=params.cycle_ns, vcs=vcs,
                     credit_flits=credit_flits,
                     deliver=lambda p, v, l: ca.receive(p, v, "edge", l))
        outer.add_output(port, to_ca)
        to_edge = Link(self._sim, f"{ca.name}->edge", latency_ns=0.0,
                       ser_ns_per_flit=params.cycle_ns, vcs=vcs,
                       credit_flits=credit_flits,
                       deliver=lambda p, v, l: outer.receive(p, v, "CA", l))
        ca.add_output("edge", to_edge)


def _edge_deliver(neighbor: EdgeRouter, direction: str):
    opposite = {"E": "E", "W": "W", "N": "N", "S": "S"}[direction]

    def deliver(packet: Packet, vc: int, link: Link) -> None:
        neighbor.receive(packet, vc, opposite, link)
    return deliver
