"""Latency parameters for the flit-level network simulator.

All cycle counts come directly from Section III of the paper (Core Router:
two cycles per U hop, five per V hop; Edge Router: three cycles per hop).
The analog quantities (SERDES latency, wire flight time) are not published
individually, so they are calibrated such that the simulator reproduces
the paper's three published end-to-end anchors:

* minimum one-hop end-to-end latency  ~= 55 ns      (Fig. 6)
* average per-hop latency             ~= 34.2 ns    (Fig. 5 fit)
* average fixed overhead              ~= 55.9 ns    (Fig. 5 fit)

``tests/test_pingpong.py`` asserts the calibrated model stays within a few
percent of all three anchors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ChipConfig
from .packet import ESCAPE_VCS, NUM_LINK_VCS, RESPONSE_VC


@dataclass(frozen=True)
class LatencyParams:
    """Tunable latency model shared by the netsim and the analytic model."""

    clock_ghz: float = 2.80

    # Endpoint overheads (cycles).
    gc_send_overhead_cycles: int = 10    # software issue to first flit out
    trtr_cycles: int = 2                 # TRTR sub-router traversal
    sram_write_cycles: int = 3           # counted write commit + counter bump
    unstall_cycles: int = 8              # blocking-read release to use

    # On-chip network (cycles) — published values.
    core_u_cycles: int = 2
    core_v_cycles: int = 5
    edge_hop_cycles: int = 3
    ra_cycles: int = 2

    # Channel Adapter (cycles): frame pack/unpack, pcache lookup, INZ.
    ca_tx_cycles: int = 4
    ca_rx_cycles: int = 4

    # Off-chip channel (nanoseconds) — calibrated analog path.
    serdes_tx_ns: float = 8.5
    serdes_rx_ns: float = 8.5
    wire_ns: float = 8.0

    # Channel slice: 8 of the 16 lanes toward a neighbor.
    slice_gbps: float = 8 * 29.0

    # Link VC budget (requests/escape + response + adaptive).  The four
    # escape VCs carry the dateline-disciplined request classes
    # (request_vc == 2 * vc_class + dateline), the response VC is the
    # protocol's second traffic class, and the adaptive VC is the
    # per-hop adaptive layer of repro.routing.escape.  Channel and
    # edge-network links are provisioned with the full set so a packet
    # keeps its VC across the chip; the core network keeps its own
    # two-VC request/response split (Section III-B1).  The escape and
    # response budgets are pinned by the fixed VC ids in
    # repro.netsim.packet (__post_init__ rejects anything the VC map
    # cannot address); only extra adaptive VCs may be provisioned.
    escape_vcs: int = len(ESCAPE_VCS)
    response_vcs: int = 1
    adaptive_vcs: int = 1

    def __post_init__(self) -> None:
        if self.escape_vcs != len(ESCAPE_VCS):
            raise ValueError(
                f"escape_vcs must be {len(ESCAPE_VCS)}: the VC map in "
                "repro.netsim.packet hardwires escape VC ids "
                f"{ESCAPE_VCS}")
        if self.response_vcs != 1:
            raise ValueError(
                "response_vcs must be 1: the VC map hardwires the "
                f"response VC id {RESPONSE_VC}")
        if self.adaptive_vcs < 1:
            raise ValueError(
                "adaptive_vcs must be >= 1: adaptive-escape packets "
                "ride the fixed adaptive VC id "
                f"{NUM_LINK_VCS - 1}")

    # Fence engine (see repro.fence): internal edge-network multicast and
    # merge time added at each torus hop of a fence wavefront, plus the
    # intra-chip fence tree overhead (merge of all GC fence packets).
    fence_internal_ns: float = 18.0
    fence_tree_overhead_ns: float = 12.0

    @property
    def link_vcs(self) -> int:
        """VCs on every channel and edge-network link (escape map +
        response + adaptive); must cover repro.netsim.packet's VC ids."""
        return self.escape_vcs + self.response_vcs + self.adaptive_vcs

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz

    def cycles(self, n: int) -> float:
        return n * self.cycle_ns

    @property
    def flit_serialization_ns(self) -> float:
        """One 192-bit flit over one 232 Gb/s channel slice."""
        return 192.0 / self.slice_gbps

    @property
    def channel_hop_ns(self) -> float:
        """Pure channel time: SERDES out, wire, SERDES in (per flit extra
        serialization charged separately)."""
        return self.serdes_tx_ns + self.wire_ns + self.serdes_rx_ns


DEFAULT_PARAMS = LatencyParams()
