"""The ping-pong latency experiment — Section III-C / Figure 5.

Software on core A sends a counted write of 16 bytes to memory associated
with core B on a remote ASIC; B's blocking read unstalls on receipt and B
immediately sends a counted write back.  One-way end-to-end latency is
half the round-trip time.  The paper averages over all GC pairs a given
number of inter-node hops apart; we sample placements uniformly (the
population is deterministic given placement, so sampling converges fast).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.seeding import derive_seed
from ..engine.stats import StatsRegistry, Summary
from ..topology.torus import Coord
from .machine import NetworkMachine
from .packet import CoreAddress

#: Histogram bounds for one-way ping-pong latency (ns): 8 ns bins over
#: the full range a healthy machine can produce, fixed so the binning —
#: and therefore every percentile read from it — is config-independent.
ONE_WAY_HIST_NS = (0.0, 4096.0, 512)


@dataclass
class PingPongResult:
    """Latency of one measured ping-pong placement."""

    src_node: Coord
    dst_node: Coord
    src_core: CoreAddress
    dst_core: CoreAddress
    hops: int
    one_way_ns: float


class PingPongHarness:
    """Runs counted-write ping-pongs on a :class:`NetworkMachine`.

    Every measurement also lands in the harness's ``stats`` registry
    (:class:`~repro.engine.stats.StatsRegistry`): per-round one-way
    latencies feed a machine-readable summary and fixed-bin histogram,
    and the per-hop / best-placement surfaces are mirrored as named
    summaries.  The registry is an *additional* audit surface — the
    return values are still computed from the same local accumulators
    as before, so results stay byte-identical.
    """

    def __init__(self, machine: NetworkMachine, seed: int = 1) -> None:
        self.machine = machine
        # Placement sampling follows the derive_seed convention so a
        # harness rebuilt in any worker process samples the same pairs.
        self.rng = random.Random(derive_seed(seed, "pingpong"))
        self.stats = StatsRegistry()

    def measure_pair(self, src_node: Coord, src_core: CoreAddress,
                     dst_node: Coord, dst_core: CoreAddress,
                     rounds: int = 1,
                     slice_index: Optional[int] = None) -> PingPongResult:
        """Average one-way latency for one GC pair over ``rounds``."""
        machine = self.machine
        sim = machine.sim
        total = [0.0]
        completed = [0]

        dst_gc = machine.gc(dst_node, dst_core)
        src_gc = machine.gc(src_node, src_core)

        def start_round(round_index: int) -> None:
            start = sim.now
            ping_quad = 2 * round_index % dst_gc.sram.num_quads
            pong_quad = (2 * round_index + 1) % src_gc.sram.num_quads
            # Software resets the synchronization counters between rounds
            # (the machine object may be reused across measurements).
            dst_gc.sram.reset_counter(ping_quad)
            src_gc.sram.reset_counter(pong_quad)

            def on_pong(record) -> None:
                one_way = (sim.now - start) / 2.0
                total[0] += one_way
                completed[0] += 1
                self.stats.summary("pingpong/one_way_ns").observe(one_way)
                self.stats.histogram("pingpong/one_way_ns",
                                     *ONE_WAY_HIST_NS).observe(one_way)
                if round_index + 1 < rounds:
                    start_round(round_index + 1)

            def on_ping(record) -> None:
                machine.send_counted_write(dst_node, dst_core, src_node,
                                           src_core, quad_addr=pong_quad,
                                           slice_index=slice_index)
                src_gc.read_port.issue(pong_quad, 1, on_pong)

            dst_gc.read_port.issue(ping_quad, 1, on_ping)
            machine.send_counted_write(src_node, src_core, dst_node,
                                       dst_core, quad_addr=ping_quad,
                                       slice_index=slice_index)

        sim.after(0.0, lambda: start_round(0))
        sim.run()
        if completed[0] != rounds:
            raise RuntimeError("ping-pong did not complete")
        hops = machine.torus.min_hops(src_node, dst_node)
        return PingPongResult(src_node, dst_node, src_core, dst_core,
                              hops, total[0] / rounds)

    def sample_pairs_at_hops(self, hops: int,
                             samples: int) -> List[Tuple[Coord, Coord]]:
        """Uniformly sample node pairs whose minimal distance is ``hops``."""
        torus = self.machine.torus
        nodes = list(torus.nodes())
        pairs = []
        attempts = 0
        while len(pairs) < samples and attempts < samples * 2000:
            attempts += 1
            a = self.rng.choice(nodes)
            b = self.rng.choice(nodes)
            if torus.min_hops(a, b) == hops:
                pairs.append((a, b))
        if not pairs:
            raise ValueError(f"no node pairs at {hops} hops in this torus")
        return pairs

    def latency_samples_vs_hops(
            self, max_hops: Optional[int] = None,
            samples_per_hop: int = 25) -> Dict[int, List[float]]:
        """Raw one-way latency samples per hop count.

        The sample lists feed the shared percentile aggregation
        (:func:`repro.analysis.aggregate.summarize_values`) used by the
        figure-5 surface and the load-sweep reports.
        """
        torus = self.machine.torus
        if max_hops is None:
            max_hops = torus.dims.diameter
        results: Dict[int, List[float]] = {}
        for hops in range(max_hops + 1):
            values: List[float] = []
            if hops == 0:
                nodes = [self.rng.choice(list(torus.nodes()))
                         for __ in range(samples_per_hop)]
                pairs = [(n, n) for n in nodes]
            else:
                pairs = self.sample_pairs_at_hops(hops, samples_per_hop)
            for src_node, dst_node in pairs:
                src_core = self.machine.random_gc_address(self.rng)
                dst_core = self.machine.random_gc_address(self.rng)
                if src_node == dst_node and src_core == dst_core:
                    dst_core = CoreAddress(
                        (src_core.tile_u + 1) % self.machine.chip_cols,
                        src_core.tile_v, src_core.which)
                result = self.measure_pair(src_node, src_core,
                                           dst_node, dst_core)
                values.append(result.one_way_ns)
            results[hops] = values
        return results

    def latency_vs_hops(self, max_hops: Optional[int] = None,
                        samples_per_hop: int = 25) -> Dict[int, Summary]:
        """Average one-way latency per hop count (the Figure 5 series)."""
        samples = self.latency_samples_vs_hops(max_hops, samples_per_hop)
        results: Dict[int, Summary] = {}
        for hops, values in samples.items():
            summary = Summary(f"one_way_ns@{hops}hops")
            for value in values:
                summary.observe(value)
            results[hops] = summary
            # Mirror the figure-5 surface into the harness registry;
            # merging a fresh local summary keeps repeated calls from
            # corrupting each other's returned objects.
            self.stats.summary(f"fig5/one_way_ns@{hops}hops").merge(summary)
        return results

    def minimum_one_hop_latency(self, samples: int = 60) -> float:
        """Best-placement single-hop latency (the paper's 55 ns number).

        Minimizes over sampled GC placements for neighboring nodes,
        including the best-case placements (GCs adjacent to the exit
        edge, destination on the matching row).
        """
        local = Summary("min_one_hop_ns")
        pairs = self.sample_pairs_at_hops(1, samples)
        # Channel-adapter attach rows, restricted to rows that exist on
        # reduced-size chips.
        ca_rows = tuple(row for row in (0, 1, 4, 5, 8, 9)
                        if row < self.machine.chip_rows)
        for i, (src_node, dst_node) in enumerate(pairs):
            if i % 2 == 0:
                # Favorable placement: both GCs on the left edge column
                # (matching slice 0) on a Channel Adapter attach row.
                row = self.rng.choice(ca_rows)
                src_core = CoreAddress(0, row, 0)
                dst_core = CoreAddress(0, row, 0)
                slice_index = 0
            else:
                src_core = self.machine.random_gc_address(self.rng)
                dst_core = self.machine.random_gc_address(self.rng)
                slice_index = None
            result = self.measure_pair(src_node, src_core, dst_node,
                                       dst_core, slice_index=slice_index)
            local.observe(result.one_way_ns)
        self.stats.summary("fig6/min_one_hop_ns").merge(local)
        assert local.min is not None  # sample_pairs_at_hops never empty
        return local.min
