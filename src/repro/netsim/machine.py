"""A multi-node Anton 3 machine: chips wired into a 3D torus.

:class:`NetworkMachine` builds one :class:`~repro.netsim.chip.ChipNetwork`
per node and connects their Channel Adapters with SERDES channel links
(two slices per neighbor, 8 lanes / 232 Gb/s each).  It provides the
packet-level API used by the latency and fence experiments: counted
writes, blocking reads, and raw packet injection.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine.seeding import derive_seed
from ..engine.simulator import Simulator
from ..faults import FaultAdviser, FaultInjector, FaultState
from ..routing import DEFAULT_POLICY, RoutePlan, RoutingPolicy, make_policy
from ..topology.torus import Coord, DIRECTIONS, Torus3D
from .chip import ChipNetwork, GcEndpoint
from .config import MachineConfig
from .fabric import FabricError, Link
from .packet import CoreAddress, Packet, PacketKind, TrafficClass
from .params import DEFAULT_PARAMS, LatencyParams

_UNSET = object()  # sentinel distinguishing "not passed" from any value


class NetworkMachine:
    """A torus of simulated Anton 3 node networks.

    The supported constructor is the keyword-only ``config`` path::

        NetworkMachine(config=MachineConfig(dims=(4, 4, 8), seed=3))

    The historical per-field keyword arguments (``dims``, ``params``,
    ``chip_cols``, ``chip_rows``, ``seed``, ``routing``) still work but
    are deprecated; they are folded into an equivalent
    :class:`~repro.netsim.config.MachineConfig`, so both paths build
    byte-identical machines (pinned by tests/test_faults.py).
    """

    def __init__(self, dims: Sequence[int] = _UNSET,
                 params: LatencyParams = _UNSET,
                 chip_cols: int = _UNSET, chip_rows: int = _UNSET,
                 seed: int = _UNSET,
                 routing: "str | RoutingPolicy" = _UNSET, *,
                 config: Optional[MachineConfig] = None) -> None:
        legacy = {name: value for name, value in (
            ("dims", dims), ("params", params), ("chip_cols", chip_cols),
            ("chip_rows", chip_rows), ("seed", seed), ("routing", routing),
        ) if value is not _UNSET}
        if config is not None and legacy:
            raise TypeError(
                "pass either config= or the legacy keyword arguments "
                f"({sorted(legacy)}), not both")
        if config is None:
            if legacy:
                warnings.warn(
                    "NetworkMachine(dims=..., ...) keyword arguments are "
                    "deprecated; pass config=MachineConfig(...) instead",
                    DeprecationWarning, stacklevel=2)
            config = MachineConfig(**legacy)
        self.config = config
        self.sim = Simulator()
        self.torus = Torus3D(config.dims)
        self.params = config.params
        self.chip_cols = config.chip_cols
        self.chip_rows = config.chip_rows
        self.seed = config.seed
        # All machine-level randomness (routing choices, GC sampling)
        # draws from a derive_seed stream so results are stable across
        # processes (the PR-1 determinism convention).
        self.rng = random.Random(derive_seed(config.seed, "machine"))
        # The request routing policy (repro.routing).  The default,
        # randomized-minimal, reproduces the paper's Section III-B2
        # scheme draw for draw.
        self.routing = (config.routing
                        if isinstance(config.routing, RoutingPolicy)
                        else make_policy(config.routing, self.torus))
        self.chips: Dict[Coord, ChipNetwork] = {}
        for coord in self.torus.nodes():
            self.chips[coord] = ChipNetwork(
                self.sim, coord, self.torus, params=self.params,
                cols=self.chip_cols, rows=self.chip_rows,
                rng=random.Random(derive_seed(config.seed, coord)))
        self._wire_channels()
        # Observability (repro.observe): explicit config wins; otherwise
        # the ambient context set by an observed runner task applies.
        # Unobserved machines keep ``observer`` None everywhere, so the
        # hot paths pay only the existing None checks.
        self.observer = None
        observe = config.observe
        if observe is None:
            from ..observe.context import active_observe_config
            observe = active_observe_config()
        if observe is not None and observe.enabled:
            from ..observe.observer import Observer
            from ..observe.context import register_observer
            self.observer = Observer(self, observe)
            self.observer.install()
            register_observer(self.observer)
        # Fault machinery: the state object always exists (cheap, empty);
        # the adviser and injector are wired only for scheduled faults,
        # so fault-free machines run the exact pre-fault code paths.
        self.fault_state = FaultState()
        if self.observer is not None and self.observer.hub is not None:
            # Installed before the injector applies, so epochs bumped by
            # t <= 0 fault events are counted too.
            self.fault_state.epoch_hook = self.observer.on_fault_epoch
        self.fault_adviser: Optional[FaultAdviser] = None
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults is not None and len(config.faults):
            self.fault_adviser = FaultAdviser(self)
            for chip in self.chips.values():
                chip.fault_adviser = self.fault_adviser
            self.fault_injector = FaultInjector(self, config.faults)
            self.fault_injector.apply()
        if not config.record_delivered:
            self.set_record_delivered(False)

    def _wire_channels(self) -> None:
        params = self.params
        for coord, chip in self.chips.items():
            for axis, sign in DIRECTIONS:
                neighbor_coord = self.torus.neighbor(coord, axis, sign)
                neighbor = self.chips[neighbor_coord]
                opposite = (axis, -sign)
                for slice_index in (0, 1):
                    ca_in = neighbor.channel_adapter(opposite, slice_index)
                    link = Link(
                        self.sim,
                        f"chan{coord}->{neighbor_coord}[{axis},{sign}]s{slice_index}",
                        latency_ns=params.channel_hop_ns,
                        ser_ns_per_flit=params.flit_serialization_ns,
                        vcs=params.link_vcs, credit_flits=8,
                        deliver=lambda p, v, l, ca=ca_in: ca.receive(
                            p, v, "channel", l))
                    chip.attach_channel((axis, sign), slice_index, link)

    # ------------------------------------------------------------------
    # Endpoint access.
    # ------------------------------------------------------------------

    def chip(self, coord: Coord) -> ChipNetwork:
        return self.chips[self.torus.normalize(coord)]

    def channel_link(self, coord: Coord, direction: Tuple[int, int],
                     slice_index: int) -> Link:
        """The outgoing channel link of one node in one direction/slice.

        The handle the fault injector kills and restores; raises
        :class:`~repro.netsim.fabric.FabricError` if the channel was
        never wired (a machine-construction bug, not a fault).
        """
        ca = self.chip(coord).channel_adapters[(direction, slice_index)]
        link = ca.output_or_none("channel")
        if link is None:
            raise FabricError(
                f"{coord} has no wired channel {direction} slice "
                f"{slice_index}")
        return link

    def gc(self, coord: Coord, address: CoreAddress) -> GcEndpoint:
        return self.chip(coord).gc(address)

    def random_gc_address(self, rng: Optional[random.Random] = None) -> CoreAddress:
        rng = rng or self.rng
        return CoreAddress(tile_u=rng.randrange(self.chip_cols),
                           tile_v=rng.randrange(self.chip_rows),
                           which=rng.randrange(2))

    # ------------------------------------------------------------------
    # Packet injection.
    # ------------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Raw injection hook: hand ``packet`` to its source chip.

        Open-loop traffic generators (:mod:`repro.traffic`) build packets
        with explicit routing choices and inject them here; per-class
        injected/delivered counters live on the chips and aggregate
        through :meth:`injected_counts` / :meth:`delivered_counts`.
        """
        self.chip(packet.src_node).send(packet)

    def set_delivery_hook(
            self, hook: Optional[Callable[[Packet], None]]) -> None:
        """Install (or clear) a machine-wide final-delivery callback."""
        for chip in self.chips.values():
            chip.delivery_hook = hook

    def set_record_delivered(self, record: bool) -> None:
        """Toggle per-GC delivered-packet retention (off for open loop)."""
        for chip in self.chips.values():
            chip.record_delivered = record

    def injected_counts(self) -> Dict[TrafficClass, int]:
        """Machine-wide injected packets per traffic class."""
        totals = {tc: 0 for tc in TrafficClass}
        for chip in self.chips.values():
            for tc, count in chip.injected_counts.items():
                totals[tc] += count
        return totals

    def delivered_counts(self) -> Dict[TrafficClass, int]:
        """Machine-wide delivered packets per traffic class."""
        totals = {tc: 0 for tc in TrafficClass}
        for chip in self.chips.values():
            for tc, count in chip.delivered_counts.items():
                totals[tc] += count
        return totals

    def in_flight_counts(self) -> Dict[TrafficClass, int]:
        """Machine-wide packets injected but not yet delivered, per class.

        The occupancy signal closed-loop workloads (:mod:`repro.workload`)
        throttle against and drain checks assert on.
        """
        injected = self.injected_counts()
        delivered = self.delivered_counts()
        return {tc: injected[tc] - delivered[tc] for tc in TrafficClass}

    def plan_request_route(self, src_node: Coord, dst_node: Coord,
                           rng: Optional[random.Random] = None,
                           src_core: Optional[CoreAddress] = None) -> RoutePlan:
        """The routing policy's plan for one request, drawn from ``rng``.

        The machine's chips supply the local congestion probe adaptive
        policies consult (outgoing-channel queue depth at the source);
        ``src_core`` keys the per-source VC-class spread.
        """
        rng = rng or self.rng
        return self.routing.make_plan(
            self.torus.normalize(src_node), self.torus.normalize(dst_node),
            rng, congestion=self._channel_congestion, source=src_core)

    def _channel_congestion(self, node: Coord,
                            direction: Tuple[int, int]) -> float:
        return float(self.chips[node].channel_queue_packets(direction))

    def make_request(self, kind: PacketKind, src_node: Coord,
                     src_core: CoreAddress, dst_node: Coord,
                     dst_core: CoreAddress, quad_addr: int = 0,
                     payload_words: Tuple[int, ...] = (),
                     num_flits: int = 1,
                     accumulate: bool = False,
                     dim_order: Optional[Tuple[int, int, int]] = None,
                     slice_index: Optional[int] = None) -> Packet:
        """Build a request packet routed by the machine's policy, with a
        random channel slice (oblivious load balance, Section III-B2).
        ``dim_order`` pins a fixed single-phase minimal route (bypassing
        the policy) and ``slice_index`` pins the slice, for experiments."""
        plan: Optional[RoutePlan] = None
        if dim_order is None:
            plan = self.plan_request_route(src_node, dst_node, self.rng,
                                           src_core=src_core)
            dim_order = plan.phases[0].dim_order
        if slice_index is None:
            slice_index = self.rng.randrange(2)
        packet = Packet(kind=kind, traffic_class=TrafficClass.REQUEST,
                        src_node=self.torus.normalize(src_node),
                        dst_node=self.torus.normalize(dst_node),
                        src_core=src_core, dst_core=dst_core,
                        num_flits=num_flits, payload_words=payload_words,
                        dim_order=dim_order,
                        slice_index=slice_index,
                        quad_addr=quad_addr, accumulate=accumulate)
        packet.route = plan
        return packet

    def send_counted_write(self, src_node: Coord, src_core: CoreAddress,
                           dst_node: Coord, dst_core: CoreAddress,
                           quad_addr: int = 0,
                           words: Tuple[int, int, int, int] = (0, 0, 0, 0),
                           accumulate: bool = False,
                           slice_index: Optional[int] = None) -> Packet:
        """Issue a 16-byte counted write from a GC (the ping-pong unit).

        One quad (128 bits) fits a single flit's payload, so a counted
        write is a one-flit packet.
        """
        packet = self.make_request(
            PacketKind.COUNTED_WRITE, src_node, src_core, dst_node,
            dst_core, quad_addr=quad_addr, payload_words=tuple(words),
            num_flits=1, accumulate=accumulate, slice_index=slice_index)
        self.chip(src_node).send(packet)
        return packet

    def send_remote_read(self, src_node: Coord, src_core: CoreAddress,
                         dst_node: Coord, dst_core: CoreAddress,
                         quad_addr: int, reply_quad: int = 0,
                         slice_index: Optional[int] = None) -> Packet:
        """Issue a remote read: a request packet to the target GC's SRAM,
        answered by a two-flit response on the response traffic class
        (XYZ-only, mesh-restricted — Section III-B2).

        The read data arrives at the requester as a counted write to
        ``reply_quad``, so software detects completion with a blocking
        read of that quad (threshold 1).
        """
        packet = self.make_request(
            PacketKind.READ_REQUEST, src_node, src_core, dst_node,
            dst_core, quad_addr=quad_addr,
            payload_words=(reply_quad,), num_flits=1,
            slice_index=slice_index)
        self.chip(src_node).send(packet)
        return packet

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    # ------------------------------------------------------------------
    # Machine-wide statistics.
    # ------------------------------------------------------------------

    def total_channel_flits(self) -> int:
        """Flits that crossed any inter-node channel."""
        total = 0
        for chip in self.chips.values():
            for ca in chip.channel_adapters.values():
                link = ca.output_or_none("channel")
                if link is not None:
                    total += link.flits_sent
        return total

    def channel_vc_packets(self) -> List[int]:
        """Packets that crossed inter-node channels, per link VC.

        The escape/adaptive accounting view: indices follow the link VC
        map (escape VCs 0-3, response VC 4, adaptive VC 5), so tests can
        assert which layers actually carried traffic under a policy.
        """
        totals = [0] * self.params.link_vcs
        for chip in self.chips.values():
            for ca in chip.channel_adapters.values():
                link = ca.output_or_none("channel")
                if link is not None:
                    for vc, count in enumerate(link.packets_sent_by_vc):
                        totals[vc] += count
        return totals
