"""Whole-ASIC network assembly: Core Network, Edge Networks, adapters, GCs.

One :class:`ChipNetwork` instance models the network of a single Anton 3
node: a Core Network mesh of Core Routers, two Edge Networks (left and
right), Row Adapters joining them, and Channel Adapters attaching the
twelve channel-slice endpoints (six torus directions times two slices —
slice 0 lives on the left edge, slice 1 on the right, so each neighbor is
served by 2 x 8 SERDES lanes, matching the chip's 96 lanes).

The chip also hosts the Geometry Core endpoints: each GC owns a quad-SRAM
with counted-write counters and a blocking-read port (Section III-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..engine.simulator import Simulator
from ..routing.policy import next_request_direction, note_hop
from ..sync.blocking_read import BlockingReadPort
from ..sync.sram import QuadSram
from ..topology.torus import Coord, Torus3D
from .core_router import CoreNetwork, CoreNetworkHost, core_vc
from .edge_router import (
    ChannelAdapter,
    EdgeNetwork,
    EdgeTarget,
    OUTER_COL,
    RowAdapter,
    edge_vc,
)
from .fabric import FabricError, Link
from .packet import ADAPTIVE_VC, CoreAddress, Packet, PacketKind, TrafficClass
from .params import DEFAULT_PARAMS, LatencyParams

SIDES = ("L", "R")  # slice 0 -> left edge, slice 1 -> right edge


@dataclass
class GcEndpoint:
    """One Geometry Core's network-visible state."""

    address: CoreAddress
    sram: QuadSram
    read_port: BlockingReadPort
    delivered: List[Packet] = field(default_factory=list)


class ChipNetwork(CoreNetworkHost):
    """The network of one node (one ASIC)."""

    def __init__(self, sim: Simulator, coord: Coord, torus: Torus3D,
                 params: LatencyParams = DEFAULT_PARAMS,
                 cols: int = 24, rows: int = 12,
                 rng: Optional[random.Random] = None) -> None:
        self._sim = sim
        self.coord = coord
        self.torus = torus
        self.params = params
        self.cols = cols
        self.rows = rows
        self._rng = rng if rng is not None else random.Random(0)
        tag = f"n{torus.node_id(coord)}"

        self.core = CoreNetwork(sim, self, params, cols=cols, rows=rows,
                                tag=tag)
        self.edges: Dict[str, EdgeNetwork] = {
            side: EdgeNetwork(sim, side, tag, params, rows=rows)
            for side in SIDES}
        self._gcs: Dict[Tuple[int, int, int], GcEndpoint] = {}
        self.fence_handler: Optional[Callable[[Packet], None]] = None
        # Per-traffic-class accounting and the delivery hook used by the
        # open-loop traffic harness (repro.traffic): counts are bumped at
        # injection (send) and final SRAM commit; the hook fires on every
        # commit.  ``record_delivered`` can be cleared for long open-loop
        # runs so per-GC delivered lists do not grow without bound.
        self.injected_counts: Dict[TrafficClass, int] = {
            tc: 0 for tc in TrafficClass}
        self.delivered_counts: Dict[TrafficClass, int] = {
            tc: 0 for tc in TrafficClass}
        self.delivery_hook: Optional[Callable[[Packet], None]] = None
        self.record_delivered = True
        # Installed by the machine only when faults are scheduled; while
        # None (the healthy case) routing takes the exact original paths.
        self.fault_adviser = None
        # Installed by the machine only when the run is observed
        # (repro.observe); while None the injection/delivery hot paths
        # pay a single attribute check and nothing else.
        self.observer = None
        self._route_events = None

        # Row Adapters: one per (side, row), joining core column 0 or
        # cols-1 to the inner edge column.
        self.row_adapters: Dict[Tuple[str, int], RowAdapter] = {}
        for side in SIDES:
            core_u = 0 if side == "L" else cols - 1
            for row in range(rows):
                ra = RowAdapter(sim, f"ra{side}{row}@{tag}", row, params,
                                plan_egress=self._plan_egress)
                self.edges[side].attach_ra(row, ra)
                to_core = Link(
                    sim, f"{ra.name}->core", latency_ns=0.0,
                    ser_ns_per_flit=params.cycle_ns, vcs=2, credit_flits=8,
                    deliver=self._ra_to_core(core_u, row))
                ra.add_output("core", to_core)
                core_to_ra = Link(
                    sim, f"core({core_u},{row})->{ra.name}", latency_ns=0.0,
                    ser_ns_per_flit=params.cycle_ns, vcs=2, credit_flits=8,
                    deliver=self._core_to_ra(ra))
                self.core.attach_ra(core_u, row, core_to_ra)
                self.row_adapters[(side, row)] = ra

        # Channel Adapters: direction x slice; outgoing channel links are
        # wired later by the machine (attach_channel).
        self.channel_adapters: Dict[Tuple[Tuple[int, int], int],
                                    ChannelAdapter] = {}
        for slice_index, side in enumerate(SIDES):
            edge = self.edges[side]
            for direction in edge.direction_rows:
                ca = ChannelAdapter(
                    sim, f"ca{side}{direction}@{tag}", direction,
                    slice_index, params, plan_ingress=self._plan_ingress)
                edge.attach_ca(ca)
                ca.add_sink("fence", self._deliver_fence)
                self.channel_adapters[(direction, slice_index)] = ca

        # Per-GC sinks on every core router.
        for u in range(cols):
            for v in range(rows):
                router = self.core.router(u, v)
                router.add_sink("gc0", self._deliver_to_gc)
                router.add_sink("gc1", self._deliver_to_gc)

    # ------------------------------------------------------------------
    # Geometry cores.
    # ------------------------------------------------------------------

    def gc(self, address: CoreAddress) -> GcEndpoint:
        """The (lazily created) endpoint state for one GC."""
        key = (address.tile_u, address.tile_v, address.which)
        if not (0 <= address.tile_u < self.cols
                and 0 <= address.tile_v < self.rows
                and address.which in (0, 1)):
            raise FabricError(f"no GC at {address} on a "
                              f"{self.cols}x{self.rows} chip")
        if key not in self._gcs:
            sram = QuadSram()
            self._gcs[key] = GcEndpoint(
                address=address, sram=sram,
                read_port=BlockingReadPort(
                    self._sim, sram,
                    read_latency_ns=self.params.cycles(
                        self.params.unstall_cycles)))
        return self._gcs[key]

    def send(self, packet: Packet) -> None:
        """A GC issues a packet: software overhead, then TRTR injection."""
        packet.injected_ns = self._sim.now
        self.injected_counts[packet.traffic_class] += 1
        delay = self.params.cycles(self.params.gc_send_overhead_cycles)
        if self.observer is not None:
            self.observer.on_inject(self, packet, delay)
        self._sim.after(delay, lambda: self.core.inject(packet,
                                                        packet.src_core))

    def _deliver_to_gc(self, packet: Packet) -> None:
        """Final TRTR ejection plus SRAM commit for an arriving packet."""
        params = self.params
        delay = params.cycles(params.trtr_cycles + params.sram_write_cycles)

        def commit() -> None:
            endpoint = self.gc(packet.dst_core)
            packet.delivered_ns = self._sim.now
            self.delivered_counts[packet.traffic_class] += 1
            if self.record_delivered:
                endpoint.delivered.append(packet)
            if packet.kind in (PacketKind.COUNTED_WRITE, PacketKind.POSITION,
                               PacketKind.FORCE):
                words = list(packet.payload_words) or [0, 0, 0, 0]
                endpoint.sram.counted_write(packet.quad_addr, words[:4],
                                            accumulate=packet.accumulate)
            elif packet.kind is PacketKind.READ_REQUEST:
                self._serve_remote_read(packet, endpoint)
            elif packet.kind is PacketKind.READ_RESPONSE:
                # Read data lands as a counted write to the requester's
                # reply quad, releasing any blocking read on it.
                words = list(packet.payload_words) or [0, 0, 0, 0]
                endpoint.sram.counted_write(packet.quad_addr, words[:4])
            if self.delivery_hook is not None:
                self.delivery_hook(packet)
            if self.observer is not None:
                self.observer.on_deliver(self, packet, delay)

        self._sim.after(delay, commit)

    def _serve_remote_read(self, request: Packet,
                           endpoint: GcEndpoint) -> None:
        """Memory serves a remote read: returns the addressed quad as a
        response-class packet (XYZ mesh-restricted route, response VC)."""
        words = tuple(endpoint.sram.read(request.quad_addr))
        reply_quad = request.payload_words[0] if request.payload_words else 0
        response = Packet(
            kind=PacketKind.READ_RESPONSE,
            traffic_class=TrafficClass.RESPONSE,
            src_node=self.coord,
            dst_node=request.src_node,
            src_core=request.dst_core,
            dst_core=request.src_core,
            num_flits=2,                    # header + 16-byte data payload
            payload_words=words,
            dim_order=(0, 1, 2),            # responses are XYZ-only
            slice_index=request.slice_index,
            quad_addr=reply_quad)
        self.send(response)

    def _deliver_fence(self, packet: Packet) -> None:
        if self.fence_handler is None:
            raise FabricError(f"{self.coord}: fence arrived with no handler")
        self.fence_handler(packet)

    # ------------------------------------------------------------------
    # CoreNetworkHost interface.
    # ------------------------------------------------------------------

    def exit_column(self, packet: Packet) -> int:
        """Remote packets exit via the edge matching their channel slice."""
        return 0 if packet.slice_index == 0 else self.cols - 1

    # ------------------------------------------------------------------
    # Torus routing decisions.
    # ------------------------------------------------------------------

    def next_direction(self, packet: Packet) -> Optional[Tuple[int, int]]:
        """The packet's next torus direction from this node.

        Responses are pinned here, not in any policy: mesh-restricted
        XYZ (Section III-B2), so no wraparound moves and a single
        response VC stays deadlock-free.  Requests resolve their
        injection-time :class:`~repro.routing.policy.RoutePlan` (or the
        legacy single-phase ``dim_order`` when no plan was attached);
        adaptive plans re-select per hop against this chip's outgoing
        adaptive-VC credit/occupancy (:meth:`adaptive_vc_state`) with
        the chip RNG breaking score ties.
        """
        adviser = self.fault_adviser
        if packet.traffic_class is TrafficClass.RESPONSE:
            if adviser is not None:
                # Degraded mode: responses follow the live-shortest-path
                # table (they may leave the mesh restriction — see the
                # fault-model caveats in docs/architecture.md).
                return adviser.route_direction(packet, self.coord,
                                               packet.dst_node, self._rng)
            for axis in (0, 1, 2):
                delta = packet.dst_node[axis] - self.coord[axis]
                if delta:
                    return (axis, 1 if delta > 0 else -1)
            return None
        plan = packet.route
        if plan is not None and getattr(plan, "adaptive", False):
            return next_request_direction(packet, self.coord, self.torus,
                                          probe=self._adaptive_probe(packet),
                                          rng=self._rng, faults=adviser,
                                          events=self._route_events)
        if adviser is not None:
            return next_request_direction(packet, self.coord, self.torus,
                                          rng=self._rng, faults=adviser)
        return next_request_direction(packet, self.coord, self.torus)

    def adaptive_vc_state(self, direction: Tuple[int, int],
                          slice_index: int) -> Tuple[int, int]:
        """``(credits, queued_flits)`` of one outgoing channel's adaptive VC.

        The downstream-credit/occupancy observation the per-hop adaptive
        chooser (:mod:`repro.routing.escape`) scores candidate
        directions with; an unwired channel reads as zero credit, so it
        can never win.
        """
        ca = self.channel_adapters[(direction, slice_index)]
        link = ca.output_or_none("channel")
        if link is None:
            return (0, 0)
        return (link.vc_credits(ADAPTIVE_VC),
                link.queued_flits_on(ADAPTIVE_VC))

    def _adaptive_probe(self, packet: Packet):
        """The per-packet probe closure: reads the packet's own slice."""

        def probe(coord: Coord, direction: Tuple[int, int]) -> Tuple[int, int]:
            return self.adaptive_vc_state(direction, packet.slice_index)

        return probe

    def _note_torus_hop(self, packet: Packet,
                        direction: Tuple[int, int]) -> None:
        """Maintain the request dateline/VC state for one planned hop."""
        if packet.traffic_class is TrafficClass.REQUEST:
            note_hop(packet, self.coord, direction, self.torus)

    def _edge_for_slice(self, slice_index: int) -> EdgeNetwork:
        return self.edges[SIDES[slice_index % 2]]

    def _plan_egress(self, packet: Packet) -> None:
        """Called by the RA when a packet crosses into the Edge Network."""
        direction = self.next_direction(packet)
        if direction is None:
            raise FabricError(
                f"{self.coord}: packet {packet.pid} entered the edge "
                "network with no remaining torus hops")
        self._note_torus_hop(packet, direction)
        edge = self._edge_for_slice(packet.slice_index)
        row = edge.direction_rows[direction]
        via = self._rng.choice((0, 1))  # inner columns, randomized
        packet.edge_target = EdgeTarget(via_col=via, row=row,
                                        exit_col=OUTER_COL,
                                        exit_port=_ca_port(direction))

    def _plan_ingress(self, packet: Packet,
                      arrival_direction: Tuple[int, int]) -> str:
        """Called by a CA when a packet arrives from a channel.

        Returns "fence" for fence packets (delivered to the fence engine)
        or "edge" after installing the packet's next edge target.
        """
        packet.torus_hops_taken += 1
        if packet.kind is PacketKind.FENCE:
            return "fence"
        edge = self._edge_for_slice(packet.slice_index)
        direction = self.next_direction(packet)
        if direction is None:
            # Final node: head for the RA at the destination tile's row.
            via = self._rng.choice((0, 1))
            packet.edge_target = EdgeTarget(
                via_col=via, row=packet.dst_core.tile_v, exit_col=0,
                exit_port="RA")
            return "edge"
        self._note_torus_hop(packet, direction)
        axis_in, sign_in = arrival_direction
        continuing = (direction[0] == axis_in
                      and direction[1] == -sign_in)
        if continuing:
            # Intra-dimensional: outer column only (Figure 4, blue route).
            via = OUTER_COL
        else:
            via = self._rng.choice((0, 1))
        packet.edge_target = EdgeTarget(
            via_col=via, row=edge.direction_rows[direction],
            exit_col=OUTER_COL, exit_port=_ca_port(direction))
        return "edge"

    # ------------------------------------------------------------------
    # Wiring helpers.
    # ------------------------------------------------------------------

    def _ra_to_core(self, core_u: int, row: int):
        def deliver(packet: Packet, vc: int, link: Link) -> None:
            self.core.router(core_u, row).receive(packet, vc, "RA", link)
        return deliver

    def _core_to_ra(self, ra: RowAdapter):
        def deliver(packet: Packet, vc: int, link: Link) -> None:
            ra.receive(packet, vc, "core", link)
        return deliver

    def attach_channel(self, direction: Tuple[int, int], slice_index: int,
                       link: Link) -> None:
        """Wire the outgoing channel link of one CA (called by machine)."""
        ca = self.channel_adapters[(direction, slice_index)]
        ca.add_output("channel", link)

    def channel_adapter(self, direction: Tuple[int, int],
                        slice_index: int) -> ChannelAdapter:
        return self.channel_adapters[(direction, slice_index)]

    def channel_queue_packets(self, direction: Tuple[int, int],
                              slice_index: Optional[int] = None) -> int:
        """Packets queued on this node's outgoing channel in ``direction``.

        The local-occupancy signal adaptive routing policies consult at
        injection; with ``slice_index`` ``None`` both slices are summed
        (the slice is drawn after the order is chosen).
        """
        slices = (0, 1) if slice_index is None else (slice_index,)
        total = 0
        for index in slices:
            ca = self.channel_adapters[(direction, index)]
            link = ca.output_or_none("channel")
            if link is not None:
                total += link.queued
        return total


def _ca_port(direction: Tuple[int, int]) -> str:
    from ..topology.torus import direction_name
    return f"CA:{direction_name(direction)}"
