"""Flit-level simulator of the Anton 3 network (Sections II-III)."""

from .chip import ChipNetwork, GcEndpoint
from .config import MachineConfig
from .core_router import CORE_VC_REQUEST, CORE_VC_RESPONSE, CoreNetwork, CoreRouter
from .edge_router import (
    DIRECTION_ROWS,
    ChannelAdapter,
    EdgeNetwork,
    EdgeRouter,
    EdgeTarget,
    RowAdapter,
)
from .fabric import FabricError, Link, Router
from .machine import NetworkMachine
from .packet import (
    FLIT_BITS,
    HEADER_BITS,
    PAYLOAD_BITS,
    RESPONSE_VC,
    CoreAddress,
    Packet,
    PacketKind,
    TrafficClass,
    request_vc,
)
from .params import DEFAULT_PARAMS, LatencyParams
from .pingpong import PingPongHarness, PingPongResult
from .surface import build_machine, measure_latency_curve, measure_min_one_hop

__all__ = [
    "ChipNetwork",
    "GcEndpoint",
    "CORE_VC_REQUEST",
    "CORE_VC_RESPONSE",
    "CoreNetwork",
    "CoreRouter",
    "DIRECTION_ROWS",
    "ChannelAdapter",
    "EdgeNetwork",
    "EdgeRouter",
    "EdgeTarget",
    "RowAdapter",
    "FabricError",
    "Link",
    "Router",
    "MachineConfig",
    "NetworkMachine",
    "FLIT_BITS",
    "HEADER_BITS",
    "PAYLOAD_BITS",
    "RESPONSE_VC",
    "CoreAddress",
    "Packet",
    "PacketKind",
    "TrafficClass",
    "request_vc",
    "DEFAULT_PARAMS",
    "LatencyParams",
    "PingPongHarness",
    "PingPongResult",
    "build_machine",
    "measure_latency_curve",
    "measure_min_one_hop",
]
