"""Links and the router base class for the flit-level simulator.

A :class:`Link` models one physical connection (an on-chip mesh channel or
an off-chip SERDES slice): it owns the serialization resource (one packet
at a time, ``num_flits`` flit-times each) and a per-VC credit pool sized to
the eight-flit input queues of the downstream router (Section III-B).

A :class:`Router` receives packets on input ports, charges its pipeline
latency, asks its subclass for a routing decision, and forwards on the
chosen output link.  Flow control is credit-based virtual cut-through:
a packet consumes downstream credits when it starts on a link and returns
them when it leaves the downstream router's input queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..engine.simulator import Simulator
from .packet import Packet


class FabricError(RuntimeError):
    """Raised on wiring or routing bugs."""


@dataclass
class _QueuedSend:
    packet: Packet
    vc: int
    on_accept: Optional[Callable[[], None]]


class Link:
    """A point-to-point channel with credits and a serialization resource.

    Each virtual channel has its own send queue; the serialization
    resource arbitrates round-robin over the VCs whose head packet has
    downstream credits.  The per-VC queues matter for correctness, not
    just fairness: a VC blocked on credits must not stall the others, or
    the dateline VC discipline of the torus routing
    (:mod:`repro.routing`) could deadlock behind a single shared FIFO.

    Attributes:
        name: Debug name.
        latency_ns: Propagation delay after serialization completes
            (wire + SERDES for off-chip; 0 for on-chip).
        ser_ns_per_flit: Serialization time per flit.
        vcs: Number of virtual channels.
        credit_flits: Input-queue depth per VC at the receiver.
    """

    def __init__(self, sim: Simulator, name: str, latency_ns: float,
                 ser_ns_per_flit: float, vcs: int, credit_flits: int,
                 deliver: Callable[[Packet, int, "Link"], None]) -> None:
        self._sim = sim
        self.name = name
        self.latency_ns = latency_ns
        self.ser_ns_per_flit = ser_ns_per_flit
        self.vcs = vcs
        self._credits = [credit_flits] * vcs
        self._deliver = deliver
        self._busy_until = 0.0
        self._queues: List[Deque[_QueuedSend]] = [deque() for __ in range(vcs)]
        self._next_vc = 0  # round-robin arbitration pointer
        self.failed = False
        self._dead_vcs: set = set()
        self.packets_sent = 0
        self.flits_sent = 0
        self.packets_sent_by_vc = [0] * vcs
        self.busy_ns = 0.0
        # Observability (repro.observe): a LinkMonitor when the owning
        # machine is observed, else None — the unobserved hot path pays
        # only these None checks.
        self.monitor = None

    def send(self, packet: Packet, vc: int,
             on_accept: Optional[Callable[[], None]] = None) -> None:
        """Queue ``packet`` for transmission on ``vc``."""
        if not 0 <= vc < self.vcs:
            raise FabricError(f"{self.name}: VC {vc} out of range")
        self._queues[vc].append(_QueuedSend(packet, vc, on_accept))
        if self.monitor is not None:
            self.monitor.on_enqueue(self._sim.now, packet, vc)
        self._dispatch()

    def return_credits(self, vc: int, flits: int) -> None:
        """Downstream freed input-queue space; retry blocked sends."""
        self._credits[vc] += flits
        self._dispatch()

    def _eligible_vc(self) -> Optional[int]:
        """The next VC (round-robin) whose head packet has credits."""
        for offset in range(self.vcs):
            vc = (self._next_vc + offset) % self.vcs
            if vc in self._dead_vcs:
                continue
            queue = self._queues[vc]
            if queue and self._credits[vc] >= queue[0].packet.num_flits:
                return vc
        return None

    def _eligible_count(self) -> int:
        """How many VCs could dispatch right now (monitor bookkeeping)."""
        count = 0
        for vc in range(self.vcs):
            if vc in self._dead_vcs:
                continue
            queue = self._queues[vc]
            if queue and self._credits[vc] >= queue[0].packet.num_flits:
                count += 1
        return count

    def _blocked_vcs(self) -> List[int]:
        """VCs with queued packets that cannot dispatch (monitor bookkeeping).

        A VC is blocked when its head packet lacks downstream credits (or
        the VC is dead) — the per-VC detail the stall-attribution tap
        records.  Only computed when a monitor is attached, so unobserved
        dispatch never pays for it.
        """
        blocked = []
        for vc in range(self.vcs):
            queue = self._queues[vc]
            if not queue:
                continue
            if vc in self._dead_vcs or self._credits[vc] < queue[0].packet.num_flits:
                blocked.append(vc)
        return blocked

    def _dispatch(self) -> None:
        if self.failed:
            # A dead channel holds its queued sends indefinitely (no
            # events, so an open-loop run simply drains around it); a
            # later restore() re-dispatches whatever is stranded.
            return
        now = self._sim.now
        monitor = self.monitor
        while True:
            vc = self._eligible_vc()
            if vc is None:
                # Every queued VC is blocked on credits (or empty).
                if monitor is not None and self.queued:
                    monitor.on_stall(now, self._blocked_vcs())
                return
            if self._busy_until > now:
                # Channel busy: retry when it frees.
                self._sim.at(self._busy_until, self._dispatch)
                return
            self._next_vc = (vc + 1) % self.vcs
            conflicts = (self._eligible_count() - 1
                         if monitor is not None else 0)
            head = self._queues[vc].popleft()
            self._credits[vc] -= head.packet.num_flits
            ser = head.packet.num_flits * self.ser_ns_per_flit
            start = now
            self._busy_until = start + ser
            self.busy_ns += ser
            self.packets_sent += 1
            self.flits_sent += head.packet.num_flits
            self.packets_sent_by_vc[vc] += 1
            if head.on_accept is not None:
                head.on_accept()
            arrival = self._busy_until + self.latency_ns
            packet = head.packet
            if monitor is not None:
                monitor.on_transmit(start, packet, vc, self._busy_until,
                                    arrival, conflicts)
            self._sim.at(arrival, lambda p=packet, v=vc: self._deliver(
                p, v, self))

    @property
    def queued(self) -> int:
        return sum(len(queue) for queue in self._queues)

    # -- fault injection (repro.faults) -----------------------------------

    def fail(self) -> None:
        """Kill the channel: stop dispatching and withdraw all credits.

        Queued and future sends are accepted but held; credit probes
        (:meth:`vc_credits`) read zero so adaptive choosers route away.
        """
        self.failed = True

    def restore(self) -> None:
        """Revive a failed channel and re-dispatch stranded sends."""
        if not self.failed:
            return
        self.failed = False
        self._dispatch()

    def fail_vc(self, vc: int) -> None:
        """Kill one virtual channel; the others keep flowing."""
        if not 0 <= vc < self.vcs:
            raise FabricError(f"{self.name}: VC {vc} out of range")
        self._dead_vcs.add(vc)

    def restore_vc(self, vc: int) -> None:
        self._dead_vcs.discard(vc)
        self._dispatch()

    # -- per-VC visibility (adaptive routing's credit/occupancy probe) ----

    def vc_credits(self, vc: int) -> int:
        """Downstream input-queue credits currently held for ``vc``.

        A failed link (or a dead VC) reads zero: the adaptive chooser's
        headroom test then rejects it without fault-specific logic.
        """
        if self.failed or vc in self._dead_vcs:
            return 0
        return self._credits[vc]

    def queued_on(self, vc: int) -> int:
        """Packets waiting locally on ``vc``'s send queue."""
        return len(self._queues[vc])

    def queued_flits_on(self, vc: int) -> int:
        """Flits waiting locally on ``vc``'s send queue.

        ``vc_credits(vc) - queued_flits_on(vc)`` is the headroom the
        per-hop adaptive chooser (:mod:`repro.routing.escape`) scores:
        credits not yet spoken for by packets already committed to the
        VC.
        """
        return sum(item.packet.num_flits for item in self._queues[vc])


@dataclass
class _InputRecord:
    """Tracks the upstream link owed credits for a buffered packet."""

    link: Optional[Link]
    vc: int
    flits: int

    def release(self) -> None:
        if self.link is not None:
            self.link.return_credits(self.vc, self.flits)
            self.link = None


class Router:
    """Base class: pipeline delay, subclass routing, credit bookkeeping.

    Subclasses implement :meth:`route` returning either
    ``("link", out_port, out_vc)`` or ``("local", sink_name, None)``;
    local sinks are registered callbacks (endpoint delivery).
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self.name = name
        self._out: Dict[str, Link] = {}
        self._sinks: Dict[str, Callable[[Packet], None]] = {}
        self.packets_routed = 0

    # -- wiring ----------------------------------------------------------

    def add_output(self, port: str, link: Link) -> None:
        if port in self._out:
            raise FabricError(f"{self.name}: duplicate output port {port}")
        self._out[port] = link

    def add_sink(self, port: str, handler: Callable[[Packet], None]) -> None:
        if port in self._sinks:
            raise FabricError(f"{self.name}: duplicate sink {port}")
        self._sinks[port] = handler

    def output(self, port: str) -> Link:
        try:
            return self._out[port]
        except KeyError:
            raise FabricError(
                f"{self.name}: no output port {port!r}; "
                f"have {sorted(self._out)}") from None

    def output_or_none(self, port: str) -> Optional[Link]:
        """The link wired to ``port``, or ``None`` before wiring.

        For observers (statistics, congestion probes) that must tolerate
        partially wired fabrics without the FabricError of
        :meth:`output`.
        """
        return self._out.get(port)

    # -- pipeline ---------------------------------------------------------

    def pipeline_ns(self, packet: Packet, in_port: str) -> float:
        """Pipeline latency charged on arrival; subclasses override."""
        return 0.0

    def receive(self, packet: Packet, vc: int, in_port: str,
                from_link: Optional[Link]) -> None:
        """Entry point for packets from a link or local injection."""
        record = _InputRecord(from_link, vc, packet.num_flits)
        delay = self.pipeline_ns(packet, in_port)
        self._sim.after(delay, lambda: self._forward(packet, vc, in_port,
                                                     record))

    def _forward(self, packet: Packet, vc: int, in_port: str,
                 record: _InputRecord) -> None:
        self.packets_routed += 1
        packet.log_hop(f"{self.name}[{in_port}]")
        target, port, out_vc = self.route(packet, vc, in_port)
        if target == "local":
            record.release()
            handler = self._sinks.get(port)
            if handler is None:
                raise FabricError(f"{self.name}: no sink {port!r}")
            handler(packet)
            return
        link = self.output(port)
        link.send(packet, out_vc if out_vc is not None else vc,
                  on_accept=record.release)

    # -- routing (subclass responsibility) --------------------------------

    def route(self, packet: Packet, vc: int,
              in_port: str) -> Tuple[str, str, Optional[int]]:
        raise NotImplementedError
