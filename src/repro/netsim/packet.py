"""Network packets and flits — Section III-B of the paper.

Anton 3 uses small, fixed-size packets of one or two flits; each flit is
192 bits (a 64-bit header plus a 128-bit payload).  Packets belong to one
of two traffic classes — requests and responses — which ride on disjoint
virtual channels for protocol deadlock avoidance.  Request packets fix
their route at injection time through a routing policy
(:mod:`repro.routing`; the default reproduces the paper's randomized
minimal dimension orders); response packets always follow XYZ order and
treat the torus as a mesh.

The simulator forwards whole packets (virtual cut-through: a router begins
forwarding as soon as the header arrives) and charges serialization time
per flit on every physical link.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..topology.torus import Coord

FLIT_BITS = 192
HEADER_BITS = 64
PAYLOAD_BITS = 128


class TrafficClass(enum.Enum):
    """Protocol traffic classes (Section III-B2)."""

    REQUEST = "request"
    RESPONSE = "response"


class PacketKind(enum.Enum):
    """Application meaning of a packet."""

    COUNTED_WRITE = "counted_write"
    READ_REQUEST = "read_request"
    READ_RESPONSE = "read_response"
    POSITION = "position"
    FORCE = "force"
    FENCE = "fence"
    MARKER = "marker"


@dataclass(frozen=True)
class CoreAddress:
    """Location of an endpoint inside a chip.

    Attributes:
        tile_u: Core-tile column (0-23).
        tile_v: Core-tile row (0-11).
        which: Endpoint index within the tile (e.g. GC 0 or 1).
    """

    tile_u: int
    tile_v: int
    which: int = 0


_packet_ids = itertools.count()


@dataclass
class Packet:
    """One network packet in flight.

    Mutable bookkeeping fields (timestamps, hop log) are filled in by the
    simulator as the packet traverses the machine.
    """

    kind: PacketKind
    traffic_class: TrafficClass
    src_node: Coord
    dst_node: Coord
    src_core: CoreAddress
    dst_core: CoreAddress
    num_flits: int = 1
    payload_words: Tuple[int, ...] = ()
    dim_order: Tuple[int, int, int] = (0, 1, 2)
    slice_index: int = 0
    quad_addr: int = 0
    accumulate: bool = False
    pid: int = field(default_factory=lambda: next(_packet_ids))

    # Routing state.  ``route`` is the RoutePlan a policy fixed at
    # injection (repro.routing); packets built without one fall back to
    # a single minimal phase over ``dim_order``.  ``route_axis`` and
    # ``crossed_dateline`` are the per-ring dateline VC discipline,
    # maintained hop by hop via repro.routing.note_hop.  ``on_escape``
    # and ``misroutes`` are the adaptive-escape layer state
    # (repro.routing.escape): which VC layer the current hop rides, and
    # how much of the per-packet misroute budget is spent.
    route: Optional["object"] = None
    route_axis: Optional[int] = None
    crossed_dateline: bool = False
    on_escape: bool = False
    misroutes: int = 0

    # Bookkeeping.
    injected_ns: Optional[float] = None
    delivered_ns: Optional[float] = None
    torus_hops_taken: int = 0
    hop_log: List[str] = field(default_factory=list)
    edge_target: Optional[object] = None  # set by the chip's planners
    # Stable trace identity (repro.observe): (node_id, per-chip sequence)
    # assigned at injection only when the machine is observed.  ``pid``
    # cannot serve — it comes from a process-global counter, so its
    # values depend on how a sweep is split across worker processes.
    trace_id: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.num_flits not in (1, 2):
            raise ValueError("Anton 3 packets are one or two flits")
        if (self.traffic_class is TrafficClass.RESPONSE
                and self.dim_order != (0, 1, 2)):
            raise ValueError("response packets must use XYZ dimension order")

    @property
    def bits(self) -> int:
        return self.num_flits * FLIT_BITS

    @property
    def vc_class(self) -> int:
        """Request VC class of the packet's current routing phase.

        Single-phase plans (and plan-less packets) ride class 0;
        Valiant's second phase rides class 1.
        """
        if self.route is None:
            return 0
        return self.route.current.vc_class

    @property
    def latency_ns(self) -> float:
        if self.injected_ns is None or self.delivered_ns is None:
            raise RuntimeError("packet has not completed its journey")
        return self.delivered_ns - self.injected_ns

    def log_hop(self, where: str) -> None:
        self.hop_log.append(where)


def request_vc(packet: Packet,
               crossed_dateline: Optional[bool] = None) -> int:
    """Request-class VC assignment.

    Four *escape* request VCs exist (Section III-B2).  We split them by
    routing phase (VC class 0/1 — Valiant's two minimal phases ride
    disjoint classes) and by dateline status within the phase —
    ``request_vc == 2 * vc_class + dateline``, the standard torus
    deadlock-avoidance scheme the paper's VC budget implies.  By
    default the packet's own dateline state (maintained by
    :func:`repro.routing.note_hop`) decides; passing ``crossed_dateline``
    pins it for tests.

    Packets whose :class:`~repro.routing.policy.RoutePlan` is marked
    adaptive ride :data:`ADAPTIVE_VC` instead on every hop where the
    per-hop chooser (:mod:`repro.routing.escape`) won an adaptive VC;
    when it fell back (``packet.on_escape``), the escape map above
    applies unchanged — that fallback always being available is the
    Duato deadlock-freedom argument.
    """
    plan = packet.route
    if (plan is not None and getattr(plan, "adaptive", False)
            and not packet.on_escape):
        return ADAPTIVE_VC
    if crossed_dateline is None:
        crossed_dateline = packet.crossed_dateline
    return 2 * packet.vc_class + (1 if crossed_dateline else 0)


#: The link VC map: four dateline-disciplined escape/request VCs, one
#: response VC, one adaptive VC (repro.routing.escape).
ESCAPE_VCS = (0, 1, 2, 3)
RESPONSE_VC = 4  # the single response-class VC (Section III-B2)
ADAPTIVE_VC = 5  # the per-hop adaptive request VC (Duato's adaptive layer)
NUM_LINK_VCS = 6
