"""Pure-function experiment surfaces over the flit-level simulator.

These are the picklable entry points the parallel runner
(:mod:`repro.runner`) fans out across worker processes: plain JSON-able
parameters in, JSON-able results out, and a fresh machine per call so
concurrent runs never share mutable simulator state.  The benchmark
suite declares its Figure 5 / scaling grids in terms of these functions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .config import MachineConfig
from .machine import NetworkMachine
from .pingpong import PingPongHarness

_UNSET = object()


def build_machine(
    dims: Sequence[int] = _UNSET,
    chip_cols: int = _UNSET,
    chip_rows: int = _UNSET,
    seed: int = _UNSET,
    routing: str = _UNSET,
    *,
    config: Optional[MachineConfig] = None,
) -> NetworkMachine:
    """A fresh :class:`NetworkMachine` with its own simulator kernel.

    The supported entry point is ``build_machine(config=...)`` with a
    :class:`~repro.netsim.config.MachineConfig`.  The historical
    per-field arguments (``dims`` defaulting to the 128-node
    ``(4, 4, 8)``, ``chip_cols``, ``chip_rows``, ``seed``, ``routing``)
    still work and are folded into an equivalent config, so both paths
    build byte-identical machines: per-chip RNG streams derive from
    ``seed`` with :func:`repro.engine.seeding.derive_seed` either way.
    """
    legacy = {name: value for name, value in (
        ("dims", dims), ("chip_cols", chip_cols), ("chip_rows", chip_rows),
        ("seed", seed), ("routing", routing)) if value is not _UNSET}
    if config is not None:
        if legacy:
            raise TypeError(
                "pass either config= or the legacy arguments "
                f"({sorted(legacy)}), not both")
        return NetworkMachine(config=config)
    fields = {"dims": (4, 4, 8), "chip_cols": 24, "chip_rows": 12,
              "seed": 0, "routing": "randomized-minimal"}
    fields.update(legacy)
    fields["dims"] = tuple(fields["dims"])
    return NetworkMachine(config=MachineConfig(**fields))


def measure_latency_curve(
    dims: Sequence[int] = (4, 4, 8),
    chip_cols: int = 24,
    chip_rows: int = 12,
    machine_seed: int = 42,
    harness_seed: int = 17,
    max_hops: Optional[int] = None,
    samples_per_hop: int = 15,
) -> dict:
    """One-way latency vs hop count (the Figure 5 series) on a fresh machine.

    Returns mean one-way latency per hop count, per-hop percentile
    summaries (the same p50/p95/p99 aggregation path the load-sweep
    reports use), and the paper's linear fit (which excludes the 0-hop
    point).  JSON-object keys are strings.
    """
    from ..analysis.aggregate import summarize_values
    from ..analysis.fits import fit_latency_vs_hops

    machine = build_machine(config=MachineConfig(
        dims=tuple(dims), chip_cols=chip_cols, chip_rows=chip_rows,
        seed=machine_seed, routing="randomized-minimal"))
    harness = PingPongHarness(machine, seed=harness_seed)
    samples = harness.latency_samples_vs_hops(
        max_hops=max_hops, samples_per_hop=samples_per_hop
    )
    points: Dict[int, float] = {
        hops: sum(values) / len(values) for hops, values in samples.items()
    }
    fit = None
    if len([hops for hops in points if hops > 0]) >= 2:
        line = fit_latency_vs_hops(points)
        fit = {
            "fixed_ns": float(line.fixed_ns),
            "per_hop_ns": float(line.per_hop_ns),
            "r_squared": float(line.r_squared),
        }
    return {
        "num_nodes": machine.torus.dims.num_nodes,
        "samples_per_hop": samples_per_hop,
        "points": {str(hops): mean for hops, mean in sorted(points.items())},
        "percentiles": {
            str(hops): summarize_values(values)
            for hops, values in sorted(samples.items())
        },
        "fit": fit,
    }


def measure_min_one_hop(
    dims: Sequence[int] = (4, 4, 8),
    chip_cols: int = 24,
    chip_rows: int = 12,
    machine_seed: int = 42,
    harness_seed: int = 18,
    samples: int = 30,
) -> dict:
    """Best-placement single-hop latency (the paper's ~55 ns number)."""
    machine = build_machine(config=MachineConfig(
        dims=tuple(dims), chip_cols=chip_cols, chip_rows=chip_rows,
        seed=machine_seed, routing="randomized-minimal"))
    harness = PingPongHarness(machine, seed=harness_seed)
    minimum = harness.minimum_one_hop_latency(samples=samples)
    return {
        "num_nodes": machine.torus.dims.num_nodes,
        "samples": samples,
        "min_one_hop_ns": float(minimum),
    }
