"""Pure-function experiment surfaces over the flit-level simulator.

These are the picklable entry points the parallel runner
(:mod:`repro.runner`) fans out across worker processes: plain JSON-able
parameters in, JSON-able results out, and a fresh machine per call so
concurrent runs never share mutable simulator state.  The benchmark
suite declares its Figure 5 / scaling grids in terms of these functions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .machine import NetworkMachine
from .pingpong import PingPongHarness


def build_machine(
    dims: Sequence[int] = (4, 4, 8),
    chip_cols: int = 24,
    chip_rows: int = 12,
    seed: int = 0,
    routing: str = "randomized-minimal",
) -> NetworkMachine:
    """A fresh :class:`NetworkMachine` with its own simulator kernel.

    ``seed`` is the machine's root seed; per-chip RNG streams are
    derived from it with :func:`repro.engine.seeding.derive_seed`, so
    identical parameters rebuild an identical machine in any process.
    ``routing`` names a registered policy (:mod:`repro.routing`); the
    default is the paper's randomized minimal dimension-order scheme.
    """
    return NetworkMachine(
        dims=tuple(dims),
        chip_cols=chip_cols,
        chip_rows=chip_rows,
        seed=seed,
        routing=routing,
    )


def measure_latency_curve(
    dims: Sequence[int] = (4, 4, 8),
    chip_cols: int = 24,
    chip_rows: int = 12,
    machine_seed: int = 42,
    harness_seed: int = 17,
    max_hops: Optional[int] = None,
    samples_per_hop: int = 15,
) -> dict:
    """One-way latency vs hop count (the Figure 5 series) on a fresh machine.

    Returns mean one-way latency per hop count, per-hop percentile
    summaries (the same p50/p95/p99 aggregation path the load-sweep
    reports use), and the paper's linear fit (which excludes the 0-hop
    point).  JSON-object keys are strings.
    """
    from ..analysis.aggregate import summarize_values
    from ..analysis.fits import fit_latency_vs_hops

    machine = build_machine(dims, chip_cols, chip_rows, machine_seed)
    harness = PingPongHarness(machine, seed=harness_seed)
    samples = harness.latency_samples_vs_hops(
        max_hops=max_hops, samples_per_hop=samples_per_hop
    )
    points: Dict[int, float] = {
        hops: sum(values) / len(values) for hops, values in samples.items()
    }
    fit = None
    if len([hops for hops in points if hops > 0]) >= 2:
        line = fit_latency_vs_hops(points)
        fit = {
            "fixed_ns": float(line.fixed_ns),
            "per_hop_ns": float(line.per_hop_ns),
            "r_squared": float(line.r_squared),
        }
    return {
        "num_nodes": machine.torus.dims.num_nodes,
        "samples_per_hop": samples_per_hop,
        "points": {str(hops): mean for hops, mean in sorted(points.items())},
        "percentiles": {
            str(hops): summarize_values(values)
            for hops, values in sorted(samples.items())
        },
        "fit": fit,
    }


def measure_min_one_hop(
    dims: Sequence[int] = (4, 4, 8),
    chip_cols: int = 24,
    chip_rows: int = 12,
    machine_seed: int = 42,
    harness_seed: int = 18,
    samples: int = 30,
) -> dict:
    """Best-placement single-hop latency (the paper's ~55 ns number)."""
    machine = build_machine(dims, chip_cols, chip_rows, machine_seed)
    harness = PingPongHarness(machine, seed=harness_seed)
    minimum = harness.minimum_one_hop_latency(samples=samples)
    return {
        "num_nodes": machine.torus.dims.num_nodes,
        "samples": samples,
        "min_one_hop_ns": float(minimum),
    }
