"""The unified machine configuration: one frozen object, one entry point.

:class:`MachineConfig` gathers every knob a
:class:`~repro.netsim.machine.NetworkMachine` takes — topology dims,
latency parameters, chip grid, seed, routing policy, delivered-packet
retention, and the fault schedule — into a single frozen dataclass.
``NetworkMachine(config=...)`` and ``build_machine(config=...)`` are the
supported entry points; the historical keyword arguments still work
through a deprecation shim that builds the equivalent config, and a
regression test pins that both paths build byte-identical machines.

Freezing the config keeps it safe to share across harnesses, embed in
experiment parameter dicts (via the fault schedule's ``to_jsonable``),
and compare in tests; it deliberately stores the routing policy *name*
so configs stay picklable for process-pool sweeps (an already-built
:class:`~repro.routing.policy.RoutingPolicy` is still accepted for
tests that need a custom instance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..faults.schedule import FaultSchedule
from ..observe.config import ObserveConfig
from ..routing import DEFAULT_POLICY
from .params import DEFAULT_PARAMS, LatencyParams

__all__ = ["MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to build one simulated machine."""

    dims: Tuple[int, int, int] = (2, 2, 2)
    params: LatencyParams = DEFAULT_PARAMS
    chip_cols: int = 24
    chip_rows: int = 12
    seed: int = 0
    routing: object = DEFAULT_POLICY  # policy name (or a built policy)
    record_delivered: bool = True
    faults: Optional[FaultSchedule] = field(default=None)
    # Observability (repro.observe).  ``None`` means "defer to the
    # ambient context": a machine built inside an observed runner task
    # picks up the process-local ObserveConfig, while direct harness
    # use stays unobserved.  Deliberately NOT part of any experiment's
    # parameter dict, so cache digests never depend on observation.
    observe: Optional[ObserveConfig] = field(default=None)

    def __post_init__(self) -> None:
        if len(tuple(self.dims)) != 3:
            raise ValueError("dims must name a 3D torus")
        object.__setattr__(self, "dims", tuple(self.dims))
        if self.chip_cols < 1 or self.chip_rows < 1:
            raise ValueError("chip grid dimensions must be >= 1")
        if self.faults is not None and not isinstance(self.faults,
                                                      FaultSchedule):
            object.__setattr__(self, "faults",
                               FaultSchedule(tuple(self.faults)))
