"""Chemical systems and the water-box workload generator.

The paper's compression and activity experiments run "synthetic water-only
benchmarks at various atom counts" (Section IV-C).  We model water as
single-site Lennard-Jones particles with SPC oxygen parameters at liquid
water's number density — the network only cares about position-stream
smoothness and interaction counts, which this preserves.

Units: angstroms, femtoseconds, amu.  The internal energy unit is
amu*A^2/fs^2 (1 kJ/mol = 1.0e-4 of these).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Boltzmann constant in amu*A^2/fs^2 per kelvin.
KB = 8.31446e-7

#: kJ/mol expressed in internal energy units.
KJ_PER_MOL = 1.0e-4

#: Liquid water number density (molecules per cubic angstrom).
WATER_NUMBER_DENSITY = 0.0334

#: SPC water oxygen Lennard-Jones parameters.
WATER_EPSILON = 0.650 * KJ_PER_MOL     # well depth
WATER_SIGMA = 3.166                    # angstroms
WATER_MASS = 18.0154                   # amu (whole molecule at the O site)


@dataclass
class ChemicalSystem:
    """A particle system in a cubic periodic box.

    Attributes:
        positions: (N, 3) float positions in angstroms, in [0, box).
        velocities: (N, 3) float velocities in A/fs.
        box: Cubic box edge length in angstroms.
        mass: Per-particle mass (amu); water-box systems are monodisperse.
        epsilon: LJ well depth (internal energy units).
        sigma: LJ diameter (angstroms).
    """

    positions: np.ndarray
    velocities: np.ndarray
    box: float
    mass: float = WATER_MASS
    epsilon: float = WATER_EPSILON
    sigma: float = WATER_SIGMA

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.velocities = np.asarray(self.velocities, dtype=np.float64)
        if self.positions.shape != self.velocities.shape:
            raise ValueError("positions and velocities must align")
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must be (N, 3)")
        if self.box <= 0:
            raise ValueError("box must be positive")

    @property
    def num_atoms(self) -> int:
        return self.positions.shape[0]

    def wrap(self) -> None:
        """Wrap positions into the primary periodic image [0, box)."""
        self.positions %= self.box

    def kinetic_energy(self) -> float:
        return 0.5 * self.mass * float(np.sum(self.velocities ** 2))

    def temperature(self) -> float:
        """Instantaneous kinetic temperature in kelvin."""
        dof = 3 * self.num_atoms - 3
        if dof <= 0:
            return 0.0
        return 2.0 * self.kinetic_energy() / (dof * KB)

    def zero_momentum(self) -> None:
        self.velocities -= self.velocities.mean(axis=0, keepdims=True)


def box_edge_for_atoms(n_atoms: int,
                       density: float = WATER_NUMBER_DENSITY) -> float:
    """Cubic box edge (angstroms) holding ``n_atoms`` at ``density``."""
    if n_atoms < 1:
        raise ValueError("need at least one atom")
    return float((n_atoms / density) ** (1.0 / 3.0))


def water_box(n_atoms: int, temperature: float = 300.0,
              density: float = WATER_NUMBER_DENSITY,
              seed: int = 0) -> ChemicalSystem:
    """Build an equilibrating water box of ``n_atoms`` LJ-water particles.

    Particles start on a jittered simple-cubic lattice (guaranteeing a
    sane minimum separation) with Maxwell-Boltzmann velocities at
    ``temperature`` and zero net momentum.
    """
    rng = np.random.default_rng(seed)
    box = box_edge_for_atoms(n_atoms, density)
    per_side = int(np.ceil(n_atoms ** (1.0 / 3.0)))
    spacing = box / per_side
    sites = []
    for ix in range(per_side):
        for iy in range(per_side):
            for iz in range(per_side):
                sites.append((ix, iy, iz))
                if len(sites) == n_atoms:
                    break
            if len(sites) == n_atoms:
                break
        if len(sites) == n_atoms:
            break
    lattice = (np.array(sites, dtype=np.float64) + 0.5) * spacing
    jitter = rng.uniform(-0.08, 0.08, size=lattice.shape) * spacing
    positions = (lattice + jitter) % box

    sigma_v = np.sqrt(KB * temperature / WATER_MASS)
    velocities = rng.normal(0.0, sigma_v, size=positions.shape)
    system = ChemicalSystem(positions=positions, velocities=velocities,
                            box=box)
    system.zero_momentum()
    return system
