"""Sequential MD driver producing the trajectories the network models eat.

:class:`MdEngine` couples a water-box system, the LJ force field, and the
velocity Verlet integrator, and emits per-step snapshots containing the
fixed-point positions and forces — exactly the word streams that cross
Anton 3's channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from .fixedpoint import FixedPointCodec, ForceCodec
from .forces import ForceField
from .integrator import StepRecord, VelocityVerlet
from .system import ChemicalSystem, water_box


@dataclass
class Snapshot:
    """One time step's network-visible state."""

    step: int
    positions_fp: np.ndarray    # (N, 3) int32 fixed-point positions
    forces_fp: np.ndarray       # (N, 3) int32 fixed-point forces
    positions: np.ndarray       # (N, 3) float angstroms
    record: StepRecord


@dataclass
class MdConfig:
    """Tunable parameters of the workload generator."""

    cutoff: float = 8.5             # angstroms (typical production cutoff)
    dt_fs: float = 2.5
    temperature: float = 300.0
    warmup_steps: int = 25          # settle the lattice before measuring
    position_codec: FixedPointCodec = field(default_factory=FixedPointCodec)
    force_codec: ForceCodec = field(default_factory=ForceCodec)


class MdEngine:
    """Runs MD on a chemical system and yields fixed-point snapshots."""

    def __init__(self, system: ChemicalSystem,
                 config: Optional[MdConfig] = None) -> None:
        self.config = config or MdConfig()
        self.system = system
        cutoff = min(self.config.cutoff, system.box / 2.000001)
        self.field = ForceField(epsilon=system.epsilon, sigma=system.sigma,
                                cutoff=cutoff)
        self.integrator = VelocityVerlet(
            system, self.field, dt_fs=self.config.dt_fs,
            thermostat_temperature=self.config.temperature)
        self._warmed_up = False

    @classmethod
    def water(cls, n_atoms: int, config: Optional[MdConfig] = None,
              seed: int = 0) -> "MdEngine":
        config = config or MdConfig()
        system = water_box(n_atoms, temperature=config.temperature,
                           seed=seed)
        return cls(system, config)

    def warmup(self) -> None:
        """Run the configured settling steps once (idempotent)."""
        if not self._warmed_up:
            self.integrator.run(self.config.warmup_steps)
            self._warmed_up = True

    def snapshot(self, record: StepRecord) -> Snapshot:
        positions = self.system.positions
        forces = self.integrator.last_forces.forces
        return Snapshot(
            step=record.step,
            positions_fp=self.config.position_codec.encode(positions),
            forces_fp=self.config.force_codec.encode(forces),
            positions=positions.copy(),
            record=record)

    def steps(self, n_steps: int) -> Iterator[Snapshot]:
        """Warm up, then yield ``n_steps`` measured snapshots."""
        self.warmup()
        for __ in range(n_steps):
            record = self.integrator.step()
            yield self.snapshot(record)

    def run(self, n_steps: int) -> List[Snapshot]:
        return list(self.steps(n_steps))
