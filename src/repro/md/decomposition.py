"""Spatial decomposition onto the node torus — Section II-A/II-C.

The chemical system is partitioned into boxes; each box is assigned to a
Home Node that updates its atoms.  Because range-limited interactions need
positions from atoms within the cutoff of a node's box, every atom near a
box face must be *exported* to the neighboring nodes whose expanded boxes
contain it.  Anton 3 guarantees each pair is computed on a node holding at
least one of the two atoms; exports go to all nodes within the interaction
radius (in-network multicast, footnote 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from ..topology.torus import Torus3D

Coord = Tuple[int, int, int]
DirectedChannel = Tuple[Coord, Coord]  # (from_node, to_node), adjacent


@dataclass(frozen=True)
class Decomposition:
    """A cubic box split into a 3D grid of node home boxes.

    Attributes:
        box: Simulation box edge (angstroms).
        node_dims: Torus dimensions, e.g. (2, 2, 2) for 8 nodes.
    """

    box: float
    node_dims: Coord

    def __post_init__(self) -> None:
        if self.box <= 0:
            raise ValueError("box must be positive")
        if any(d < 1 for d in self.node_dims):
            raise ValueError("node dims must be >= 1")

    @property
    def torus(self) -> Torus3D:
        return Torus3D(self.node_dims)

    @property
    def num_nodes(self) -> int:
        x, y, z = self.node_dims
        return x * y * z

    def box_edges(self) -> np.ndarray:
        """Home-box edge lengths per axis."""
        return self.box / np.array(self.node_dims, dtype=np.float64)

    def home_nodes(self, positions: np.ndarray) -> np.ndarray:
        """(N,) flat node id of each atom's home node."""
        positions = np.asarray(positions, dtype=np.float64) % self.box
        edges = self.box_edges()
        grid = np.floor(positions / edges).astype(np.int64)
        dims = np.array(self.node_dims)
        grid = np.minimum(grid, dims - 1)
        return (grid[:, 0] * dims[1] + grid[:, 1]) * dims[2] + grid[:, 2]

    def node_coord(self, node_id: int) -> Coord:
        return self.torus.coord_of(node_id)

    def export_mask(self, positions: np.ndarray, node: Coord,
                    cutoff: float) -> np.ndarray:
        """Atoms whose positions fall inside ``node``'s import region.

        The import region is the node's home box expanded by the cutoff on
        every face (periodic).  Atoms homed on the node itself are
        excluded — they do not cross any channel.
        """
        positions = np.asarray(positions, dtype=np.float64) % self.box
        edges = self.box_edges()
        lo = np.array(node) * edges
        hi = lo + edges
        inside = np.ones(len(positions), dtype=bool)
        for axis in range(3):
            x = positions[:, axis]
            a = lo[axis] - cutoff
            b = hi[axis] + cutoff
            if b - a >= self.box:
                continue  # the import region spans the whole axis
            aw = a % self.box
            bw = b % self.box
            if aw <= bw:
                inside &= (x >= aw) & (x <= bw)
            else:  # interval wraps around the periodic boundary
                inside &= (x >= aw) | (x <= bw)
        home = self.home_nodes(positions)
        node_id = self.torus.node_id(node)
        return inside & (home != node_id)

    def export_map(self, positions: np.ndarray,
                   cutoff: float) -> Dict[int, np.ndarray]:
        """For each node id, the atom indices it must import remotely."""
        out: Dict[int, np.ndarray] = {}
        for node in self.torus.nodes():
            mask = self.export_mask(positions, node, cutoff)
            out[self.torus.node_id(node)] = np.nonzero(mask)[0]
        return out


def multicast_tree(torus: Torus3D, src: Coord,
                   destinations: Sequence[Coord]) -> Set[DirectedChannel]:
    """Channels used to multicast one packet from ``src`` to all
    ``destinations`` (dimension-order paths; shared prefixes charged once,
    modeling the in-network multicast of footnote 3)."""
    channels: Set[DirectedChannel] = set()
    for dst in destinations:
        route = torus.dimension_order_route(src, dst, (0, 1, 2))
        for a, b in zip(route, route[1:]):
            channels.add((a, b))
    return channels


def unicast_path(torus: Torus3D, src: Coord,
                 dst: Coord) -> List[DirectedChannel]:
    """Channels on one dimension-order route (force returns)."""
    route = torus.dimension_order_route(src, dst, (0, 1, 2))
    return list(zip(route, route[1:]))
