"""MD substrate: the workload that drives the Anton 3 network models."""

from .cells import CellGrid, neighbor_pairs
from .decomposition import Decomposition, multicast_tree, unicast_path
from .engine import MdConfig, MdEngine, Snapshot
from .fixedpoint import FixedPointCodec, ForceCodec
from .forces import ForceField, ForceResult, compute_forces
from .integrator import StepRecord, VelocityVerlet
from .system import (
    KB,
    KJ_PER_MOL,
    WATER_NUMBER_DENSITY,
    ChemicalSystem,
    box_edge_for_atoms,
    water_box,
)

__all__ = [
    "CellGrid",
    "neighbor_pairs",
    "Decomposition",
    "multicast_tree",
    "unicast_path",
    "MdConfig",
    "MdEngine",
    "Snapshot",
    "FixedPointCodec",
    "ForceCodec",
    "ForceField",
    "ForceResult",
    "compute_forces",
    "StepRecord",
    "VelocityVerlet",
    "KB",
    "KJ_PER_MOL",
    "WATER_NUMBER_DENSITY",
    "ChemicalSystem",
    "box_edge_for_atoms",
    "water_box",
]
