"""Range-limited pairwise forces (Lennard-Jones with a shifted cutoff).

This is the computation the PPIMs accelerate on Anton 3 (Section II-B):
for every atom pair within the cutoff radius, evaluate the pair force and
accumulate it on both atoms.  The potential is cut-and-shifted so energy
is continuous at the cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .cells import neighbor_pairs


@dataclass
class ForceField:
    """Lennard-Jones force field with a hard cutoff.

    Attributes:
        epsilon: Well depth (internal energy units).
        sigma: Zero-crossing distance (angstroms).
        cutoff: Interaction cutoff radius (angstroms).
        min_distance: Pair distances are clamped here to keep forces
            finite for pathological (overlapping) initial conditions.
    """

    epsilon: float
    sigma: float
    cutoff: float
    min_distance: float = 0.5

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        sr6 = (self.sigma / self.cutoff) ** 6
        self._shift = 4.0 * self.epsilon * (sr6 * sr6 - sr6)

    def pair_terms(self, r2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(force/r, pair energy) for squared distances ``r2``."""
        r2 = np.maximum(r2, self.min_distance ** 2)
        inv_r2 = 1.0 / r2
        sr2 = (self.sigma ** 2) * inv_r2
        sr6 = sr2 ** 3
        sr12 = sr6 ** 2
        f_over_r = 24.0 * self.epsilon * (2.0 * sr12 - sr6) * inv_r2
        energy = 4.0 * self.epsilon * (sr12 - sr6) - self._shift
        return f_over_r, energy


@dataclass
class ForceResult:
    """Forces plus bookkeeping the network model consumes."""

    forces: np.ndarray          # (N, 3)
    potential: float
    num_pairs: int              # range-limited interactions this step


def compute_forces(positions: np.ndarray, box: float,
                   field: ForceField,
                   pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                   ) -> ForceResult:
    """Evaluate LJ forces on all atoms (cell-list accelerated).

    Args:
        positions: (N, 3) atom positions in [0, box).
        box: Cubic box edge.
        field: Force-field parameters.
        pairs: Optional precomputed neighbor pairs (ii, jj).
    """
    positions = np.asarray(positions, dtype=np.float64)
    n_atoms = positions.shape[0]
    if pairs is None:
        pairs = neighbor_pairs(positions, box, field.cutoff)
    ii, jj = pairs
    forces = np.zeros_like(positions)
    if len(ii) == 0:
        return ForceResult(forces=forces, potential=0.0, num_pairs=0)

    delta = positions[ii] - positions[jj]
    delta -= box * np.rint(delta / box)
    r2 = np.einsum("ij,ij->i", delta, delta)
    # Re-filter to the true cutoff (pairs may come from a skinned list).
    keep = r2 <= field.cutoff * field.cutoff
    if not np.all(keep):
        ii, jj, delta, r2 = ii[keep], jj[keep], delta[keep], r2[keep]
        if len(ii) == 0:
            return ForceResult(forces=forces, potential=0.0, num_pairs=0)
    f_over_r, energy = field.pair_terms(r2)
    pair_forces = delta * f_over_r[:, None]
    np.add.at(forces, ii, pair_forces)
    np.add.at(forces, jj, -pair_forces)
    return ForceResult(forces=forces, potential=float(np.sum(energy)),
                       num_pairs=int(len(ii)))
