"""Velocity Verlet integration with an optional velocity-rescale thermostat.

Each MD time step (Section II-A): compute forces, update velocities and
positions by the classical equations of motion, repeat for billions of
steps.  The default 2.5 fs step matches typical production MD and yields
the per-step atom displacements (a few fixed-point hundred counts) that
the particle cache exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .cells import NeighborList
from .forces import ForceField, ForceResult, compute_forces
from .system import ChemicalSystem, KB


@dataclass
class StepRecord:
    """Summary of one completed MD step."""

    step: int
    potential: float
    kinetic: float
    temperature: float
    num_pairs: int

    @property
    def total_energy(self) -> float:
        return self.potential + self.kinetic


class VelocityVerlet:
    """Velocity Verlet integrator bound to a system and force field."""

    def __init__(self, system: ChemicalSystem, force_field: ForceField,
                 dt_fs: float = 2.5,
                 thermostat_temperature: Optional[float] = None,
                 thermostat_strength: float = 0.02,
                 neighbor_skin: float = 1.0) -> None:
        if dt_fs <= 0:
            raise ValueError("time step must be positive")
        self.system = system
        self.field = force_field
        self.dt = dt_fs
        self.thermostat_temperature = thermostat_temperature
        self.thermostat_strength = thermostat_strength
        self.step_count = 0
        self.neighbors = NeighborList(system.box, force_field.cutoff,
                                      skin=neighbor_skin)
        self._last: ForceResult = self._forces()

    def _forces(self) -> ForceResult:
        pairs = self.neighbors.pairs(self.system.positions)
        return compute_forces(self.system.positions, self.system.box,
                              self.field, pairs=pairs)

    @property
    def last_forces(self) -> ForceResult:
        return self._last

    def step(self) -> StepRecord:
        """Advance the system one time step; returns a summary record."""
        system = self.system
        dt = self.dt
        inv_mass = 1.0 / system.mass

        accel = self._last.forces * inv_mass
        system.velocities += 0.5 * dt * accel
        system.positions += dt * system.velocities
        system.wrap()

        self._last = self._forces()
        system.velocities += 0.5 * dt * self._last.forces * inv_mass

        if self.thermostat_temperature is not None:
            self._apply_thermostat()

        self.step_count += 1
        return StepRecord(step=self.step_count,
                          potential=self._last.potential,
                          kinetic=system.kinetic_energy(),
                          temperature=system.temperature(),
                          num_pairs=self._last.num_pairs)

    def run(self, n_steps: int) -> List[StepRecord]:
        return [self.step() for __ in range(n_steps)]

    def _apply_thermostat(self) -> None:
        """Weak Berendsen-style velocity rescale toward the target."""
        current = self.system.temperature()
        if current <= 0:
            return
        target = self.thermostat_temperature
        factor = np.sqrt(1.0 + self.thermostat_strength
                         * (target / current - 1.0))
        self.system.velocities *= factor
