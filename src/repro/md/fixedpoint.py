"""Fixed-point coordinate and force codecs.

Anton 3 represents atom positions as 32-bit fixed-point integers (the
quantities the particle cache predicts and the INZ encoder compresses).
The codec here maps simulation-space floats (angstroms) to wrapped signed
32-bit words and back.

The resolution default (2^-13 A ~ 1.2e-4 A) is chosen so that a typical
solvated-system box (tens of angstroms per node) spans ~20 bits, per-step
atom motion spans ~6-8 bits, and quadratic-extrapolation residuals fit in
a byte — the operating point the particle cache was designed for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_I32_MIN = -(2**31)
_I32_MAX = 2**31 - 1
_WRAP = 2**32


@dataclass(frozen=True)
class FixedPointCodec:
    """Converts float coordinates (angstroms) to signed 32-bit words.

    Attributes:
        resolution: Length of one fixed-point unit, in angstroms.
    """

    resolution: float = 2.0**-13

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Quantize to fixed point, wrapping into int32 like the hardware."""
        scaled = np.rint(np.asarray(values, dtype=np.float64)
                         / self.resolution).astype(np.int64)
        wrapped = (scaled + 2**31) % _WRAP - 2**31
        return wrapped.astype(np.int32)

    def decode(self, words: np.ndarray) -> np.ndarray:
        """Fixed point back to angstroms (exact for in-range values)."""
        return np.asarray(words, dtype=np.float64) * self.resolution

    def encode_scalar(self, value: float) -> int:
        return int(self.encode(np.array([value]))[0])

    def max_representable(self) -> float:
        """Largest coordinate magnitude before 32-bit wraparound."""
        return _I32_MAX * self.resolution


@dataclass(frozen=True)
class ForceCodec:
    """Converts force components to signed 32-bit fixed point.

    Force payloads returned over the network are the other large INZ
    consumer (Section IV-A mentions "forces, charges, etc.").  The default
    scale puts typical thermal Lennard-Jones force components in the
    12-16 bit range.
    """

    resolution: float = 2.0**-18  # force units per count

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("resolution must be positive")

    def encode(self, values: np.ndarray) -> np.ndarray:
        scaled = np.rint(np.asarray(values, dtype=np.float64)
                         / self.resolution).astype(np.int64)
        clipped = np.clip(scaled, _I32_MIN, _I32_MAX)
        return clipped.astype(np.int32)

    def decode(self, words: np.ndarray) -> np.ndarray:
        return np.asarray(words, dtype=np.float64) * self.resolution
