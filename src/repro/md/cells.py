"""Cell-list neighbor finding for range-limited pairwise interactions.

The range-limited pairwise computation (Section II-A) only involves atom
pairs within a cutoff radius.  The standard cell-list algorithm bins atoms
into cells of edge >= cutoff and enumerates candidate pairs from each cell
and its 13 forward neighbor cells (half stencil, periodic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Half stencil: the 13 forward neighbor offsets plus handling of the
#: self cell inside :func:`neighbor_pairs`.
_HALF_STENCIL = [
    (1, 0, 0), (0, 1, 0), (0, 0, 1),
    (1, 1, 0), (1, -1, 0), (1, 0, 1), (1, 0, -1),
    (0, 1, 1), (0, 1, -1),
    (1, 1, 1), (1, 1, -1), (1, -1, 1), (1, -1, -1),
]


@dataclass(frozen=True)
class CellGrid:
    """Geometry of the cell decomposition of a cubic box."""

    box: float
    cutoff: float
    cells_per_side: int

    @classmethod
    def for_box(cls, box: float, cutoff: float) -> "CellGrid":
        if cutoff <= 0 or box <= 0:
            raise ValueError("box and cutoff must be positive")
        if cutoff > box / 2:
            raise ValueError("cutoff must not exceed half the box")
        cells = max(1, int(np.floor(box / cutoff)))
        return cls(box=box, cutoff=cutoff, cells_per_side=cells)

    @property
    def cell_edge(self) -> float:
        return self.box / self.cells_per_side

    @property
    def num_cells(self) -> int:
        return self.cells_per_side ** 3

    def cell_index(self, positions: np.ndarray) -> np.ndarray:
        """Flat cell index for each position."""
        n = self.cells_per_side
        coords = np.floor(positions / self.cell_edge).astype(np.int64) % n
        return (coords[:, 0] * n + coords[:, 1]) * n + coords[:, 2]


def neighbor_pairs(positions: np.ndarray, box: float,
                   cutoff: float) -> Tuple[np.ndarray, np.ndarray]:
    """All atom pairs (i, j), i < j-ish unique, within ``cutoff``.

    Returns two index arrays of equal length.  Uses minimum-image periodic
    distances.  Falls back to the O(N^2) method for boxes smaller than
    three cells per side (where the half stencil would double count).
    """
    positions = np.asarray(positions, dtype=np.float64) % box
    n_atoms = positions.shape[0]
    grid = CellGrid.for_box(box, cutoff)
    if grid.cells_per_side < 3 or n_atoms < 64:
        return _brute_force_pairs(positions, box, cutoff)

    n = grid.cells_per_side
    flat = grid.cell_index(positions)
    order = np.argsort(flat, kind="stable")
    sorted_cells = flat[order]
    starts = np.searchsorted(sorted_cells, np.arange(n ** 3), side="left")
    ends = np.searchsorted(sorted_cells, np.arange(n ** 3), side="right")

    members = [order[starts[c]:ends[c]] for c in range(n ** 3)]

    pair_i = []
    pair_j = []

    # Self-cell pairs.
    for c in range(n ** 3):
        atoms = members[c]
        if len(atoms) > 1:
            ii, jj = np.triu_indices(len(atoms), k=1)
            pair_i.append(atoms[ii])
            pair_j.append(atoms[jj])

    # Forward-stencil cross-cell pairs.
    cz = np.arange(n ** 3) % n
    cy = (np.arange(n ** 3) // n) % n
    cx = np.arange(n ** 3) // (n * n)
    for dx, dy, dz in _HALF_STENCIL:
        ox = (cx + dx) % n
        oy = (cy + dy) % n
        oz = (cz + dz) % n
        other = (ox * n + oy) * n + oz
        for c in range(n ** 3):
            a = members[c]
            b = members[other[c]]
            if len(a) and len(b):
                ii = np.repeat(a, len(b))
                jj = np.tile(b, len(a))
                pair_i.append(ii)
                pair_j.append(jj)

    if not pair_i:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    ii = np.concatenate(pair_i)
    jj = np.concatenate(pair_j)
    delta = positions[ii] - positions[jj]
    delta -= box * np.rint(delta / box)
    keep = np.einsum("ij,ij->i", delta, delta) <= cutoff * cutoff
    return ii[keep], jj[keep]


def _brute_force_pairs(positions: np.ndarray, box: float,
                       cutoff: float) -> Tuple[np.ndarray, np.ndarray]:
    n_atoms = positions.shape[0]
    ii, jj = np.triu_indices(n_atoms, k=1)
    delta = positions[ii] - positions[jj]
    delta -= box * np.rint(delta / box)
    keep = np.einsum("ij,ij->i", delta, delta) <= cutoff * cutoff
    return ii[keep], jj[keep]


class NeighborList:
    """A Verlet neighbor list: cell-list pairs with a skin radius.

    Pairs are found within ``cutoff + skin`` and reused until any atom has
    moved more than ``skin / 2`` since the last rebuild, which bounds the
    error at exactly zero (no pair can cross the cutoff undetected).
    """

    def __init__(self, box: float, cutoff: float, skin: float = 1.0) -> None:
        if skin < 0:
            raise ValueError("skin must be non-negative")
        self.box = box
        self.cutoff = cutoff
        self.skin = skin
        self._pairs: Tuple[np.ndarray, np.ndarray] = (
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        self._reference: np.ndarray = np.empty((0, 3))
        self.rebuilds = 0

    def _needs_rebuild(self, positions: np.ndarray) -> bool:
        if self._reference.shape != positions.shape:
            return True
        delta = positions - self._reference
        delta -= self.box * np.rint(delta / self.box)
        max_sq = float(np.max(np.einsum("ij,ij->i", delta, delta)))
        return max_sq > (self.skin / 2.0) ** 2

    def pairs(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate pairs within cutoff+skin (callers re-filter to the
        true cutoff when computing forces)."""
        positions = np.asarray(positions, dtype=np.float64) % self.box
        if self._needs_rebuild(positions):
            reach = min(self.cutoff + self.skin, self.box / 2.000001)
            self._pairs = neighbor_pairs(positions, self.box, reach)
            self._reference = positions.copy()
            self.rebuilds += 1
        return self._pairs
