"""Applies a fault schedule to a built machine.

The injector translates :class:`~repro.faults.schedule.FaultEvent`
records into concrete actions on the machine's channel
:class:`~repro.netsim.fabric.Link` objects (``fail`` / ``restore`` /
``fail_vc``) and mirrors every action into the machine's
:class:`~repro.faults.state.FaultState` so the reroute adviser and the
fence engine see a consistent picture.  Events at ``time_ns <= 0`` are
applied synchronously during machine construction; later events (and
flap restores) become ordinary simulator events, so timed faults
interleave deterministically with traffic.
"""

from __future__ import annotations

from typing import List, Tuple

from ..topology.torus import Coord
from .schedule import FaultEvent, FaultSchedule, cable_links, router_links

__all__ = ["FaultInjector"]

Direction = Tuple[int, int]


class FaultInjector:
    """Owns the lifecycle of one machine's fault schedule."""

    def __init__(self, machine, schedule: FaultSchedule) -> None:
        self.machine = machine
        self.schedule = schedule
        self.applied_events: List[FaultEvent] = []

    def apply(self) -> None:
        """Arm the whole schedule (called once at machine build)."""
        sim = self.machine.sim
        for event in self.schedule:
            if event.time_ns <= 0:
                self._apply_event(event)
            else:
                sim.at(event.time_ns, lambda e=event: self._apply_event(e))
            if event.kind == "flap":
                sim.at(event.restore_ns,
                       lambda e=event: self._restore_event(e))

    # ------------------------------------------------------------------

    def _event_links(self, event: FaultEvent) -> List[Tuple[Coord, Direction]]:
        torus = self.machine.torus
        if event.kind == "dead-router":
            return router_links(torus, event.node)
        return cable_links(torus, event.node, event.axis)

    def _apply_event(self, event: FaultEvent) -> None:
        state = self.machine.fault_state
        if event.kind == "dead-router":
            state.kill_node(self.machine.torus.normalize(event.node))
        for owner, direction in self._event_links(event):
            for slice_index in (0, 1):
                link = self.machine.channel_link(owner, direction,
                                                 slice_index)
                if event.kind == "dead-vc":
                    link.fail_vc(event.vc)
                    state.kill_vc(owner, direction, slice_index, event.vc)
                else:
                    link.fail()
                    state.kill_channel(owner, direction, slice_index)
        self.applied_events.append(event)

    def _restore_event(self, event: FaultEvent) -> None:
        state = self.machine.fault_state
        for owner, direction in self._event_links(event):
            for slice_index in (0, 1):
                link = self.machine.channel_link(owner, direction,
                                                 slice_index)
                link.restore()
                state.revive_channel(owner, direction, slice_index)
