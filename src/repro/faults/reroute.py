"""Fault-aware rerouting: live-shortest-path tables per (slice, target).

When a machine has active faults, every routing decision that would
otherwise follow a fixed minimal dimension order instead consults a
:class:`FaultAdviser`: a reverse-BFS distance table over the *live*
directed channel graph of the packet's slice.  At each hop the packet
takes any live direction that strictly decreases live-graph distance to
its phase target — strictly decreasing distance makes the walk loop-free
by construction, which a "detour only at the broken hop" patch is not
(two nodes straddling a dead ring link can ping-pong forever).

Which of the several distance-decreasing directions is taken stays a
*policy* decision via :meth:`~repro.routing.policy.RoutingPolicy.
reroute_choice`: deterministic policies (fixed-xyz) keep a deterministic
first choice and randomized/adaptive policies spread over the options
using the caller's rng — so degraded-mode sweeps still contrast the
policies' load balance, not just their reachability.

Tables are cached per (slice, target) and invalidated whenever the
:class:`~repro.faults.state.FaultState` epoch moves (a flap restoring a
cable, a timed fault firing).  Deadlock-freedom caveat: reroutes may
cross ring datelines on dateline-disciplined VCs and responses may leave
their mesh restriction; the simulator's finite runs tolerate this, and
the fault experiments measure throughput degradation, not a hardware VC
proof — documented in docs/architecture.md.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..topology.torus import Coord, DIRECTIONS

__all__ = ["FaultAdviser"]

Direction = Tuple[int, int]


class FaultAdviser:
    """Live-graph routing oracle for one faulted machine."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.torus = machine.torus
        self.state = machine.fault_state
        self._tables: Dict[Tuple[int, Coord], Dict[Coord, int]] = {}
        self._tables_epoch = -1

    # -- liveness ---------------------------------------------------------

    def is_dead(self, coord: Coord, direction: Direction,
                slice_index: int) -> bool:
        """Whether one directed channel link is currently unusable."""
        if self.state.is_channel_dead(coord, direction, slice_index):
            return True
        return self.state.is_node_dead(
            self.torus.neighbor(coord, *direction))

    # -- distance tables --------------------------------------------------

    def live_distances(self, slice_index: int,
                       target: Coord) -> Dict[Coord, int]:
        """Hop distances to ``target`` over live links of one slice.

        Nodes absent from the table cannot reach ``target`` at all on
        this slice — the partition signal the fence engine's domain
        check and :meth:`route_direction` both act on.
        """
        if self._tables_epoch != self.state.epoch:
            self._tables.clear()
            self._tables_epoch = self.state.epoch
        key = (slice_index, self.torus.normalize(target))
        table = self._tables.get(key)
        if table is None:
            table = self._build_table(slice_index, key[1])
            self._tables[key] = table
        return table

    def _build_table(self, slice_index: int,
                     target: Coord) -> Dict[Coord, int]:
        dist: Dict[Coord, int] = {target: 0}
        frontier = deque((target,))
        while frontier:
            v = frontier.popleft()
            for axis, sign in DIRECTIONS:
                # u's outgoing (axis, sign) link lands on v.
                u = self.torus.neighbor(v, axis, -sign)
                if u in dist or self.state.is_node_dead(u):
                    continue
                if self.is_dead(u, (axis, sign), slice_index):
                    continue
                dist[u] = dist[v] + 1
                frontier.append(u)
        return dist

    # -- per-hop decisions -------------------------------------------------

    def route_options(self, coord: Coord, target: Coord,
                      slice_index: int) -> List[Direction]:
        """Live directions from ``coord`` that move strictly closer.

        Raises :class:`~repro.netsim.fabric.FabricError` when the faults
        have cut ``coord`` off from ``target`` on this slice.
        """
        coord = self.torus.normalize(coord)
        target = self.torus.normalize(target)
        dist = self.live_distances(slice_index, target)
        here = dist.get(coord)
        if here is None:
            # Imported lazily: netsim.machine imports this package, so a
            # module-level netsim import here would be a cycle.
            from ..netsim.fabric import FabricError

            raise FabricError(
                f"faults partition the fabric: {coord} cannot reach "
                f"{target} on slice {slice_index}")
        options = []
        for axis, sign in DIRECTIONS:
            if self.is_dead(coord, (axis, sign), slice_index):
                continue
            neighbor = self.torus.neighbor(coord, axis, sign)
            if dist.get(neighbor) == here - 1:
                options.append((axis, sign))
        return options

    def route_direction(self, packet, coord: Coord, target: Coord,
                        rng: Optional[random.Random] = None,
                        ) -> Optional[Direction]:
        """The packet's next hop toward ``target`` on the live graph.

        Returns ``None`` on arrival; otherwise one strictly-progressing
        live direction, selected by the machine's routing policy
        (``reroute_choice``) so policy flavor survives degradation.
        """
        coord = self.torus.normalize(coord)
        target = self.torus.normalize(target)
        if coord == target:
            return None
        options = self.route_options(coord, target, packet.slice_index)
        return self.reroute_choice_for(options, rng)

    def reroute_choice_for(self, options: List[Direction],
                           rng: Optional[random.Random]) -> Direction:
        """Delegate the final pick to the machine's routing policy."""
        return self.machine.routing.reroute_choice(options, rng)
