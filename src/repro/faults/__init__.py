"""Fault injection and degraded-mode routing for the torus fabric.

The fault model has four moving parts:

* :mod:`~repro.faults.schedule` — frozen, seed-derived descriptions of
  *which* resources die *when* (dead cables, dead routers, dead VCs,
  transient flaps);
* :mod:`~repro.faults.state` — the machine's live picture of what is
  currently dead, epoch-counted for cache invalidation;
* :mod:`~repro.faults.inject` — turns schedule events into concrete
  ``Link.fail()`` / ``restore()`` actions at the right sim times;
* :mod:`~repro.faults.reroute` — live-shortest-path tables that every
  routing policy consults while faults are active, preserving each
  policy's choice flavor via ``RoutingPolicy.reroute_choice``.

The run surface (``repro.faults.surface``) is imported lazily by the
runner catalog, never from here — it pulls in the whole netsim stack.
"""

from .inject import FaultInjector
from .reroute import FaultAdviser
from .schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    all_cables,
    cable_links,
    random_fault_schedule,
    router_links,
)
from .state import FaultState

__all__ = [
    "FAULT_KINDS",
    "FaultAdviser",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultState",
    "all_cables",
    "cable_links",
    "random_fault_schedule",
    "router_links",
]
