"""Live fault bookkeeping for one machine.

:class:`FaultState` is the single source of truth for which directed
channel links (per slice), nodes, and link VCs are currently dead.  The
injector mutates it as schedule events fire; the reroute adviser reads
it and uses the ``epoch`` counter to invalidate cached routing tables —
every mutation bumps the epoch, so a table built at epoch *N* is stale
the moment anything changes.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ..topology.torus import Coord

__all__ = ["FaultState"]

Direction = Tuple[int, int]
ChannelKey = Tuple[Coord, Direction, int]  # (owner node, direction, slice)


class FaultState:
    """Current dead resources; empty state means a healthy machine."""

    def __init__(self) -> None:
        self.dead_channels: Set[ChannelKey] = set()
        self.dead_nodes: Set[Coord] = set()
        self.dead_vcs: Dict[ChannelKey, Set[int]] = {}
        self.epoch = 0
        # Observability (repro.observe): called with the new epoch after
        # every bump; None on unobserved machines.
        self.epoch_hook = None

    @property
    def active(self) -> bool:
        return bool(self.dead_channels or self.dead_nodes or self.dead_vcs)

    # -- mutation (injector only) ----------------------------------------

    def _bump_epoch(self) -> None:
        self.epoch += 1
        if self.epoch_hook is not None:
            self.epoch_hook(self.epoch)

    def kill_channel(self, node: Coord, direction: Direction,
                     slice_index: int) -> None:
        self.dead_channels.add((node, direction, slice_index))
        self._bump_epoch()

    def revive_channel(self, node: Coord, direction: Direction,
                       slice_index: int) -> None:
        self.dead_channels.discard((node, direction, slice_index))
        self._bump_epoch()

    def kill_node(self, node: Coord) -> None:
        self.dead_nodes.add(node)
        self._bump_epoch()

    def kill_vc(self, node: Coord, direction: Direction, slice_index: int,
                vc: int) -> None:
        self.dead_vcs.setdefault((node, direction, slice_index),
                                 set()).add(vc)
        self._bump_epoch()

    # -- queries ----------------------------------------------------------

    def is_channel_dead(self, node: Coord, direction: Direction,
                        slice_index: int) -> bool:
        return (node, direction, slice_index) in self.dead_channels

    def is_node_dead(self, node: Coord) -> bool:
        return node in self.dead_nodes

    def is_vc_dead(self, node: Coord, direction: Direction,
                   slice_index: int, vc: int) -> bool:
        vcs = self.dead_vcs.get((node, direction, slice_index))
        return vcs is not None and vc in vcs
