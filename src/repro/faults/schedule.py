"""Deterministic fault schedules for the torus fabric.

A :class:`FaultSchedule` is a frozen, JSON-able list of
:class:`FaultEvent` records — *when* a resource dies (and, for flaps,
when it comes back) plus *which* resource: a cable (both directed
channel-link pairs between two neighbors), a whole router (every cable
touching a node), or a single virtual channel on one directed link.

Schedules are plain data: they carry no simulator state and hash/compare
structurally, so they can live inside the frozen
:class:`~repro.netsim.config.MachineConfig` and inside content-addressed
cache digests.  :func:`random_fault_schedule` derives a schedule from a
seed via :func:`~repro.engine.seeding.derive_seed`, the repository's
determinism convention, so ``--jobs 1`` and ``--jobs N`` sweeps build
identical fault sets in every worker process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..engine.seeding import derive_seed
from ..topology.torus import Coord, DIRECTIONS, Torus3D

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "all_cables",
    "cable_links",
    "random_fault_schedule",
    "router_links",
]

Direction = Tuple[int, int]

#: Supported fault kinds.  ``flap`` is a dead cable with a restore time.
FAULT_KINDS = ("dead-link", "dead-router", "dead-vc", "flap")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``node``/``axis`` name a cable for link faults (``dead-link``,
    ``flap``, ``dead-vc``): the physical cable leaving ``node`` in the
    positive direction of ``axis`` (its far end is the neighbor's
    negative-direction endpoint).  ``dead-router`` ignores ``axis`` and
    kills every cable touching ``node``.  ``vc`` selects one link VC for
    ``dead-vc`` faults; ``restore_ns`` turns a ``flap`` back on.
    """

    kind: str
    node: Coord
    axis: int = 0
    time_ns: float = 0.0
    vc: Optional[int] = None
    restore_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.kind == "dead-vc" and self.vc is None:
            raise ValueError("dead-vc faults need a vc")
        if self.kind == "flap" and self.restore_ns is None:
            raise ValueError("flap faults need a restore_ns")
        if self.restore_ns is not None and self.restore_ns <= self.time_ns:
            raise ValueError("restore_ns must be after time_ns")
        object.__setattr__(self, "node", tuple(self.node))

    def to_jsonable(self) -> dict:
        record = {"kind": self.kind, "node": list(self.node),
                  "axis": self.axis, "time_ns": self.time_ns}
        if self.vc is not None:
            record["vc"] = self.vc
        if self.restore_ns is not None:
            record["restore_ns"] = self.restore_ns
        return record

    @classmethod
    def from_jsonable(cls, record: dict) -> "FaultEvent":
        return cls(kind=record["kind"], node=tuple(record["node"]),
                   axis=record.get("axis", 0),
                   time_ns=record.get("time_ns", 0.0),
                   vc=record.get("vc"),
                   restore_ns=record.get("restore_ns"))


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, hashable collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def to_jsonable(self) -> list:
        return [event.to_jsonable() for event in self.events]

    @classmethod
    def from_jsonable(cls, records: Sequence[dict]) -> "FaultSchedule":
        return cls(tuple(FaultEvent.from_jsonable(r) for r in records))


# ---------------------------------------------------------------------------
# Resource naming: cables and the directed links they carry.
# ---------------------------------------------------------------------------


def all_cables(torus: Torus3D) -> List[Tuple[Coord, int]]:
    """Every physical cable, canonically named ``(node, axis)``.

    A cable is the bidirectional connection between a node's
    positive-``axis`` channel endpoint and its neighbor's negative
    endpoint; every cable has exactly one positive endpoint, so the
    enumeration is one entry per (node, axis) — ``3 * num_nodes`` total.
    """
    return [(coord, axis) for coord in torus.nodes() for axis in (0, 1, 2)]


def cable_links(torus: Torus3D, node: Coord,
                axis: int) -> List[Tuple[Coord, Direction]]:
    """The directed channel links one cable carries (both directions).

    Each entry is ``(owner_node, direction)``: the owner's outgoing
    channel toward the other end.  Slice fan-out (both SERDES slices
    ride one cable) is applied by the injector.
    """
    node = torus.normalize(node)
    far = torus.neighbor(node, axis, 1)
    links = [(node, (axis, 1))]
    reverse = (far, (axis, -1))
    if reverse != links[0]:  # dims of 1 make the cable a self-loop
        links.append(reverse)
    return links


def router_links(torus: Torus3D,
                 node: Coord) -> List[Tuple[Coord, Direction]]:
    """Every directed channel link touching ``node`` (a dead router).

    Both the node's own outgoing links and its neighbors' links back
    toward it, so a dead router neither emits nor absorbs flits.
    """
    node = torus.normalize(node)
    links: List[Tuple[Coord, Direction]] = []
    seen: Set[Tuple[Coord, Direction]] = set()
    for axis, sign in DIRECTIONS:
        for link in ((node, (axis, sign)),
                     (torus.neighbor(node, axis, sign), (axis, -sign))):
            if link not in seen:
                seen.add(link)
                links.append(link)
    return links


# ---------------------------------------------------------------------------
# Derived random schedules.
# ---------------------------------------------------------------------------


def _live_graph_connected(torus: Torus3D,
                          dead_cables: Set[Tuple[Coord, int]],
                          dead_nodes: Set[Coord]) -> bool:
    """True when every live node can reach every other over live cables."""
    live_nodes = [n for n in torus.nodes() if n not in dead_nodes]
    if not live_nodes:
        return False
    dead_links = {
        link for cable in dead_cables for link in cable_links(torus, *cable)}
    frontier = [live_nodes[0]]
    reached = {live_nodes[0]}
    while frontier:
        coord = frontier.pop()
        for axis, sign in DIRECTIONS:
            if (coord, (axis, sign)) in dead_links:
                continue
            neighbor = torus.neighbor(coord, axis, sign)
            if neighbor in dead_nodes or neighbor in reached:
                continue
            reached.add(neighbor)
            frontier.append(neighbor)
    return len(reached) == len(live_nodes)


def random_fault_schedule(dims: Sequence[int], num_faults: int,
                          seed: int = 0, kind: str = "dead-link",
                          time_ns: float = 0.0,
                          restore_ns: Optional[float] = None,
                          require_connected: bool = True,
                          max_tries: int = 256) -> FaultSchedule:
    """``num_faults`` distinct random faults on a ``dims`` torus.

    The draw stream derives from ``(seed, "faults", kind, num_faults)``
    so the same parameters name the same fault set in every process.
    With ``require_connected`` (the default) candidate sets that
    disconnect the live fabric are redrawn — degraded-mode experiments
    measure routing around faults, which needs every pair reachable;
    pass ``False`` to study partitions (e.g. the fence domain tests).
    """
    if kind not in ("dead-link", "dead-router", "flap"):
        raise ValueError(f"random schedules support link/router/flap "
                         f"faults, not {kind!r}")
    if kind == "flap" and restore_ns is None:
        raise ValueError("flap schedules need a restore_ns")
    torus = Torus3D(dims)
    if num_faults <= 0:
        return FaultSchedule(())
    rng = random.Random(derive_seed(seed, "faults", kind, num_faults))
    if kind == "dead-router":
        population: List = list(torus.nodes())
    else:
        population = all_cables(torus)
    if num_faults > len(population):
        raise ValueError(f"{num_faults} faults exceed the {len(population)} "
                         f"available resources on a {tuple(dims)} torus")
    for __ in range(max_tries):
        picks = rng.sample(population, num_faults)
        if require_connected:
            if kind == "dead-router":
                ok = _live_graph_connected(torus, set(), set(picks))
            else:
                ok = _live_graph_connected(torus, set(picks), set())
            if not ok:
                continue
        events = []
        for pick in sorted(picks):
            if kind == "dead-router":
                events.append(FaultEvent(kind=kind, node=pick,
                                         time_ns=time_ns))
            else:
                node, axis = pick
                events.append(FaultEvent(kind=kind, node=node, axis=axis,
                                         time_ns=time_ns,
                                         restore_ns=restore_ns))
        return FaultSchedule(tuple(events))
    raise ValueError(
        f"could not draw {num_faults} {kind} faults keeping a {tuple(dims)} "
        f"torus connected within {max_tries} tries")
