"""Pure-function run surfaces for degraded-mode (faulted) experiments.

Picklable entry points for the parallel runner (:mod:`repro.runner`):
plain JSON-able parameters in, JSON-able results out, a fresh machine
per call.  One :func:`measure_fault_load_point` call is one open-loop
accepted-load measurement on a machine degraded by ``num_faults``
seed-derived faults; one :func:`measure_fault_phase_loop` call is one
fence-synchronized phase workload on such a machine.  The
``fault-sweep-<policy>`` / ``fault-phase-loop-<policy>`` sweeps fan the
fault-count axis out per routing policy, which is the graceful-
degradation story: how much throughput each policy keeps as cables die.

Fault sets are connected by construction
(:func:`~repro.faults.schedule.random_fault_schedule` resamples
partitioning draws), so every measurement is of *routing around* faults,
never of unreachable destinations; all faults land at t=0 so closed-loop
bursts and fences see a static degraded fabric.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..netsim.config import MachineConfig
from ..netsim.machine import NetworkMachine
from ..netsim.surface import build_machine
from ..topology.torus import Coord, DIRECTIONS
from .schedule import random_fault_schedule

__all__ = ["live_fence_diameter", "measure_fault_load_point",
           "measure_fault_phase_loop"]


def live_fence_diameter(machine: NetworkMachine) -> int:
    """The directed diameter of the live fence-capable channel graph.

    A fence with this many hops satisfies the engine's domain check on
    any connected faulted fabric (every pair is within the round
    budget); on a healthy machine it equals the torus diameter.
    """
    state = machine.fault_state
    torus = machine.torus
    if not state.active:
        return torus.dims.diameter
    diameter = 0
    for source in torus.nodes():
        dist: Dict[Coord, int] = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier = []
            for coord in frontier:
                for axis, sign in DIRECTIONS:
                    if all(state.is_channel_dead(coord, (axis, sign), s)
                           or state.is_vc_dead(coord, (axis, sign), s, 0)
                           for s in (0, 1)):
                        continue
                    neighbor = torus.neighbor(coord, axis, sign)
                    if neighbor not in dist:
                        dist[neighbor] = dist[coord] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        if len(dist) < torus.dims.num_nodes:
            raise ValueError(f"live fabric is partitioned at {source}")
        diameter = max(diameter, max(dist.values()))
    return diameter


def _faulted_machine(dims: Sequence[int], chip_cols: int, chip_rows: int,
                     machine_seed: int, routing: str, num_faults: int,
                     fault_seed: int, fault_kind: str) -> NetworkMachine:
    faults = random_fault_schedule(tuple(dims), num_faults, seed=fault_seed,
                                   kind=fault_kind)
    return build_machine(config=MachineConfig(
        dims=tuple(dims), chip_cols=chip_cols, chip_rows=chip_rows,
        seed=machine_seed, routing=routing,
        faults=faults if len(faults) else None))


def measure_fault_load_point(
    dims: Sequence[int] = (4, 2, 2),
    chip_cols: int = 6,
    chip_rows: int = 6,
    pattern: str = "uniform",
    routing: str = "randomized-minimal",
    offered_load: float = 0.3,
    num_faults: int = 0,
    fault_seed: int = 0,
    fault_kind: str = "dead-link",
    machine_seed: int = 0,
    traffic_seed: int = 0,
    process: str = "bernoulli",
    warmup_ns: float = 400.0,
    measure_ns: float = 1600.0,
    drain_ns: Optional[float] = None,
    hotspot_fraction: float = 0.5,
) -> dict:
    """One open-loop load point on a degraded machine.

    Identical measurement to
    :func:`repro.traffic.surface.measure_load_point` plus the fault
    axis: ``num_faults`` seed-derived, connectivity-preserving faults of
    ``fault_kind`` applied at t=0.  ``num_faults=0`` is the healthy
    baseline each degradation curve is normalized against.  The record
    adds the applied fault set, so plots can audit which cables died.
    """
    from ..traffic.openloop import OpenLoopHarness
    from ..traffic.patterns import make_pattern

    machine = _faulted_machine(dims, chip_cols, chip_rows, machine_seed,
                               routing, num_faults, fault_seed, fault_kind)
    traffic = make_pattern(pattern, machine.torus,
                           fraction=hotspot_fraction)
    harness = OpenLoopHarness(
        machine, traffic, offered_load, seed=traffic_seed, process=process,
        warmup_ns=warmup_ns, measure_ns=measure_ns, drain_ns=drain_ns)
    record = harness.run().to_dict()
    record["num_faults"] = num_faults
    record["fault_kind"] = fault_kind
    record["faults"] = (machine.config.faults.to_jsonable()
                        if machine.config.faults is not None else [])
    return record


def measure_fault_phase_loop(
    dims: Sequence[int] = (4, 2, 2),
    chip_cols: int = 6,
    chip_rows: int = 6,
    pattern: str = "halo",
    routing: str = "randomized-minimal",
    messages_per_node: int = 8,
    window: int = 4,
    iterations: int = 2,
    fence_hops: Optional[int] = None,
    num_faults: int = 0,
    fault_seed: int = 0,
    machine_seed: int = 0,
    workload_seed: int = 0,
) -> dict:
    """One fence-synchronized phase workload on a degraded machine.

    The degraded-mode iteration-time metric: same MD-timestep shape as
    :func:`repro.workload.surface.measure_phase_loop`, with ``num_faults``
    connected dead-link faults at t=0.  ``fence_hops`` defaults to the
    *live* fence diameter — on a faulted fabric the healthy torus
    diameter can violate the fence engine's round budget, so the global
    barrier widens with the damage (and its cost shows up in the
    metric, as it would on real degraded hardware).
    """
    from ..traffic.patterns import make_pattern
    from ..workload.phases import PhaseLoopHarness, md_timestep_phases

    machine = _faulted_machine(dims, chip_cols, chip_rows, machine_seed,
                               routing, num_faults, fault_seed, "dead-link")
    if fence_hops is None:
        fence_hops = live_fence_diameter(machine)
    spatial = make_pattern(pattern, machine.torus)
    phases = md_timestep_phases(machine,
                                messages_per_node=messages_per_node,
                                window=window, pattern=spatial)
    harness = PhaseLoopHarness(machine, phases, seed=workload_seed,
                               fence_hops=fence_hops)
    record = harness.run(iterations).to_dict()
    record["messages_per_node"] = messages_per_node
    record["window"] = window
    record["num_faults"] = num_faults
    record["faults"] = (machine.config.faults.to_jsonable()
                        if machine.config.faults is not None else [])
    return record
