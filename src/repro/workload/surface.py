"""Pure-function run surfaces for the closed-loop workload subsystem.

Picklable entry points for the parallel runner (:mod:`repro.runner`):
plain JSON-able parameters in, JSON-able results out, a fresh machine
per call.  One :func:`measure_window_point` call is one point of a
throughput-vs-window curve (the ``closed-loop-*`` sweeps fan the window
axis out across workers); one :func:`measure_phase_loop` call is one
fence-synchronized phase-workload configuration (the ``phase-loop-*``
sweeps fan the routing-policy axis out).

Invariant: these functions are pure in ``(params,)`` — fresh machine,
fresh derived RNG streams, no module state — which is what makes their
results content-addressable by config digest and byte-identical across
``--jobs 1`` vs ``--jobs N``.  The ``routing`` parameter accepts every
registered policy name (:data:`repro.routing.POLICY_NAMES`), including
``adaptive-escape``; changing what a value means requires a version
bump on the registered experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..netsim.config import MachineConfig
from ..netsim.surface import build_machine
from ..traffic.patterns import make_pattern
from .phases import PhaseLoopHarness, md_timestep_phases
from .window import FixedWindowHarness


def measure_window_point(
    dims: Sequence[int] = (2, 2, 2),
    chip_cols: int = 6,
    chip_rows: int = 6,
    pattern: str = "uniform",
    routing: str = "randomized-minimal",
    window: int = 4,
    machine_seed: int = 0,
    workload_seed: int = 0,
    read_fraction: float = 0.0,
    think_ns: float = 0.0,
    warmup_ns: float = 400.0,
    measure_ns: float = 1600.0,
    drain_ns: Optional[float] = None,
    hotspot_fraction: float = 0.5,
) -> dict:
    """One fixed-outstanding-window point on a fresh machine.

    Returns the
    :meth:`~repro.workload.window.WindowLoopResult.to_dict` record:
    self-throttled accepted load, completed-transaction latency
    percentiles, and mean outstanding occupancy for ``window`` requests
    in flight per node under the named pattern and routing policy.
    """
    machine = build_machine(config=MachineConfig(
        dims=tuple(dims), chip_cols=chip_cols, chip_rows=chip_rows,
        seed=machine_seed, routing=routing))
    spatial = make_pattern(pattern, machine.torus, fraction=hotspot_fraction)
    harness = FixedWindowHarness(
        machine,
        spatial,
        window,
        seed=workload_seed,
        read_fraction=read_fraction,
        think_ns=think_ns,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        drain_ns=drain_ns,
    )
    return harness.run().to_dict()


def measure_window_sweep(
    windows: Sequence[int],
    knee_fraction: float = 0.95,
    **point_params: object,
) -> dict:
    """A whole throughput-vs-window curve in-process, with knee analysis.

    Convenience for examples and tests that do not go through the
    runner; each window point still builds a fresh machine, so results
    are identical to a runner sweep over the same parameters.
    """
    from ..analysis.closedloop import analyze_window_sweep

    runs = [
        {"result": measure_window_point(window=window, **point_params)}
        for window in sorted(int(window) for window in windows)
    ]
    analysis = analyze_window_sweep(runs, knee_fraction)
    return {
        "points": [run["result"] for run in runs],
        "knee": analysis.to_dict(),
    }


def measure_phase_loop(
    dims: Sequence[int] = (2, 2, 2),
    chip_cols: int = 6,
    chip_rows: int = 6,
    pattern: str = "halo",
    routing: str = "randomized-minimal",
    messages_per_node: int = 12,
    window: int = 4,
    iterations: int = 2,
    fence_hops: Optional[int] = None,
    machine_seed: int = 0,
    workload_seed: int = 0,
    read_fraction: float = 0.0,
    hotspot_fraction: float = 0.5,
) -> dict:
    """One fence-synchronized phase workload on a fresh machine.

    Models the MD timestep shape: an export burst over ``pattern``, a
    machine-wide fence, a return burst over the same pattern, another
    fence — ``iterations`` times.  Returns the
    :meth:`~repro.workload.phases.PhaseLoopResult.to_dict` record:
    per-iteration time, per-phase burst/fence breakdown, and the
    fence-wait fraction.
    """
    machine = build_machine(config=MachineConfig(
        dims=tuple(dims), chip_cols=chip_cols, chip_rows=chip_rows,
        seed=machine_seed, routing=routing))
    spatial = make_pattern(pattern, machine.torus, fraction=hotspot_fraction)
    phases = md_timestep_phases(
        machine,
        messages_per_node=messages_per_node,
        window=window,
        pattern=spatial,
        read_fraction=read_fraction,
    )
    harness = PhaseLoopHarness(
        machine, phases, seed=workload_seed, fence_hops=fence_hops
    )
    result = harness.run(iterations)
    record = result.to_dict()
    record["messages_per_node"] = messages_per_node
    record["window"] = window
    return record
