"""Closed-loop workload subsystem: self-throttling load generation.

Where :mod:`repro.traffic` offers load open-loop (and lets latency
diverge past saturation), this package drives the simulated machine the
way applications do — closed-loop:

* **Fixed-outstanding windows**
  (:class:`~repro.workload.window.FixedWindowHarness`): every node
  keeps ``W`` transactions in flight per traffic class, re-injecting on
  delivery through the machine delivery hooks.  Sweeping ``W`` yields
  accepted-throughput-vs-window and latency-vs-window curves that
  plateau at the fabric's self-throttled operating point
  (:func:`repro.analysis.closedloop.analyze_window_sweep` finds the
  knee).
* **Fence-synchronized phases**
  (:class:`~repro.workload.phases.PhaseLoopHarness`): bulk-synchronous
  iterations modeled on the MD timestep — halo export burst, network
  fence, force-return burst, fence — reusing the traffic pattern
  library for spatial shape and :class:`repro.fence.FenceEngine` for
  the barriers, reporting iteration time and fence-wait fraction.

Both compose with every routing policy and run through the parallel
runner as registered ``closed-loop-<pattern>`` / ``phase-loop-<pattern>``
sweeps (:mod:`repro.runner.experiments`), including the 512-node
adaptive-escape ablations (``scaling-512-closed-loop-adaptive``,
``scaling-512-phase-loop-adaptive``).

Invariants tests rely on (details in the submodule docstrings): writes
complete at destination commit and reads on response return keyed by
``(node, reply quad)`` with reply quads recycled on completion; at most
``window`` transactions in flight per node; all randomness from
``derive_seed`` streams so sweeps are byte-identical across ``--jobs``.

Quick use::

    from repro.netsim import NetworkMachine
    from repro.traffic import make_pattern
    from repro.workload import FixedWindowHarness

    machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6)
    pattern = make_pattern("uniform", machine.torus)
    result = FixedWindowHarness(machine, pattern, window=8).run()
    print(result.accepted_load, result.transaction_latency_ns)
"""

from .phases import (
    PhaseLoopHarness,
    PhaseLoopResult,
    PhaseSpec,
    md_timestep_phases,
)
from .surface import measure_phase_loop, measure_window_point, measure_window_sweep
from .window import ClosedLoopDriver, FixedWindowHarness, WindowLoopResult

__all__ = [
    "ClosedLoopDriver",
    "FixedWindowHarness",
    "WindowLoopResult",
    "PhaseSpec",
    "PhaseLoopHarness",
    "PhaseLoopResult",
    "md_timestep_phases",
    "measure_window_point",
    "measure_window_sweep",
    "measure_phase_loop",
]
