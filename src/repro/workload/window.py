"""Fixed-outstanding-window closed-loop load generation.

Open-loop sweeps (:mod:`repro.traffic.openloop`) characterize a fabric
by *offering* load regardless of backpressure; applications do the
opposite: each node keeps a bounded number of requests in flight and
issues the next one only when an earlier one completes.  That
self-throttling is the standard closed-loop methodology for
application-representative interconnect studies, and it is how the
paper's MD timestep actually drives the Anton 3 network.

:class:`FixedWindowHarness` implements it over a
:class:`~repro.netsim.machine.NetworkMachine`: every sending node keeps
exactly ``W`` transactions outstanding (a counted write completes when
it commits at the destination; a remote read completes when its
response lands back at the requester), re-injecting through the
machine-wide delivery hook the open-loop harness introduced.  Sweeping
``W`` produces accepted-throughput-vs-window and latency-vs-window
curves that plateau at the fabric's self-throttled operating point
instead of diverging past saturation.

The measurement keeps the open-loop warmup / measure / drain
discipline, and accepted throughput uses the same normalization
(request flits delivered in the measure window over per-slice channel
capacity), so closed-loop plateaus are directly comparable to open-loop
saturation throughputs for the same (pattern, routing).

Invariants tests (and the cache-versioned experiments) rely on:

* A write transaction completes at its destination SRAM commit (matched
  by packet ``pid``); a read transaction completes when its response
  lands back at the requester, matched by ``(node, reply quad)``.
* Reply quads are allocated per node and **recycled on completion** —
  the in-flight set per node is bounded by the window, so quad ids
  never grow without bound and re-use cannot collide while a read is
  outstanding.
* Every node holds exactly ``window`` transactions in flight outside
  think time; ``outstanding`` never exceeds it, and the drain phase
  ends with zero in flight (``NetworkMachine.in_flight_counts``).
* All randomness (destination picks, read/write mix, think times)
  draws from ``derive_seed``-derived per-node streams, so runs are
  byte-identical across processes for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.aggregate import summarize_values
from ..engine.seeding import derive_seed
from ..netsim.machine import NetworkMachine
from ..netsim.packet import Packet, PacketKind, TrafficClass
from ..topology.torus import Coord
from ..traffic.patterns import TrafficPattern

__all__ = ["ClosedLoopDriver", "FixedWindowHarness", "WindowLoopResult"]


class ClosedLoopDriver:
    """Per-node transaction bookkeeping shared by the closed-loop harnesses.

    A *transaction* is one request and whatever completes it: a counted
    write completes when it is delivered; a remote read completes when
    its read response arrives back at the requesting node.  The driver
    owns the per-source destination-pick RNG streams (derived with
    :func:`~repro.engine.seeding.derive_seed`, the cross-process
    determinism convention) and the outstanding-transaction counters the
    window discipline throttles on.
    """

    def __init__(self, machine: NetworkMachine, pattern: TrafficPattern,
                 seed: int, read_fraction: float = 0.0,
                 stream: object = "workload") -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.machine = machine
        self.pattern = pattern
        self.read_fraction = read_fraction
        self.sources = [node for node in machine.torus.nodes()
                        if pattern.sends_from(node)]
        if not self.sources:
            raise ValueError(
                f"pattern {pattern.name!r} has no sending nodes on this torus")
        self._picks: Dict[Coord, random.Random] = {
            node: random.Random(derive_seed(
                seed, stream, "picks", machine.torus.node_id(node)))
            for node in self.sources}
        self.outstanding: Dict[Coord, int] = {n: 0 for n in self.sources}
        self.total_outstanding = 0
        self.max_outstanding = 0
        #: pid -> issuing node, for write transactions in flight.
        self._write_owner: Dict[int, Coord] = {}
        #: (node, reply quad) -> issue time, for reads in flight.
        self._read_issue: Dict[tuple, float] = {}
        # Reply quads are allocated per node and recycled on completion,
        # so a long run never outgrows the 8192-quad GC SRAM: at most
        # one quad per outstanding read per node is ever live.  Quad 0
        # is left to the write traffic.
        self._next_quad: Dict[Coord, int] = {n: 1 for n in self.sources}
        self._free_quads: Dict[Coord, list] = {n: [] for n in self.sources}

    def issue(self, node: Coord) -> Packet:
        """Inject one new transaction from ``node``; returns its request."""
        machine = self.machine
        rng = self._picks[node]
        dst = self.pattern.next_destination(node, rng)
        src_core = machine.random_gc_address(rng)
        dst_core = machine.random_gc_address(rng)
        is_read = (self.read_fraction > 0.0
                   and rng.random() < self.read_fraction)
        if is_read:
            kind = PacketKind.READ_REQUEST
            free = self._free_quads[node]
            if free:
                reply_quad = free.pop()
            else:
                reply_quad = self._next_quad[node]
                self._next_quad[node] += 1
            if reply_quad >= 8192:
                raise RuntimeError(
                    "more than 8191 reads outstanding from one node; "
                    "the GC quad SRAM cannot address their replies")
            payload = (reply_quad,)
        else:
            kind = PacketKind.COUNTED_WRITE
            payload = (1, 0, 0, 0)
        plan = machine.plan_request_route(node, dst, rng, src_core=src_core)
        packet = Packet(
            kind=kind,
            traffic_class=TrafficClass.REQUEST,
            src_node=node,
            dst_node=machine.torus.normalize(dst),
            src_core=src_core,
            dst_core=dst_core,
            num_flits=1,
            payload_words=payload,
            dim_order=plan.phases[0].dim_order,
            slice_index=rng.randrange(2),
            quad_addr=0,
            accumulate=self.pattern.accumulate and not is_read)
        packet.route = plan
        machine.inject(packet)
        if is_read:
            self._read_issue[(node, payload[0])] = machine.sim.now
        else:
            self._write_owner[packet.pid] = node
        self.outstanding[node] += 1
        self.total_outstanding += 1
        self.max_outstanding = max(self.max_outstanding,
                                   self.outstanding[node])
        return packet

    def completion(self, packet: Packet) -> Optional[tuple]:
        """The transaction one delivery completes, if any.

        Returns ``(node, issue_time_ns)`` for the transaction this
        delivered packet closes — the write request itself, or the read
        response carrying the transaction's reply quad — and updates the
        outstanding counters.  Returns ``None`` for deliveries that keep
        their transaction open (a read request reaching its target).
        """
        if (packet.traffic_class is TrafficClass.REQUEST
                and packet.kind is PacketKind.COUNTED_WRITE):
            node = self._write_owner.pop(packet.pid, None)
            issued = packet.injected_ns
        elif packet.kind is PacketKind.READ_RESPONSE:
            node = self.machine.torus.normalize(packet.dst_node)
            issued = self._read_issue.pop((node, packet.quad_addr), None)
            if issued is not None:
                self._free_quads[node].append(packet.quad_addr)
            else:
                node = None
        else:
            return None
        if node is None:
            return None
        self.outstanding[node] -= 1
        self.total_outstanding -= 1
        return node, issued


@dataclass
class WindowLoopResult:
    """One window point: self-throttled throughput and latency."""

    pattern: str
    routing: str
    window: int
    seed: int
    read_fraction: float
    think_ns: float
    warmup_ns: float
    measure_ns: float
    drain_ns: float
    num_nodes: int
    num_sources: int
    completed_transactions: int
    accepted_load: float
    mean_outstanding_per_source: float
    in_flight_at_end: int
    transaction_latencies_ns: List[float] = field(default_factory=list)

    @property
    def transaction_latency_ns(self) -> Optional[Dict[str, object]]:
        if not self.transaction_latencies_ns:
            return None
        return summarize_values(self.transaction_latencies_ns)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "pattern": self.pattern,
            "routing": self.routing,
            "window": self.window,
            "seed": self.seed,
            "read_fraction": self.read_fraction,
            "think_ns": self.think_ns,
            "warmup_ns": self.warmup_ns,
            "measure_ns": self.measure_ns,
            "drain_ns": self.drain_ns,
            "num_nodes": self.num_nodes,
            "num_sources": self.num_sources,
            "completed_transactions": self.completed_transactions,
            "accepted_load": self.accepted_load,
            "mean_outstanding_per_source": self.mean_outstanding_per_source,
            "in_flight_at_end": self.in_flight_at_end,
        }
        summary = self.transaction_latency_ns
        if summary is not None:
            record["transactions"] = {"latency_ns": summary}
        return record


class FixedWindowHarness:
    """Runs one fixed-outstanding-window point on a machine.

    Every sending node is primed with ``window`` transactions and issues
    a replacement the moment one completes (optionally after a
    ``think_ns`` software turnaround), so at most ``window`` requests
    per node are ever in flight — the in-flight invariant the tests pin
    through :attr:`ClosedLoopDriver.max_outstanding`.
    """

    def __init__(self, machine: NetworkMachine, pattern: TrafficPattern,
                 window: int, seed: int = 0, read_fraction: float = 0.0,
                 think_ns: float = 0.0, warmup_ns: float = 400.0,
                 measure_ns: float = 1600.0,
                 drain_ns: Optional[float] = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if think_ns < 0:
            raise ValueError("think_ns must be >= 0")
        if warmup_ns < 0 or measure_ns <= 0:
            raise ValueError("warmup must be >= 0 and measure > 0")
        self.machine = machine
        self.pattern = pattern
        self.window = window
        self.seed = seed
        self.read_fraction = read_fraction
        self.think_ns = think_ns
        self.warmup_ns = warmup_ns
        self.measure_ns = measure_ns
        self.drain_ns = (drain_ns if drain_ns is not None
                         else warmup_ns + measure_ns)
        self._inject_end_ns = warmup_ns + measure_ns
        self._driver = ClosedLoopDriver(machine, pattern, seed,
                                        read_fraction=read_fraction)
        self._latencies: List[float] = []
        self._completed_in_window = 0
        self._request_flits_in_window = 0
        # Time-weighted total-outstanding integral over the measure
        # window, for the mean-occupancy report.
        self._occ_integral = 0.0
        self._occ_last = warmup_ns

    def _in_window(self, time_ns: Optional[float]) -> bool:
        return (time_ns is not None
                and self.warmup_ns <= time_ns < self._inject_end_ns)

    def _account_occupancy(self) -> None:
        """Integrate occupancy up to now (clamped to the measure window)."""
        now = min(max(self.machine.sim.now, self.warmup_ns),
                  self._inject_end_ns)
        if now > self._occ_last:
            self._occ_integral += (self._driver.total_outstanding
                                   * (now - self._occ_last))
            self._occ_last = now

    def _issue(self, node: Coord) -> None:
        self._account_occupancy()
        self._driver.issue(node)

    def _on_delivered(self, packet: Packet) -> None:
        if (packet.traffic_class is TrafficClass.REQUEST
                and self._in_window(packet.delivered_ns)):
            self._request_flits_in_window += packet.num_flits
        # Integrate at the pre-completion occupancy level before the
        # driver decrements it.
        self._account_occupancy()
        completed = self._driver.completion(packet)
        if completed is None:
            return
        node, issued_ns = completed
        if self._in_window(issued_ns):
            self._completed_in_window += 1
            self._latencies.append(self.machine.sim.now - issued_ns)
        sim = self.machine.sim
        if sim.now + self.think_ns < self._inject_end_ns:
            if self.think_ns > 0:
                sim.after(self.think_ns, lambda: self._issue(node))
            else:
                self._issue(node)

    def run(self) -> WindowLoopResult:
        machine = self.machine
        sim = machine.sim
        machine.set_record_delivered(False)
        machine.set_delivery_hook(self._on_delivered)
        try:
            for node in self._driver.sources:
                for __ in range(self.window):
                    self._issue(node)
            sim.run(until=self._inject_end_ns + self.drain_ns)
        finally:
            machine.set_delivery_hook(None)
            machine.set_record_delivered(True)

        sources = self._driver.sources
        slice_flits_per_ns = 1.0 / machine.params.flit_serialization_ns
        window_capacity = self.measure_ns * len(sources) * slice_flits_per_ns
        mean_outstanding = (self._occ_integral
                            / (self.measure_ns * len(sources)))
        return WindowLoopResult(
            pattern=self.pattern.name,
            routing=machine.routing.name,
            window=self.window,
            seed=self.seed,
            read_fraction=self.read_fraction,
            think_ns=self.think_ns,
            warmup_ns=self.warmup_ns,
            measure_ns=self.measure_ns,
            drain_ns=self.drain_ns,
            num_nodes=machine.torus.dims.num_nodes,
            num_sources=len(sources),
            completed_transactions=self._completed_in_window,
            accepted_load=self._request_flits_in_window / window_capacity,
            mean_outstanding_per_source=mean_outstanding,
            in_flight_at_end=self._driver.total_outstanding,
            transaction_latencies_ns=self._latencies)
