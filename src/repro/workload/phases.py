"""Fence-synchronized bulk-synchronous phase workloads.

The paper's headline metric is time per MD iteration, and an MD
iteration on Anton 3 is bulk-synchronous: a burst of position/halo
exports, a network fence so every node knows the exports landed, a
burst of force returns, and another fence before integration.
:class:`PhaseLoopHarness` reproduces that shape over a
:class:`~repro.netsim.machine.NetworkMachine`: each
:class:`PhaseSpec` is a closed-loop burst (every node sends a fixed
message count, at most ``window`` in flight, via
:class:`~repro.workload.window.ClosedLoopDriver`) followed by a
machine-wide network fence run by the real
:class:`~repro.fence.engine.FenceEngine`.

The harness reports what closed-loop evaluation is for: iteration time,
the per-phase split between burst transport and fence synchronization,
per-node finish-time spread (load imbalance the fence converts into
wait), and the fence-wait fraction — the share of the iteration a
typical node spends synchronized-but-idle rather than moving payload.

Invariants tests (and the cache-versioned experiments) rely on:

* A phase's fence is issued only after every node's burst completed
  (all transactions delivered, per :class:`ClosedLoopDriver`'s
  completion rules), and the next phase starts only after the fence
  clears — phases never overlap on the wire.
* Fences run on the real :class:`~repro.fence.engine.FenceEngine`
  (no analytic shortcut), so fence time responds to routing policy and
  congestion exactly like Figure 11 does.
* Burst transactions complete under the same write-at-commit /
  read-at-response rules (and reply-quad recycling) as the window
  harness; iteration time is the fence-to-fence wall time, never a sum
  of per-node times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..engine.seeding import derive_seed
from ..fence.engine import FenceEngine
from ..netsim.machine import NetworkMachine
from ..netsim.packet import Packet
from ..topology.torus import Coord
from ..traffic.patterns import TrafficPattern, make_pattern
from .window import ClosedLoopDriver

__all__ = ["PhaseSpec", "PhaseLoopHarness", "PhaseLoopResult",
           "md_timestep_phases"]


@dataclass(frozen=True)
class PhaseSpec:
    """One bulk-synchronous phase: a closed-loop burst, then a fence."""

    name: str
    pattern: TrafficPattern
    messages_per_node: int
    window: int = 4
    read_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.messages_per_node < 1:
            raise ValueError("messages_per_node must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")


def md_timestep_phases(machine: NetworkMachine,
                       messages_per_node: int = 12,
                       window: int = 4,
                       pattern: "str | TrafficPattern" = "halo",
                       read_fraction: float = 0.0) -> List[PhaseSpec]:
    """The MD-timestep phase pair: halo export burst, force-return burst.

    Both phases use the same spatial pattern (positions go out to the
    import-region neighborhood and forces come back along the reverse
    edges, which for the symmetric halo/neighbor destination sets is the
    same pattern), each followed by its fence — the
    position-export -> fence -> force-return -> fence shape of one
    Anton 3 iteration.  ``pattern`` may be a registered name or an
    already-built :class:`~repro.traffic.patterns.TrafficPattern` (e.g.
    a hotspot with a custom fraction); this is the canonical builder the
    run surface and examples share.
    """
    spatial = (pattern if isinstance(pattern, TrafficPattern)
               else make_pattern(pattern, machine.torus))
    return [
        PhaseSpec("position-export", spatial, messages_per_node, window,
                  read_fraction=read_fraction),
        PhaseSpec("force-return", spatial, messages_per_node, window,
                  read_fraction=read_fraction),
    ]


@dataclass
class PhaseLoopResult:
    """Per-iteration records plus the closed-loop summary statistics."""

    pattern: str
    routing: str
    fence_hops: int
    num_nodes: int
    iterations: List[Dict[str, object]]

    @property
    def mean_iteration_ns(self) -> float:
        return (sum(rec["iteration_ns"] for rec in self.iterations)
                / len(self.iterations))

    @property
    def mean_fence_wait_fraction(self) -> float:
        return (sum(rec["fence_wait_fraction"] for rec in self.iterations)
                / len(self.iterations))

    def phase_means(self) -> Dict[str, Dict[str, float]]:
        """Mean burst/fence split per phase name across iterations."""
        sums: Dict[str, Dict[str, float]] = {}
        for record in self.iterations:
            for phase in record["phases"]:
                entry = sums.setdefault(
                    phase["name"], {"burst_ns": 0.0, "fence_ns": 0.0,
                                    "finish_spread_ns": 0.0})
                entry["burst_ns"] += phase["burst_ns"]
                entry["fence_ns"] += phase["fence_ns"]
                entry["finish_spread_ns"] += phase["finish_spread_ns"]
        count = len(self.iterations)
        return {name: {key: value / count for key, value in entry.items()}
                for name, entry in sums.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "pattern": self.pattern,
            "routing": self.routing,
            "fence_hops": self.fence_hops,
            "num_nodes": self.num_nodes,
            "iterations": self.iterations,
            "mean_iteration_ns": self.mean_iteration_ns,
            "mean_fence_wait_fraction": self.mean_fence_wait_fraction,
            "phase_means": self.phase_means(),
        }


class PhaseLoopHarness:
    """Runs fence-synchronized phase iterations over one machine."""

    def __init__(self, machine: NetworkMachine, phases: Sequence[PhaseSpec],
                 seed: int = 0, fence_hops: Optional[int] = None,
                 fence_engine: Optional[FenceEngine] = None) -> None:
        if not phases:
            raise ValueError("a phase loop needs at least one phase")
        self.machine = machine
        self.phases = list(phases)
        self.seed = seed
        # A fence covering the torus diameter synchronizes every node —
        # the global barrier an MD integration step requires.
        self.fence_hops = (fence_hops if fence_hops is not None
                           else machine.torus.dims.diameter)
        if self.fence_hops < 0:
            raise ValueError("fence_hops must be >= 0")
        self.engine = fence_engine or FenceEngine(machine)

    # ------------------------------------------------------------------
    # One closed-loop burst.
    # ------------------------------------------------------------------

    def _run_burst(self, phase: PhaseSpec,
                   iteration: int, phase_index: int) -> Dict[str, object]:
        machine = self.machine
        sim = machine.sim
        driver = ClosedLoopDriver(
            machine, phase.pattern,
            derive_seed(self.seed, "phase", iteration, phase_index),
            read_fraction=phase.read_fraction)
        remaining: Dict[Coord, int] = {
            node: phase.messages_per_node for node in driver.sources}
        finish_ns: Dict[Coord, float] = {}
        start_ns = sim.now

        def issue(node: Coord) -> None:
            remaining[node] -= 1
            driver.issue(node)

        def on_delivered(packet: Packet) -> None:
            completed = driver.completion(packet)
            if completed is None:
                return
            node, __ = completed
            if remaining[node] > 0:
                issue(node)
            elif driver.outstanding[node] == 0:
                finish_ns[node] = sim.now

        machine.set_record_delivered(False)
        machine.set_delivery_hook(on_delivered)
        try:
            for node in driver.sources:
                for __ in range(min(phase.window, phase.messages_per_node)):
                    issue(node)
            sim.run_until_idle()
        finally:
            machine.set_delivery_hook(None)
            machine.set_record_delivered(True)
        if len(finish_ns) != len(driver.sources):
            raise RuntimeError(
                f"phase {phase.name!r}: {len(finish_ns)} of "
                f"{len(driver.sources)} sources finished their burst")

        finishes = [t - start_ns for t in finish_ns.values()]
        burst_ns = max(finishes)
        return {
            "name": phase.name,
            "messages_per_node": phase.messages_per_node,
            "window": phase.window,
            "burst_ns": burst_ns,
            "finish_spread_ns": burst_ns - min(finishes),
            "mean_finish_ns": sum(finishes) / len(finishes),
        }

    # ------------------------------------------------------------------
    # Iterations.
    # ------------------------------------------------------------------

    def run_iteration(self, iteration: int = 0) -> Dict[str, object]:
        """One full phase sequence; returns the iteration record."""
        sim = self.machine.sim
        start_ns = sim.now
        phase_records: List[Dict[str, object]] = []
        fence_wait_ns = 0.0
        for phase_index, phase in enumerate(self.phases):
            record = self._run_burst(phase, iteration, phase_index)
            fence_ns = self.engine.barrier_latency(self.fence_hops)
            record["fence_ns"] = fence_ns
            # What a typical node waits at this barrier: the fence
            # propagation itself, plus the idle gap between its own
            # burst finishing and the global last finisher.
            record["mean_node_wait_ns"] = (
                fence_ns + record["burst_ns"] - record["mean_finish_ns"])
            fence_wait_ns += record["mean_node_wait_ns"]
            del record["mean_finish_ns"]
            phase_records.append(record)
        iteration_ns = sim.now - start_ns
        return {
            "iteration": iteration,
            "iteration_ns": iteration_ns,
            "phases": phase_records,
            "fence_wait_fraction": fence_wait_ns / iteration_ns,
        }

    def run(self, iterations: int = 1) -> PhaseLoopResult:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        records = [self.run_iteration(index) for index in range(iterations)]
        patterns = sorted({phase.pattern.name for phase in self.phases})
        return PhaseLoopResult(
            pattern="+".join(patterns),
            routing=self.machine.routing.name,
            fence_hops=self.fence_hops,
            num_nodes=self.machine.torus.dims.num_nodes,
            iterations=records)
