"""On-disk observability artifacts, written beside the result cache.

One observed run produces up to two artifact files keyed by the run's
cache content address (:func:`repro.runner.cache.config_digest`):

    <cache-root>/observe/<digest>.metrics.json
    <cache-root>/observe/<digest>.trace.json

Each file wraps the per-machine payloads of every machine the run built
(run surfaces build machines in a fixed order, so the list order is
deterministic).  Files are written with a local canonical JSON encoding
(compact, key-sorted, ``allow_nan=False``) so the trace-determinism
tests can compare artifacts byte for byte across ``--jobs`` splits; the
encoder is deliberately self-contained so this module never imports the
runner (the runner imports *us*).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional

__all__ = [
    "artifact_path",
    "find_artifact",
    "list_artifacts",
    "load_artifact",
    "observe_dir",
    "write_artifact",
    "write_run_artifacts",
]

#: The artifact layers a run can produce, in file-naming order.  A run
#: records ``metrics``/``trace``; ``diagnosis`` is derived from them
#: post hoc by ``repro-runner diagnose`` (repro.analysis.forensics) and
#: stored beside them under the same digest.
LAYERS = ("metrics", "trace", "diagnosis")

#: The layers an observed run itself collects (``diagnosis`` is derived).
RUN_LAYERS = ("metrics", "trace")


def _canonical_dump(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def observe_dir(cache_root: Path) -> Path:
    """The artifact directory beside a cache root (not created)."""
    return Path(cache_root) / "observe"


def artifact_path(directory: Path, digest: str, layer: str) -> Path:
    if layer not in LAYERS:
        raise ValueError(f"unknown artifact layer {layer!r}; "
                         f"expected one of {LAYERS}")
    return Path(directory) / f"{digest}.{layer}.json"


def write_run_artifacts(directory: Path, digest: str,
                        artifacts: Mapping[str, list]) -> List[Path]:
    """Write one run's collected artifacts; returns the paths written.

    ``artifacts`` is the :func:`repro.observe.context.collect` mapping:
    layer name to the list of per-machine payloads.  Writes are atomic
    (tmp + rename) like cache entries, so a crashed run never leaves a
    half-written artifact for the determinism tests to trip over.
    """
    written: List[Path] = []
    for layer in RUN_LAYERS:
        machines = artifacts.get(layer)
        if not machines:
            continue
        written.append(write_artifact(directory, digest, layer, machines))
    return written


def write_artifact(directory: Path, digest: str, layer: str,
                   machines: list) -> Path:
    """Write one artifact layer canonically and atomically; returns its path.

    The single-layer primitive behind :func:`write_run_artifacts`, also
    used by ``repro-runner diagnose`` to store derived diagnosis
    artifacts: canonical JSON in, so equal payloads are byte-equal files.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"digest": digest, "layer": layer, "machines": machines}
    path = artifact_path(directory, digest, layer)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(_canonical_dump(payload))
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def load_artifact(path: Path) -> Dict[str, object]:
    """Read one artifact file back (raises on malformed content)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "machines" not in payload:
        raise ValueError(f"{path} is not an observability artifact")
    return payload


def find_artifact(directory: Path, digest_prefix: str,
                  layer: str) -> Optional[Path]:
    """The unique artifact whose digest starts with ``digest_prefix``.

    Returns ``None`` when nothing matches; raises ``ValueError`` when
    the prefix is ambiguous (two digests share it).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    matches = sorted(directory.glob(f"{digest_prefix}*.{layer}.json"))
    if not matches:
        return None
    if len(matches) > 1:
        names = ", ".join(path.name for path in matches)
        raise ValueError(
            f"digest prefix {digest_prefix!r} is ambiguous: {names}")
    return matches[0]


def list_artifacts(directory: Path) -> List[Dict[str, object]]:
    """All artifacts under ``directory`` as sorted summary rows."""
    directory = Path(directory)
    rows: List[Dict[str, object]] = []
    if not directory.is_dir():
        return rows
    for path in sorted(directory.glob("*.json")):
        name = path.name
        for layer in LAYERS:
            suffix = f".{layer}.json"
            if name.endswith(suffix):
                rows.append({
                    "digest": name[: -len(suffix)],
                    "layer": layer,
                    "path": str(path),
                    "bytes": path.stat().st_size,
                })
                break
    return rows
