"""The ambient observation context for runner-driven observability.

The runner's cache digests hash ``{experiment, version, params}``, so
observability must never ride in an experiment's parameter dict — that
would re-key every cached result.  Instead the runner activates an
ambient :class:`~repro.observe.config.ObserveConfig` around one run
(:func:`activate` / :func:`deactivate`, or the :func:`observing`
context manager); every :class:`~repro.netsim.machine.NetworkMachine`
built while the context is active consults it, creates an
:class:`~repro.observe.observer.Observer`, and registers that observer
here.  After the run, :func:`collect` gathers every observer's
artifacts in machine-creation order (deterministic: run surfaces build
machines in a fixed sequence for a given config).

The context is process-local by design: worker processes receive the
config inside their task tuple and activate it themselves, so ``--jobs
1`` and ``--jobs N`` observe identically.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .config import ObserveConfig

__all__ = [
    "activate",
    "active_observe_config",
    "collect",
    "deactivate",
    "observing",
    "register_observer",
]

_active_config: Optional[ObserveConfig] = None
_observers: List[object] = []


def activate(config: ObserveConfig) -> None:
    """Arm the ambient context; raises if one is already active."""
    global _active_config
    if _active_config is not None:
        raise RuntimeError("an observation context is already active")
    _active_config = config
    _observers.clear()


def deactivate() -> None:
    """Disarm the ambient context and drop registered observers."""
    global _active_config
    _active_config = None
    _observers.clear()


def active_observe_config() -> Optional[ObserveConfig]:
    """The ambient config, or ``None`` when observation is off."""
    return _active_config


def register_observer(observer: object) -> None:
    """Called by machines that created an observer from this context."""
    if _active_config is not None:
        _observers.append(observer)


def collect() -> Optional[Dict[str, list]]:
    """Per-layer artifacts of every observer, in creation order.

    Returns ``{"metrics": [...], "trace": [...]}`` with one entry per
    observed machine (layers the config disabled are omitted), or
    ``None`` when no machine was observed — the caller then writes no
    artifact files at all.
    """
    if not _observers:
        return None
    artifacts: Dict[str, list] = {}
    for observer in _observers:
        for layer, payload in observer.artifacts().items():
            artifacts.setdefault(layer, []).append(payload)
    return artifacts or None


@contextmanager
def observing(config: ObserveConfig) -> Iterator[None]:
    """Activate ``config`` for the duration of a ``with`` block."""
    activate(config)
    try:
        yield
    finally:
        deactivate()
