"""Host-side profiling: wall-clock phase timers and subsystem shares.

Two layers, both about *host* time (where the telemetry and tracing
layers are about *simulated* time):

* :class:`PhaseTimer` — named wall-clock stopwatches around coarse
  simulator phases (build / warmup / measure / drain), for harnesses
  that want a cheap breakdown without a profiler.
* :func:`profile_callable` + :func:`subsystem_shares` — a cProfile run
  whose flat function stats are folded into per-subsystem time shares
  (``repro.netsim``, ``repro.engine``, ...).  Frames outside the repro
  tree (stdlib ``heapq``, ``random``, builtins) do not vanish into an
  unattributed bucket: their own time is redistributed to the repro
  subsystems that called them, proportionally to per-caller cumulative
  time, so the report attributes nearly all wall-clock to named
  subsystems — the evidence base the vectorization refactor needs.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "PhaseTimer",
    "profile_callable",
    "profile_report",
    "subsystem_of",
    "subsystem_shares",
]


class PhaseTimer:
    """Accumulating named wall-clock timers for simulator phases."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if name not in self.seconds:
                self._order.append(name)
                self.seconds[name] = 0.0
            self.seconds[name] += elapsed

    @property
    def total_s(self) -> float:
        return sum(self.seconds.values())

    def jsonable(self) -> Dict[str, float]:
        """Phase seconds in first-use order."""
        return {name: self.seconds[name] for name in self._order}


def profile_callable(fn: Callable, *args, **kwargs) -> Tuple[object, pstats.Stats]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, stats)``; the stats object feeds
    :func:`subsystem_shares` or any pstats report.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return result, pstats.Stats(profiler)


def subsystem_of(filename: str) -> Optional[str]:
    """The repro subsystem owning ``filename``, or ``None`` if outside.

    ``.../src/repro/netsim/fabric.py`` -> ``repro.netsim``; a module
    directly under ``repro/`` maps to ``repro``.
    """
    normalized = filename.replace("\\", "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index < 0:
        return None
    remainder = normalized[index + len(marker):]
    package, sep, __ = remainder.partition("/")
    if not sep:
        return "repro"
    return f"repro.{package}"


def subsystem_shares(stats: pstats.Stats) -> Tuple[Dict[str, float], float]:
    """Per-subsystem own-time shares from flat cProfile stats.

    Returns ``(shares, total_s)``: ``shares`` maps subsystem names (plus
    ``"(other)"`` for time with no repro caller, e.g. profiler overhead
    or deep stdlib internals) to seconds of own time; ``total_s`` is the
    profile's total own time, which the shares sum to.
    """
    entries = stats.stats  # type: ignore[attr-defined]

    # Each frame gets an attribution distribution {subsystem: fraction}.
    # Repro frames own themselves outright; outside frames inherit a
    # caller-cumtime-weighted mix of their callers' distributions.  The
    # mix is resolved by fixed-point iteration so chains of non-repro
    # frames (a dataclass-generated ``__lt__`` called from a ``heapq``
    # builtin called from the event loop) still land on the repro
    # subsystem at the root of the call chain.
    dist: Dict[tuple, Dict[str, float]] = {}
    unresolved = []
    for key in entries:
        package = subsystem_of(key[0])
        if package is not None:
            dist[key] = {package: 1.0}
        else:
            unresolved.append(key)
    for __ in range(10):
        changed = False
        for key in unresolved:
            callers = entries[key][4]
            weights: Dict[str, float] = {}
            for caller_key, caller_entry in callers.items():
                for package, fraction in dist.get(caller_key, {}).items():
                    weights[package] = (
                        weights.get(package, 0.0)
                        + caller_entry[3] * fraction)
            weight_sum = sum(weights.values())
            if weight_sum <= 0.0:
                continue
            mixed = {package: weight / weight_sum
                     for package, weight in weights.items()}
            if dist.get(key) != mixed:
                dist[key] = mixed
                changed = True
        if not changed:
            break

    shares: Dict[str, float] = {}
    total = 0.0
    for key, entry in entries.items():
        tt = entry[2]
        total += tt
        if tt == 0.0:
            continue
        mixed = dist.get(key)
        if mixed:
            for package, fraction in mixed.items():
                shares[package] = shares.get(package, 0.0) + tt * fraction
        else:
            shares["(other)"] = shares.get("(other)", 0.0) + tt
    return shares, total


def profile_report(shares: Dict[str, float], total_s: float) -> str:
    """A fixed-width text table of subsystem time shares."""
    rows = sorted(shares.items(), key=lambda item: (-item[1], item[0]))
    width = max([len("subsystem")] + [len(name) for name, __ in rows])
    lines = [f"{'subsystem':{width}}  {'seconds':>9}  {'share':>6}"]
    for name, seconds in rows:
        share = seconds / total_s if total_s else 0.0
        lines.append(f"{name:{width}}  {seconds:9.4f}  {share:5.1%}")
    attributed = total_s - shares.get("(other)", 0.0)
    fraction = attributed / total_s if total_s else 0.0
    lines.append(
        f"{'total':{width}}  {total_s:9.4f}  "
        f"({fraction:.1%} attributed to repro subsystems)")
    return "\n".join(lines)
