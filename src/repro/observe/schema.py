"""Structural validation of observability artifacts.

Dependency-free schema checks (no jsonschema in the container) used by
tests and the CI observe-smoke job: they assert the shape contracts the
metrics/trace exporters promise — slice-array lengths match the declared
slice count, spans carry well-formed closed intervals, Chrome trace
events carry the fields Perfetto requires — and raise ``ValueError``
with a path-qualified message on the first violation.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "DIAGNOSIS_SCHEMA_ID",
    "LEDGER_SCHEMA_ID",
    "METRICS_SCHEMA_ID",
    "STATUS_SCHEMA_ID",
    "TRACE_SCHEMA_ID",
    "validate_chrome_trace",
    "validate_diagnosis",
    "validate_ledger_record",
    "validate_metrics",
    "validate_status_event",
    "validate_trace",
]

METRICS_SCHEMA_ID = "repro.observe.metrics/1"
TRACE_SCHEMA_ID = "repro.observe.trace/1"
LEDGER_SCHEMA_ID = "repro.observe.ledger/1"
STATUS_SCHEMA_ID = "repro.observe.status/1"
DIAGNOSIS_SCHEMA_ID = "repro.observe.diagnosis/1"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid artifact: {message}")


def _number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_metrics(payload: Mapping) -> None:
    """Validate one machine's metrics payload (raises ``ValueError``)."""
    _require(isinstance(payload, Mapping), "metrics payload is not a mapping")
    _require(payload.get("schema") == METRICS_SCHEMA_ID,
             f"metrics schema is {payload.get('schema')!r}, "
             f"expected {METRICS_SCHEMA_ID!r}")
    _require(_number(payload.get("end_ns")) and payload["end_ns"] >= 0,
             "metrics end_ns must be a non-negative number")
    _require(_number(payload.get("period_ns")) and payload["period_ns"] > 0,
             "metrics period_ns must be a positive number")
    slices = payload.get("slices")
    _require(isinstance(slices, int) and slices >= 1,
             "metrics slices must be a positive integer")
    gauges = payload.get("gauges")
    _require(isinstance(gauges, Mapping), "metrics gauges must be a mapping")
    for name, means in gauges.items():
        _require(isinstance(means, list) and len(means) == slices,
                 f"gauge {name!r} must have one mean per slice")
        _require(all(_number(value) for value in means),
                 f"gauge {name!r} has a non-numeric mean")
    counters = payload.get("counters")
    _require(isinstance(counters, Mapping),
             "metrics counters must be a mapping")
    for name, counts in counters.items():
        _require(isinstance(counts, list) and len(counts) == slices,
                 f"counter {name!r} must have one count per slice")
        _require(all(isinstance(value, int) and value >= 0
                     for value in counts),
                 f"counter {name!r} has a non-count entry")
    stats = payload.get("stats")
    _require(isinstance(stats, Mapping), "metrics stats must be a mapping")
    for section in ("counters", "summaries", "histograms", "series"):
        _require(isinstance(stats.get(section), Mapping),
                 f"metrics stats.{section} must be a mapping")
    # Forensics sections (optional: pre-forensics artifacts lack them).
    if "topology" in payload:
        topology = payload["topology"]
        _require(isinstance(topology, Mapping)
                 and isinstance(topology.get("dims"), list)
                 and len(topology["dims"]) == 3
                 and all(isinstance(d, int) and d >= 1
                         for d in topology["dims"]),
                 "metrics topology.dims must be three positive integers")
    if "links" in payload:
        links = payload["links"]
        _require(isinstance(links, Mapping), "metrics links must be a mapping")
        for name, endpoints in links.items():
            _require(isinstance(endpoints, Mapping),
                     f"link {name!r} endpoints must be a mapping")
            for key in ("src", "dst", "axis", "sign", "slice"):
                _require(isinstance(endpoints.get(key), int),
                         f"link {name!r} endpoints.{key} must be an integer")
    if "fences" in payload:
        fences = payload["fences"]
        _require(isinstance(fences, list), "metrics fences must be a list")
        for index, fence in enumerate(fences):
            where = f"fences[{index}]"
            _require(isinstance(fence, Mapping), f"{where} is not a mapping")
            for key in ("fence_id", "straggler", "completions"):
                _require(isinstance(fence.get(key), int),
                         f"{where}.{key} must be an integer")
            for key in ("start_ns", "first_ns", "last_ns"):
                _require(_number(fence.get(key)),
                         f"{where}.{key} must be a number")


def validate_trace(payload: Mapping) -> None:
    """Validate one machine's trace payload (raises ``ValueError``)."""
    _require(isinstance(payload, Mapping), "trace payload is not a mapping")
    _require(payload.get("schema") == TRACE_SCHEMA_ID,
             f"trace schema is {payload.get('schema')!r}, "
             f"expected {TRACE_SCHEMA_ID!r}")
    _require(_number(payload.get("end_ns")) and payload["end_ns"] >= 0,
             "trace end_ns must be a non-negative number")
    sample = payload.get("trace_sample")
    _require(_number(sample) and 0.0 <= sample <= 1.0,
             "trace_sample must be a number in [0, 1]")
    _require(isinstance(payload.get("trace_seed"), int),
             "trace_seed must be an integer")
    spans = payload.get("spans")
    _require(isinstance(spans, list), "trace spans must be a list")
    for index, span in enumerate(spans):
        where = f"span[{index}]"
        _require(isinstance(span, Mapping), f"{where} is not a mapping")
        trace_id = span.get("trace_id")
        _require(isinstance(trace_id, list) and len(trace_id) == 2
                 and all(isinstance(part, int) and part >= 0
                         for part in trace_id),
                 f"{where} trace_id must be [node_id, seq]")
        _require(isinstance(span.get("kind"), str) and span["kind"],
                 f"{where} kind must be a non-empty string")
        start, end = span.get("start_ns"), span.get("end_ns")
        _require(_number(start) and _number(end) and start <= end,
                 f"{where} must satisfy start_ns <= end_ns")


def validate_chrome_trace(payload: Mapping) -> None:
    """Validate an exported Chrome/Perfetto trace (raises ``ValueError``)."""
    _require(isinstance(payload, Mapping),
             "chrome trace payload is not a mapping")
    events = payload.get("traceEvents")
    _require(isinstance(events, list),
             "chrome trace must carry a traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        _require(isinstance(event, Mapping), f"{where} is not a mapping")
        _require(isinstance(event.get("name"), str) and event["name"],
                 f"{where} needs a name")
        phase = event.get("ph")
        _require(phase in ("X", "i", "M", "B", "E"),
                 f"{where} has unsupported phase {phase!r}")
        _require(isinstance(event.get("pid"), int)
                 and isinstance(event.get("tid"), int),
                 f"{where} needs integer pid and tid")
        if phase == "X":
            _require(_number(event.get("ts"))
                     and _number(event.get("dur"))
                     and event["dur"] >= 0,
                     f"{where} complete event needs ts and dur >= 0")
        elif phase == "i":
            _require(_number(event.get("ts")),
                     f"{where} instant event needs ts")


def validate_diagnosis(payload: Mapping) -> None:
    """Validate one machine's diagnosis payload (raises ``ValueError``).

    The diagnosis layer is derived (``repro-runner diagnose``), so this
    checks the analysis sections the forensics module promises: latency
    decomposition classes whose components sum to the measured
    end-to-end latency, backpressure rows with downstream attribution,
    fence critical paths, and heatmaps shaped to the torus.
    """
    _require(isinstance(payload, Mapping),
             "diagnosis payload is not a mapping")
    _require(payload.get("schema") == DIAGNOSIS_SCHEMA_ID,
             f"diagnosis schema is {payload.get('schema')!r}, "
             f"expected {DIAGNOSIS_SCHEMA_ID!r}")
    _require(_number(payload.get("end_ns")) and payload["end_ns"] >= 0,
             "diagnosis end_ns must be a non-negative number")
    latency = payload.get("latency")
    _require(latency is None or isinstance(latency, Mapping),
             "diagnosis latency must be a mapping or null")
    if isinstance(latency, Mapping):
        classes = latency.get("classes")
        _require(isinstance(classes, list),
                 "diagnosis latency.classes must be a list")
        for index, row in enumerate(classes):
            where = f"latency.classes[{index}]"
            _require(isinstance(row, Mapping), f"{where} is not a mapping")
            _require(isinstance(row.get("hops"), int) and row["hops"] >= 0,
                     f"{where}.hops must be a non-negative integer")
            _require(isinstance(row.get("packets"), int)
                     and row["packets"] >= 1,
                     f"{where}.packets must be a positive integer")
            mean = row.get("mean_ns")
            _require(isinstance(mean, Mapping),
                     f"{where}.mean_ns must be a mapping")
            _require(all(_number(value) for value in mean.values()),
                     f"{where}.mean_ns has a non-numeric component")
            _require(_number(row.get("end_to_end_ns")),
                     f"{where}.end_to_end_ns must be a number")
            total = sum(mean.values())
            _require(abs(total - row["end_to_end_ns"])
                     <= 1e-6 * max(1.0, abs(row["end_to_end_ns"])),
                     f"{where} components must sum to end_to_end_ns")
    backpressure = payload.get("backpressure")
    _require(isinstance(backpressure, Mapping),
             "diagnosis backpressure must be a mapping")
    for section in ("saturated", "root_causes", "trees"):
        _require(isinstance(backpressure.get(section), list),
                 f"diagnosis backpressure.{section} must be a list")
    for index, row in enumerate(backpressure["saturated"]):
        where = f"backpressure.saturated[{index}]"
        _require(isinstance(row, Mapping), f"{where} is not a mapping")
        _require(isinstance(row.get("link"), str) and row["link"],
                 f"{where}.link must be a non-empty string")
        _require(isinstance(row.get("dst"), int),
                 f"{where}.dst must be an integer node id")
        _require(_number(row.get("busy_fraction")),
                 f"{where}.busy_fraction must be a number")
        _require(isinstance(row.get("stalls"), int) and row["stalls"] >= 0,
                 f"{where}.stalls must be a non-negative integer")
    for index, row in enumerate(backpressure["root_causes"]):
        where = f"backpressure.root_causes[{index}]"
        _require(isinstance(row, Mapping), f"{where} is not a mapping")
        _require(isinstance(row.get("node"), int),
                 f"{where}.node must be an integer node id")
        _require(_number(row.get("score")),
                 f"{where}.score must be a number")
    fences = payload.get("fences")
    _require(isinstance(fences, Mapping),
             "diagnosis fences must be a mapping")
    _require(isinstance(fences.get("critical_paths"), list),
             "diagnosis fences.critical_paths must be a list")
    heatmaps = payload.get("heatmaps")
    _require(isinstance(heatmaps, list), "diagnosis heatmaps must be a list")
    for index, heatmap in enumerate(heatmaps):
        where = f"heatmaps[{index}]"
        _require(isinstance(heatmap, Mapping), f"{where} is not a mapping")
        _require(isinstance(heatmap.get("metric"), str) and heatmap["metric"],
                 f"{where}.metric must be a non-empty string")
        dims = heatmap.get("dims")
        _require(isinstance(dims, list) and len(dims) == 3
                 and all(isinstance(d, int) and d >= 1 for d in dims),
                 f"{where}.dims must be three positive integers")
        values = heatmap.get("values")
        _require(isinstance(values, list)
                 and len(values) == dims[0] * dims[1] * dims[2],
                 f"{where}.values must carry one value per node")
        _require(all(_number(value) for value in values),
                 f"{where}.values has a non-numeric entry")


def validate_ledger_record(record: Mapping) -> None:
    """Validate one ``ledger.jsonl`` run record (raises ``ValueError``).

    Beyond shape, this enforces the determinism split: a ledger record
    must carry **no wall-clock or worker fields** — those belong to
    status events — so any drift toward non-deterministic records fails
    structurally.
    """
    _require(isinstance(record, Mapping), "ledger record is not a mapping")
    _require(record.get("schema") == LEDGER_SCHEMA_ID,
             f"ledger schema is {record.get('schema')!r}, "
             f"expected {LEDGER_SCHEMA_ID!r}")
    for key in ("rev", "sweep", "experiment"):
        _require(isinstance(record.get(key), str) and record[key],
                 f"ledger record {key} must be a non-empty string")
    _require(isinstance(record.get("version"), int)
             and record["version"] >= 1,
             "ledger record version must be a positive integer")
    digest = record.get("digest")
    _require(isinstance(digest, str) and len(digest) == 64
             and all(c in "0123456789abcdef" for c in digest),
             "ledger record digest must be a 64-char hex content address")
    _require(isinstance(record.get("grid_index"), int)
             and record["grid_index"] >= 0,
             "ledger record grid_index must be a non-negative integer")
    _require(isinstance(record.get("cached"), bool),
             "ledger record cached must be a boolean")
    _require(isinstance(record.get("observed"), bool),
             "ledger record observed must be a boolean")
    _require(isinstance(record.get("params"), Mapping),
             "ledger record params must be a mapping")
    result = record.get("result")
    _require(isinstance(result, Mapping), "ledger result must be a mapping")
    _require(all(_number(value) for value in result.values()),
             "ledger result must map to numbers")
    metrics = record.get("metrics")
    _require(metrics is None or isinstance(metrics, Mapping),
             "ledger metrics must be a mapping or null")
    for forbidden in ("t", "worker", "elapsed_s", "wall_s"):
        _require(forbidden not in record,
                 f"ledger record must not carry {forbidden!r} "
                 "(non-deterministic fields live in status.jsonl)")


def validate_status_event(event: Mapping) -> None:
    """Validate one ``status.jsonl`` heartbeat event (raises ``ValueError``)."""
    _require(isinstance(event, Mapping), "status event is not a mapping")
    _require(event.get("schema") == STATUS_SCHEMA_ID,
             f"status schema is {event.get('schema')!r}, "
             f"expected {STATUS_SCHEMA_ID!r}")
    _require(isinstance(event.get("sweep"), str),
             "status event sweep must be a string")
    _require(isinstance(event.get("index"), int) and event["index"] >= 0,
             "status event index must be a non-negative integer")
    state = event.get("state")
    _require(state in ("queued", "running", "done", "cache-hit", "failed"),
             f"status event state {state!r} is not a known state")
    _require(_number(event.get("t")), "status event t must be a number")
    _require(isinstance(event.get("worker"), int),
             "status event worker must be an integer pid")
    if "elapsed_s" in event:
        _require(_number(event["elapsed_s"]) and event["elapsed_s"] >= 0,
                 "status event elapsed_s must be a non-negative number")
    if "digest" in event:
        _require(isinstance(event["digest"], str) and event["digest"],
                 "status event digest must be a non-empty string")
