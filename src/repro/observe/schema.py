"""Structural validation of observability artifacts.

Dependency-free schema checks (no jsonschema in the container) used by
tests and the CI observe-smoke job: they assert the shape contracts the
metrics/trace exporters promise — slice-array lengths match the declared
slice count, spans carry well-formed closed intervals, Chrome trace
events carry the fields Perfetto requires — and raise ``ValueError``
with a path-qualified message on the first violation.
"""

from __future__ import annotations

from typing import Mapping

__all__ = [
    "METRICS_SCHEMA_ID",
    "TRACE_SCHEMA_ID",
    "validate_chrome_trace",
    "validate_metrics",
    "validate_trace",
]

METRICS_SCHEMA_ID = "repro.observe.metrics/1"
TRACE_SCHEMA_ID = "repro.observe.trace/1"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid artifact: {message}")


def _number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_metrics(payload: Mapping) -> None:
    """Validate one machine's metrics payload (raises ``ValueError``)."""
    _require(isinstance(payload, Mapping), "metrics payload is not a mapping")
    _require(payload.get("schema") == METRICS_SCHEMA_ID,
             f"metrics schema is {payload.get('schema')!r}, "
             f"expected {METRICS_SCHEMA_ID!r}")
    _require(_number(payload.get("end_ns")) and payload["end_ns"] >= 0,
             "metrics end_ns must be a non-negative number")
    _require(_number(payload.get("period_ns")) and payload["period_ns"] > 0,
             "metrics period_ns must be a positive number")
    slices = payload.get("slices")
    _require(isinstance(slices, int) and slices >= 1,
             "metrics slices must be a positive integer")
    gauges = payload.get("gauges")
    _require(isinstance(gauges, Mapping), "metrics gauges must be a mapping")
    for name, means in gauges.items():
        _require(isinstance(means, list) and len(means) == slices,
                 f"gauge {name!r} must have one mean per slice")
        _require(all(_number(value) for value in means),
                 f"gauge {name!r} has a non-numeric mean")
    counters = payload.get("counters")
    _require(isinstance(counters, Mapping),
             "metrics counters must be a mapping")
    for name, counts in counters.items():
        _require(isinstance(counts, list) and len(counts) == slices,
                 f"counter {name!r} must have one count per slice")
        _require(all(isinstance(value, int) and value >= 0
                     for value in counts),
                 f"counter {name!r} has a non-count entry")
    stats = payload.get("stats")
    _require(isinstance(stats, Mapping), "metrics stats must be a mapping")
    for section in ("counters", "summaries", "histograms", "series"):
        _require(isinstance(stats.get(section), Mapping),
                 f"metrics stats.{section} must be a mapping")


def validate_trace(payload: Mapping) -> None:
    """Validate one machine's trace payload (raises ``ValueError``)."""
    _require(isinstance(payload, Mapping), "trace payload is not a mapping")
    _require(payload.get("schema") == TRACE_SCHEMA_ID,
             f"trace schema is {payload.get('schema')!r}, "
             f"expected {TRACE_SCHEMA_ID!r}")
    _require(_number(payload.get("end_ns")) and payload["end_ns"] >= 0,
             "trace end_ns must be a non-negative number")
    sample = payload.get("trace_sample")
    _require(_number(sample) and 0.0 <= sample <= 1.0,
             "trace_sample must be a number in [0, 1]")
    _require(isinstance(payload.get("trace_seed"), int),
             "trace_seed must be an integer")
    spans = payload.get("spans")
    _require(isinstance(spans, list), "trace spans must be a list")
    for index, span in enumerate(spans):
        where = f"span[{index}]"
        _require(isinstance(span, Mapping), f"{where} is not a mapping")
        trace_id = span.get("trace_id")
        _require(isinstance(trace_id, list) and len(trace_id) == 2
                 and all(isinstance(part, int) and part >= 0
                         for part in trace_id),
                 f"{where} trace_id must be [node_id, seq]")
        _require(isinstance(span.get("kind"), str) and span["kind"],
                 f"{where} kind must be a non-empty string")
        start, end = span.get("start_ns"), span.get("end_ns")
        _require(_number(start) and _number(end) and start <= end,
                 f"{where} must satisfy start_ns <= end_ns")


def validate_chrome_trace(payload: Mapping) -> None:
    """Validate an exported Chrome/Perfetto trace (raises ``ValueError``)."""
    _require(isinstance(payload, Mapping),
             "chrome trace payload is not a mapping")
    events = payload.get("traceEvents")
    _require(isinstance(events, list),
             "chrome trace must carry a traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        _require(isinstance(event, Mapping), f"{where} is not a mapping")
        _require(isinstance(event.get("name"), str) and event["name"],
                 f"{where} needs a name")
        phase = event.get("ph")
        _require(phase in ("X", "i", "M", "B", "E"),
                 f"{where} has unsupported phase {phase!r}")
        _require(isinstance(event.get("pid"), int)
                 and isinstance(event.get("tid"), int),
                 f"{where} needs integer pid and tid")
        if phase == "X":
            _require(_number(event.get("ts"))
                     and _number(event.get("dur"))
                     and event["dur"] >= 0,
                     f"{where} complete event needs ts and dur >= 0")
        elif phase == "i":
            _require(_number(event.get("ts")),
                     f"{where} instant event needs ts")
