"""The Observer: one machine's instrumentation hub.

A :class:`~repro.netsim.machine.NetworkMachine` whose effective
:class:`~repro.observe.config.ObserveConfig` is enabled creates one
:class:`Observer` and calls :meth:`Observer.install`, which

* points every chip's ``observer`` attribute here (injection/delivery
  and routing-event hooks),
* assigns each chip its stable linear node id and a per-chip injection
  sequence counter (the cross-process-stable packet identity traces
  sample on), and
* attaches a :class:`LinkMonitor` to every inter-node channel link
  (per-VC occupancy, credit stalls, arbitration conflicts, packet
  queue/transmit spans).

Everything records at *existing* simulator event boundaries: the
observer schedules no events and draws no randomness, so an observed
run's simulated trajectory — and therefore its result dict — is
byte-identical to the unobserved run.  Disabled machines never build an
observer at all; their hot paths pay only ``is not None`` checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .config import ObserveConfig
from .metrics import MetricsHub
from .trace import PacketTracer

__all__ = ["LinkMonitor", "Observer"]

#: Histogram bounds for end-to-end packet latency (ns).  Fixed so the
#: binning — and the snapshot it exports — is config-independent.
LATENCY_HIST_NS = (0.0, 16384.0, 256)


class LinkMonitor:
    """Per-link instrumentation attached to one channel :class:`Link`.

    ``endpoints`` carries the link's torus identity — source/downstream
    node ids, direction, and channel slice — so credit stalls can be
    attributed to the *downstream* router that withheld credits (the
    input the forensics layer's saturation trees are built from).
    """

    __slots__ = (
        "link",
        "tracer",
        "endpoints",
        "occupancy",
        "busy",
        "stall_counter",
        "stall_slices",
        "vc_stall_counters",
        "conflict_counter",
        "conflict_slices",
        "_pending_queue",
    )

    def __init__(self, link, hub: Optional[MetricsHub],
                 tracer: Optional[PacketTracer],
                 endpoints: Optional[Dict[str, int]] = None) -> None:
        self.link = link
        self.tracer = tracer
        self.endpoints = endpoints
        if hub is not None:
            # Eager creation: the occupancy series must cover every link
            # and VC, including ones no packet ever touches.
            self.occupancy = [
                hub.slice_gauge(f"link/{link.name}/vc{vc}/occupancy")
                for vc in range(link.vcs)
            ]
            self.busy = hub.slice_gauge(f"link/{link.name}/busy")
            self.stall_counter = hub.counter(f"link/{link.name}/stalls")
            self.stall_slices = hub.slice_counter("link/credit_stalls")
            # Per-VC stall attribution: which VC's head packet was denied
            # downstream credits.  Eager like occupancy so the series
            # covers every VC, stalled or not.
            self.vc_stall_counters = [
                hub.counter(f"link/{link.name}/vc{vc}/stalls")
                for vc in range(link.vcs)
            ]
            self.conflict_counter = hub.counter(
                f"link/{link.name}/arbitration_conflicts")
            self.conflict_slices = hub.slice_counter(
                "link/arbitration_conflicts")
        else:
            self.occupancy = None
            self.busy = None
            self.stall_counter = None
            self.stall_slices = None
            self.vc_stall_counters = None
            self.conflict_counter = None
            self.conflict_slices = None
        self._pending_queue: Dict[Tuple[int, int], float] = {}

    def on_enqueue(self, now: float, packet, vc: int) -> None:
        """A packet joined this link's ``vc`` send queue."""
        if self.occupancy is not None:
            self.occupancy[vc].update(now, self.link.queued_flits_on(vc))
        if self.tracer is not None and packet.trace_id is not None:
            self._pending_queue[packet.trace_id] = now

    def on_stall(self, now: float, blocked_vcs: Tuple[int, ...] = ()) -> None:
        """Dispatch found queued packets but no VC with credits.

        ``blocked_vcs`` lists the VCs whose head packet was denied —
        each one a credit withheld by the downstream router on that VC.
        """
        if self.stall_counter is not None:
            self.stall_counter.add()
            self.stall_slices.add(now)
            for vc in blocked_vcs:
                self.vc_stall_counters[vc].add()

    def on_transmit(self, start: float, packet, vc: int, busy_until: float,
                    arrival: float, conflicts: int) -> None:
        """A packet won arbitration and started serializing."""
        if self.occupancy is not None:
            self.occupancy[vc].update(start, self.link.queued_flits_on(vc))
            self.busy.update(start, 1.0)
            self.busy.update(busy_until, 0.0)
            if conflicts > 0:
                self.conflict_counter.add(conflicts)
                self.conflict_slices.add(start, conflicts)
        if self.tracer is not None and packet.trace_id is not None:
            enqueued = self._pending_queue.pop(packet.trace_id, None)
            if enqueued is not None:
                self.tracer.span(packet.trace_id, "queue", enqueued, start,
                                 link=self.link.name, vc=vc)
            # ser_ns is the serialization share of the span; the rest
            # (arrival - busy_until) is wire propagation — the split the
            # forensics per-hop decomposition reads back out.
            self.tracer.span(packet.trace_id, "transmit", start, arrival,
                             link=self.link.name, vc=vc,
                             ser_ns=busy_until - start)


class Observer:
    """Collects one machine's metrics and trace through run hooks."""

    def __init__(self, machine, config: ObserveConfig) -> None:
        self.machine = machine
        self.config = config
        self._sim = machine.sim
        self.hub: Optional[MetricsHub] = (
            MetricsHub(config.period_ns) if config.metrics else None)
        self.tracer: Optional[PacketTracer] = (
            PacketTracer(config.trace_sample, config.trace_seed)
            if config.trace else None)
        self.monitors: List[LinkMonitor] = []
        self._in_flight = 0
        self._fence_starts: Dict[int, float] = {}
        # Per-fence completion bookkeeping for the forensics critical
        # path: first/last completion time and the straggler node.
        self._fence_records: Dict[int, Dict[str, object]] = {}
        if self.hub is not None:
            self._inflight_gauge = self.hub.slice_gauge("machine/in_flight")
            self._inject_slices = self.hub.slice_counter("machine/injections")
            self._deliver_slices = self.hub.slice_counter(
                "machine/deliveries")
            self._latency_hist = self.hub.histogram(
                "packet_latency_ns", *LATENCY_HIST_NS)
        else:
            self._inflight_gauge = None
            self._inject_slices = None
            self._deliver_slices = None
            self._latency_hist = None

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Attach the observer to every chip and channel link."""
        torus = self.machine.torus
        for coord, chip in self.machine.chips.items():
            chip.observer = self
            chip._obs_node_id = torus.node_id(coord)
            chip._obs_seq = 0
            if self.hub is not None:
                chip._route_events = self.on_route_event
        for coord, chip in self.machine.chips.items():
            for key, ca in chip.channel_adapters.items():
                link = ca.output_or_none("channel")
                if link is not None and link.monitor is None:
                    (axis, sign), slice_index = key
                    neighbor = torus.neighbor(coord, axis, sign)
                    endpoints = {
                        "src": torus.node_id(coord),
                        "dst": torus.node_id(neighbor),
                        "axis": axis,
                        "sign": sign,
                        "slice": slice_index,
                    }
                    monitor = LinkMonitor(link, self.hub, self.tracer,
                                          endpoints=endpoints)
                    link.monitor = monitor
                    self.monitors.append(monitor)

    # ------------------------------------------------------------------
    # Chip hooks (injection / delivery).
    # ------------------------------------------------------------------

    def on_inject(self, chip, packet, overhead_ns: float) -> None:
        """A GC issued ``packet`` on ``chip`` (pre-injection overhead)."""
        now = self._sim.now
        if self.tracer is not None:
            seq = chip._obs_seq
            chip._obs_seq = seq + 1
            if self.tracer.selects(chip._obs_node_id, seq):
                packet.trace_id = (chip._obs_node_id, seq)
                self.tracer.span(packet.trace_id, "inject", now,
                                 now + overhead_ns,
                                 node=chip._obs_node_id,
                                 kindof=packet.kind.value)
        if self.hub is not None:
            self._in_flight += 1
            self._inflight_gauge.update(now, self._in_flight)
            self._inject_slices.add(now)

    def on_deliver(self, chip, packet, eject_ns: float) -> None:
        """``packet`` committed to its destination GC's SRAM."""
        now = self._sim.now
        if self.hub is not None:
            self._in_flight -= 1
            self._inflight_gauge.update(now, self._in_flight)
            self._deliver_slices.add(now)
            if packet.injected_ns is not None:
                self._latency_hist.observe(now - packet.injected_ns)
        if self.tracer is not None and packet.trace_id is not None:
            self.tracer.span(packet.trace_id, "eject", now - eject_ns, now,
                             node=chip._obs_node_id)
            self.tracer.instant(packet.trace_id, "deliver", now,
                                hops=packet.torus_hops_taken,
                                misroutes=packet.misroutes)

    # ------------------------------------------------------------------
    # Routing, fence, and fault hooks.
    # ------------------------------------------------------------------

    def on_route_event(self, kind: str) -> None:
        """An adaptive-escape decision: ``adaptive``/``misroute``/``escape``."""
        hub = self.hub
        if hub is not None:
            hub.slice_counter(f"route/{kind}").add(self._sim.now)
            hub.counter(f"route/{kind}").add()

    def on_fence_start(self, fence_id: int, now: float) -> None:
        self._fence_starts[fence_id] = now

    def on_fence_node_complete(self, fence_id: int, coord, now: float) -> None:
        hub = self.hub
        if hub is None:
            return
        start = self._fence_starts.get(fence_id)
        if start is not None:
            hub.summary("fence/node_wait_ns").observe(now - start)
        hub.slice_counter("fence/node_completions").add(now)
        node_id = self.machine.torus.node_id(coord)
        record = self._fence_records.get(fence_id)
        if record is None:
            self._fence_records[fence_id] = {
                "fence_id": fence_id,
                "start_ns": start if start is not None else now,
                "first_ns": now,
                "last_ns": now,
                "straggler": node_id,
                "completions": 1,
            }
        else:
            record["completions"] += 1
            # Ties resolve to the latest completion in event order —
            # deterministic, since event order is fixed by the config.
            if now >= record["last_ns"]:
                record["last_ns"] = now
                record["straggler"] = node_id

    def on_fault_epoch(self, epoch: int) -> None:
        hub = self.hub
        if hub is not None:
            hub.counter("faults/epochs").add()
            hub.slice_counter("faults/epoch_transitions").add(self._sim.now)

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def artifacts(self) -> Dict[str, dict]:
        """The recorded layers as JSON-able payloads, keyed by layer.

        Flushes every gauge through the machine's final simulated time,
        so calling this ends the observation window (idempotently — the
        accumulators simply stop at ``sim.now``).
        """
        end_ns = self._sim.now
        payload: Dict[str, dict] = {}
        if self.hub is not None:
            self.hub.close(end_ns)
            payload["metrics"] = {
                "schema": "repro.observe.metrics/1",
                "end_ns": end_ns,
                **self.hub.slices_jsonable(end_ns),
                "stats": self.hub.snapshot(),
                # Forensics inputs: the torus shape, every monitored
                # link's endpoints (stall attribution needs the
                # *downstream* identity), and per-fence completion
                # records (critical-path stragglers).
                "topology": {
                    "dims": list(self.machine.torus.dims.as_tuple()),
                },
                "links": {
                    monitor.link.name: monitor.endpoints
                    for monitor in self.monitors
                    if monitor.endpoints is not None
                },
                "fences": [
                    self._fence_records[fence_id]
                    for fence_id in sorted(self._fence_records)
                ],
            }
        if self.tracer is not None:
            payload["trace"] = {
                "schema": "repro.observe.trace/1",
                "end_ns": end_ns,
                **self.tracer.jsonable(),
            }
        return payload
