"""The cross-run ledger: a persistent, append-only record of executions.

PR 7 made one run observable; the ledger gives the repo memory *across*
runs.  Every sweep execution appends one canonical JSON line per grid
point to ``<cache-root>/ledger/ledger.jsonl`` — experiment, version,
config digest, parameters, cache hit/miss, and (when observation was
on) a numeric rollup of the run's metrics artifact — so any two runs of
any two revisions can be compared by digest with ``repro-runner ledger
{list,show,diff}``.

Determinism contract (the ledger analogue of PR 7's zero-perturbation
contract):

* Ledger writes happen only in the runner — never inside simulation —
  so result dicts and cache digests are byte-identical with the ledger
  on or off.
* ``ledger.jsonl`` records carry **no wall-clock times and no worker
  ids**; they are appended by the coordinating process in grid order,
  so the file is byte-identical across ``--jobs 1/N`` splits.  All
  non-deterministic execution telemetry (heartbeat timestamps, worker
  pids, elapsed wall seconds) lives in the clearly segregated
  ``status.jsonl`` beside it (:mod:`repro.observe.status`).

Appends are concurrent-writer safe: each record is a single
``O_APPEND`` write of one complete line, so interleaved writers can
reorder lines but never tear one.

This module never imports the runner (the runner imports *us*).
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .schema import LEDGER_SCHEMA_ID

__all__ = [
    "RunLedger",
    "append_jsonl",
    "canonical_line",
    "diff_records",
    "diff_table",
    "flatten_numeric",
    "latest_records",
    "ledger_dir",
    "ledger_table",
    "metrics_rollup",
    "read_jsonl",
    "resolve_digest",
    "working_tree_rev",
]

#: Directory and file names beside the result cache.
LEDGER_DIRNAME = "ledger"
LEDGER_FILENAME = "ledger.jsonl"
STATUS_FILENAME = "status.jsonl"


def ledger_dir(cache_root: Path) -> Path:
    """The ledger directory beside a cache root (not created)."""
    return Path(cache_root) / LEDGER_DIRNAME


def working_tree_rev() -> str:
    """Short git revision of the working tree, or ``unknown``.

    Deterministic for a given checkout, so it is safe inside ledger
    records (every ``--jobs`` split of one invocation sees the same
    revision).
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def flatten_numeric(payload: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested result dict as sorted dotted keys."""
    flat: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key in sorted(payload):
            child = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_numeric(payload[key], child))
    elif isinstance(payload, bool):
        pass
    elif isinstance(payload, (int, float)):
        flat[prefix] = float(payload)
    return flat


# ---------------------------------------------------------------------------
# JSONL primitives.
# ---------------------------------------------------------------------------


def canonical_line(record: Mapping) -> bytes:
    """One record as a complete canonical JSON line (UTF-8 bytes)."""
    text = json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    if "\n" in text:  # cannot happen with compact separators; be safe
        raise ValueError("record serialized with an embedded newline")
    return text.encode("utf-8") + b"\n"


def append_jsonl(path: Path, record: Mapping) -> None:
    """Append one record as a single atomic ``O_APPEND`` write.

    POSIX appends position-then-write atomically, and the whole line
    goes down in one ``os.write``, so concurrent appenders interleave
    *lines*, never bytes within a line.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = canonical_line(record)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)


def read_jsonl(path: Path, strict: bool = True) -> List[Dict[str, object]]:
    """All records of one JSONL file, in file order.

    ``strict`` raises on a malformed line; otherwise malformed lines
    are skipped (a reader racing an in-flight append may see a partial
    final line on non-POSIX filesystems).
    """
    records: List[Dict[str, object]] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return records
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if strict:
                raise ValueError(f"{path}:{number}: malformed JSONL line")
            continue
        if isinstance(record, dict):
            records.append(record)
        elif strict:
            raise ValueError(f"{path}:{number}: record is not an object")
    return records


# ---------------------------------------------------------------------------
# Metrics rollup.
# ---------------------------------------------------------------------------


def _histogram_percentile(snapshot: Mapping, q: float) -> Optional[float]:
    """Percentile of an exported histogram snapshot (None when empty)."""
    counts = snapshot.get("counts") or []
    underflow = int(snapshot.get("underflow", 0))
    overflow = int(snapshot.get("overflow", 0))
    total = sum(counts) + underflow + overflow
    if total == 0:
        return None
    lo = float(snapshot["lo"])
    hi = float(snapshot["hi"])
    width = (hi - lo) / max(len(counts), 1)
    target = q / 100.0 * total
    cumulative = float(underflow)
    if underflow and target <= cumulative:
        return lo
    for index, count in enumerate(counts):
        if count and target <= cumulative + count:
            fraction = (target - cumulative) / count
            return lo + (index + fraction) * width
        cumulative += count
    return hi


def metrics_rollup(machines: Sequence[Mapping]) -> Dict[str, object]:
    """A small numeric summary of one run's metrics artifact machines.

    Aggregates across every machine the run built: totals for
    injections/deliveries/credit stalls, the time-mean in-flight packet
    count, and p50/p99 end-to-end packet latency from the exported
    histogram.  Pure arithmetic over the (byte-identical) artifact
    payloads, so the rollup is deterministic across ``--jobs`` splits.
    """
    injections = deliveries = stalls = 0
    inflight_weight = 0.0
    inflight_time = 0.0
    hist_counts: List[int] = []
    hist_meta: Optional[Mapping] = None
    underflow = overflow = 0
    for machine in machines:
        counters = machine.get("counters", {})
        injections += sum(counters.get("machine/injections", ()))
        deliveries += sum(counters.get("machine/deliveries", ()))
        stalls += sum(counters.get("link/credit_stalls", ()))
        means = machine.get("gauges", {}).get("machine/in_flight")
        if means:
            end_ns = float(machine.get("end_ns", 0.0))
            period = float(machine.get("period_ns", 1.0))
            span = end_ns if end_ns > 0 else period * len(means)
            inflight_weight += sum(means) * (span / len(means))
            inflight_time += span
        snapshot = machine.get("stats", {}).get("histograms", {}).get(
            "packet_latency_ns"
        )
        if snapshot:
            counts = list(snapshot.get("counts") or [])
            if not hist_counts:
                hist_counts = counts
                hist_meta = snapshot
            elif len(counts) == len(hist_counts):
                hist_counts = [a + b for a, b in zip(hist_counts, counts)]
            underflow += int(snapshot.get("underflow", 0))
            overflow += int(snapshot.get("overflow", 0))
    merged = (
        {
            "lo": hist_meta["lo"],
            "hi": hist_meta["hi"],
            "counts": hist_counts,
            "underflow": underflow,
            "overflow": overflow,
        }
        if hist_meta is not None
        else None
    )
    return {
        "machines": len(machines),
        "injections": injections,
        "deliveries": deliveries,
        "credit_stalls": stalls,
        "mean_in_flight": (
            inflight_weight / inflight_time if inflight_time else None
        ),
        "latency_p50_ns": (
            _histogram_percentile(merged, 50.0) if merged else None
        ),
        "latency_p99_ns": (
            _histogram_percentile(merged, 99.0) if merged else None
        ),
    }


# ---------------------------------------------------------------------------
# The ledger itself.
# ---------------------------------------------------------------------------


class RunLedger:
    """Appender/reader for one ledger directory beside a result cache."""

    def __init__(self, directory: Path, rev: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self.rev = rev if rev is not None else working_tree_rev()

    @property
    def record_path(self) -> Path:
        """The deterministic run-record file (``ledger.jsonl``)."""
        return self.directory / LEDGER_FILENAME

    @property
    def status_path(self) -> Path:
        """The segregated, non-deterministic status file."""
        return self.directory / STATUS_FILENAME

    def record_run(
        self,
        sweep: str,
        grid_index: int,
        experiment: str,
        version: int,
        digest: str,
        params: Mapping[str, object],
        result: Mapping[str, object],
        cached: bool,
        observed: bool,
        metrics_machines: Optional[Sequence[Mapping]] = None,
    ) -> Dict[str, object]:
        """Build and append one deterministic run record."""
        record: Dict[str, object] = {
            "schema": LEDGER_SCHEMA_ID,
            "rev": self.rev,
            "sweep": sweep,
            "grid_index": grid_index,
            "experiment": experiment,
            "version": version,
            "digest": digest,
            "params": dict(params),
            "cached": bool(cached),
            "observed": bool(observed),
            "result": flatten_numeric(result),
            "metrics": (
                metrics_rollup(metrics_machines)
                if metrics_machines
                else None
            ),
        }
        append_jsonl(self.record_path, record)
        return record

    def records(self, strict: bool = True) -> List[Dict[str, object]]:
        return read_jsonl(self.record_path, strict=strict)

    def status_events(self, strict: bool = False) -> List[Dict[str, object]]:
        return read_jsonl(self.status_path, strict=strict)


# ---------------------------------------------------------------------------
# Queries: list, show, diff.
# ---------------------------------------------------------------------------


def latest_records(
    records: Iterable[Mapping],
) -> Dict[str, Dict[str, object]]:
    """The most recent record per digest (file order == append order)."""
    latest: Dict[str, Dict[str, object]] = {}
    for record in records:
        digest = record.get("digest")
        if isinstance(digest, str) and digest:
            latest[digest] = dict(record)
    return latest


def resolve_digest(records: Iterable[Mapping], prefix: str) -> str:
    """The unique ledger digest starting with ``prefix``.

    Raises ``KeyError`` when nothing matches and ``ValueError`` when the
    prefix is ambiguous.
    """
    matches = sorted(
        {
            record["digest"]
            for record in records
            if isinstance(record.get("digest"), str)
            and record["digest"].startswith(prefix)
        }
    )
    if not matches:
        raise KeyError(f"no ledger record for digest {prefix!r}")
    if len(matches) > 1:
        shown = ", ".join(d[:16] for d in matches)
        raise ValueError(f"digest prefix {prefix!r} is ambiguous: {shown}")
    return matches[0]


def _numeric_section(
    a: Mapping, b: Mapping
) -> Dict[str, Dict[str, Optional[float]]]:
    """Per-key deltas of two flat numeric mappings (differing keys only)."""
    deltas: Dict[str, Dict[str, Optional[float]]] = {}
    for key in sorted(set(a) | set(b)):
        left, right = a.get(key), b.get(key)
        if left == right:
            continue
        entry: Dict[str, Optional[float]] = {"a": left, "b": right}
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            entry["delta"] = right - left
            entry["ratio"] = right / left if left else None
        deltas[key] = entry
    return deltas


def diff_records(a: Mapping, b: Mapping) -> Dict[str, object]:
    """Structured comparison of two ledger records.

    Sections: ``params`` (per-key differences), ``result`` (numeric
    deltas/ratios over the flattened result surface), and ``metrics``
    (rollup deltas, when both runs recorded one).  ``identical`` is
    true exactly when every section is empty — a digest diffed against
    itself always reports zero deltas.
    """
    params = {
        key: {"a": a.get("params", {}).get(key), "b": b.get("params", {}).get(key)}
        for key in sorted(
            set(a.get("params", {})) | set(b.get("params", {}))
        )
        if a.get("params", {}).get(key) != b.get("params", {}).get(key)
    }
    result = _numeric_section(a.get("result") or {}, b.get("result") or {})
    metrics_a = flatten_numeric(a.get("metrics") or {})
    metrics_b = flatten_numeric(b.get("metrics") or {})
    metrics = _numeric_section(metrics_a, metrics_b)
    return {
        "a": {key: a.get(key) for key in ("digest", "rev", "experiment", "version")},
        "b": {key: b.get(key) for key in ("digest", "rev", "experiment", "version")},
        "params": params,
        "result": result,
        "metrics": metrics,
        "identical": not (params or result or metrics),
    }


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def diff_table(diff: Mapping) -> str:
    """Human-readable rendering of one :func:`diff_records` payload."""
    a, b = diff["a"], diff["b"]
    lines = [
        f"a: {a['digest'][:16]} {a['experiment']} v{a['version']} @ {a['rev']}",
        f"b: {b['digest'][:16]} {b['experiment']} v{b['version']} @ {b['rev']}",
    ]
    if diff["identical"]:
        lines.append("no deltas: records are identical")
        return "\n".join(lines)
    for section in ("params", "result", "metrics"):
        entries = diff[section]
        if not entries:
            continue
        lines.append(f"{section}:")
        for key, entry in entries.items():
            left = _format_value(entry.get("a"))
            right = _format_value(entry.get("b"))
            extra = ""
            if entry.get("ratio") is not None:
                extra = f"  ({entry['ratio']:.3f}x)"
            lines.append(f"  {key}: {left} -> {right}{extra}")
    return "\n".join(lines)


def ledger_table(records: Sequence[Mapping]) -> str:
    """The ``ledger list`` table: one row per record, append order."""
    rows = []
    for record in records:
        metrics = record.get("metrics")
        rows.append(
            [
                str(record.get("digest", ""))[:16],
                str(record.get("experiment", "")),
                f"v{record.get('version', '?')}",
                str(record.get("sweep", "")),
                str(record.get("rev", "")),
                "hit" if record.get("cached") else "run",
                "yes" if record.get("observed") else "-",
                (
                    f"{metrics['deliveries']}"
                    if isinstance(metrics, Mapping)
                    and "deliveries" in metrics
                    else "-"
                ),
            ]
        )
    header = (
        "digest",
        "experiment",
        "ver",
        "sweep",
        "rev",
        "cache",
        "observed",
        "delivered",
    )
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows), 1)
        if rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(f"{header[i]:<{widths[i]}}" for i in range(len(header)))
    ]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(f"{row[i]:<{widths[i]}}" for i in range(len(header)))
        )
    return "\n".join(lines)
