"""Packet-lifecycle tracing with deterministic, jobs-invariant sampling.

A traced packet carries a stable identity ``(node_id, seq)`` assigned at
injection: ``node_id`` is the injecting node's linear id and ``seq`` a
per-chip injection sequence number.  Neither depends on process-global
state (unlike ``Packet.pid``, an ``itertools.count`` shared by every
machine in the process), so the same packet gets the same identity no
matter how a sweep is split across worker processes.

Whether a packet is traced is decided by hashing that identity with
:func:`~repro.engine.seeding.derive_seed`:

    ``derive_seed(trace_seed, "packet", node_id, seq) < trace_sample * 2**31``

— a pure function of config, so ``--jobs 1`` and ``--jobs N`` produce
byte-identical traces.

The recorded spans are *closed intervals in simulated time* taken at
existing event boundaries (no new simulator events):

* ``inject``   — send-overhead window at the source chip
* ``queue``    — residency in one link VC queue (enqueue → grant)
* ``transmit`` — flit serialization on the wire (grant → arrival)
* ``deliver``  — an instant marker at final delivery

:func:`chrome_trace_events` converts the span list to Chrome
trace-event JSON (the ``traceEvents`` array Perfetto loads directly):
complete events (``ph: "X"``) with microsecond timestamps, one ``pid``
per machine and one ``tid`` per traced packet.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..engine.seeding import derive_seed

__all__ = ["PacketTracer", "chrome_trace_events"]

_HASH_SPACE = float(2**31)


class PacketTracer:
    """Collects lifecycle spans for the deterministically sampled packets."""

    def __init__(self, trace_sample: float, trace_seed: int) -> None:
        self.trace_sample = trace_sample
        self.trace_seed = trace_seed
        self._threshold = trace_sample * _HASH_SPACE
        self._spans: List[dict] = []

    def selects(self, node_id: int, seq: int) -> bool:
        """Deterministic trace-sampling decision for one packet identity."""
        if self.trace_sample >= 1.0:
            return True
        if self.trace_sample <= 0.0:
            return False
        return derive_seed(self.trace_seed, "packet", node_id, seq) < self._threshold

    def span(
        self,
        trace_id: Tuple[int, int],
        kind: str,
        start_ns: float,
        end_ns: float,
        **args: object,
    ) -> None:
        """Record one closed interval of the packet's lifecycle."""
        record: Dict[str, object] = {
            "trace_id": list(trace_id),
            "kind": kind,
            "start_ns": start_ns,
            "end_ns": end_ns,
        }
        if args:
            record["args"] = args
        self._spans.append(record)

    def instant(self, trace_id: Tuple[int, int], kind: str, ns: float, **args: object) -> None:
        """Record an instantaneous lifecycle marker."""
        self.span(trace_id, kind, ns, ns, **args)

    @property
    def span_count(self) -> int:
        return len(self._spans)

    def jsonable(self) -> Dict[str, object]:
        """The trace layer as a JSON-able mapping (spans in record order).

        Span record order is itself deterministic: spans are appended at
        simulator event boundaries and the event order of a run is fixed
        by its config and seeds.
        """
        return {
            "trace_sample": self.trace_sample,
            "trace_seed": self.trace_seed,
            "spans": self._spans,
        }


def chrome_trace_events(payload: Dict[str, object], pid: int = 0) -> List[dict]:
    """Chrome trace-event records for one machine's trace payload.

    Packets map to ``tid``s (one lane per traced packet, named by its
    stable identity); every span becomes a complete event (``ph: "X"``)
    with timestamps in microseconds, plus an instant event (``ph: "i"``)
    for zero-width markers such as delivery.
    """
    events: List[dict] = []
    tids: Dict[Tuple[int, int], int] = {}
    for span in payload.get("spans", []):
        trace_id = tuple(span["trace_id"])
        if trace_id not in tids:
            tid = len(tids)
            tids[trace_id] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"packet n{trace_id[0]}#{trace_id[1]}"},
                }
            )
        tid = tids[trace_id]
        start_us = span["start_ns"] / 1000.0
        dur_us = (span["end_ns"] - span["start_ns"]) / 1000.0
        event: Dict[str, object] = {
            "name": span["kind"],
            "pid": pid,
            "tid": tid,
            "ts": start_us,
        }
        if dur_us > 0:
            event["ph"] = "X"
            event["dur"] = dur_us
        else:
            event["ph"] = "i"
            event["s"] = "t"
        if "args" in span:
            event["args"] = span["args"]
        events.append(event)
    return events
