"""Live sweep status: per-grid-point heartbeats and the progress board.

Workers (and the coordinating runner) append one event per state change
to ``<cache-root>/ledger/status.jsonl``:

    queued -> running -> done | failed        (executed points)
    cache-hit                                 (points served from cache)

Events carry wall-clock timestamps, worker pids, and elapsed seconds —
all **non-deterministic** execution telemetry, which is exactly why
they live in their own file, segregated from the byte-stable
``ledger.jsonl`` run records (:mod:`repro.observe.ledger`).  Appends
use the same single-write ``O_APPEND`` discipline, so any number of
workers can heartbeat concurrently without corrupting the file.

``repro-runner status [--watch]`` folds the event stream into an ASCII
progress board (per-sweep progress bar, throughput-based ETA,
per-worker health); the runner prints an end-of-sweep summary (hit
rate, slowest points, stragglers) when a sweep completes.

Heartbeats are written only between simulations — never inside one —
so the zero-perturbation contract holds: results and cache digests are
byte-identical with status recording on or off.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .schema import STATUS_SCHEMA_ID
from .ledger import append_jsonl

__all__ = [
    "STATES",
    "append_status",
    "end_of_sweep_summary",
    "fold_status",
    "render_status_board",
]

#: Every state a grid point can report, in lifecycle order.
STATES = ("queued", "running", "done", "cache-hit", "failed")

#: States after which a point needs no further work.
TERMINAL_STATES = ("done", "cache-hit", "failed")


def append_status(
    path: Path,
    sweep: str,
    index: int,
    state: str,
    digest: Optional[str] = None,
    elapsed_s: Optional[float] = None,
    t: Optional[float] = None,
) -> Dict[str, object]:
    """Append one heartbeat event (module-level: picklable for workers)."""
    if state not in STATES:
        raise ValueError(f"unknown status state {state!r}; expected {STATES}")
    event: Dict[str, object] = {
        "schema": STATUS_SCHEMA_ID,
        "sweep": sweep,
        "index": int(index),
        "state": state,
        "t": float(t if t is not None else time.time()),
        "worker": os.getpid(),
    }
    if digest is not None:
        event["digest"] = digest
    if elapsed_s is not None:
        event["elapsed_s"] = float(elapsed_s)
    append_jsonl(path, event)
    return event


def fold_status(events: Sequence[Mapping]) -> Dict[str, object]:
    """Fold an event stream into current per-sweep / per-worker state.

    Returns ``{"sweeps": {label: {"points": {index: last_event},
    "first_t", "last_t"}}, "workers": {pid: last_event}}``.  Events are
    applied in file order; within one point, lifecycle order and append
    order agree (a worker writes ``running`` before ``done``).
    """
    sweeps: Dict[str, Dict[str, object]] = {}
    workers: Dict[int, Mapping] = {}
    for event in events:
        label = str(event.get("sweep", ""))
        index = event.get("index")
        if not isinstance(index, int):
            continue
        bucket = sweeps.setdefault(
            label, {"points": {}, "first_t": None, "last_t": None}
        )
        points: Dict[int, Mapping] = bucket["points"]  # type: ignore[assignment]
        previous = points.get(index)
        # A stale `queued` replayed after a terminal state never rolls
        # a point back (can happen when a sweep is re-run into the same
        # status file: the re-run's queued events supersede normally,
        # which is the desired "latest run wins" reading).
        points[index] = event
        del previous
        t = event.get("t")
        if isinstance(t, (int, float)):
            if bucket["first_t"] is None or t < bucket["first_t"]:
                bucket["first_t"] = float(t)
            if bucket["last_t"] is None or t > bucket["last_t"]:
                bucket["last_t"] = float(t)
        worker = event.get("worker")
        if isinstance(worker, int) and event.get("state") != "queued":
            workers[worker] = event
    return {"sweeps": sweeps, "workers": workers}


def _state_counts(points: Mapping[int, Mapping]) -> Dict[str, int]:
    counts = {state: 0 for state in STATES}
    for event in points.values():
        state = str(event.get("state", ""))
        if state in counts:
            counts[state] += 1
    return counts


def _progress_bar(finished: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    cells = round(finished / total * width)
    return "[" + "#" * cells + "." * (width - cells) + "]"


def _eta_seconds(
    counts: Mapping[str, int], first_t: Optional[float], now: float
) -> Optional[float]:
    """Throughput-based ETA: remaining points / observed completion rate."""
    completed = counts["done"] + counts["failed"]
    remaining = counts["queued"] + counts["running"]
    if remaining == 0:
        return 0.0
    if completed == 0 or first_t is None or now <= first_t:
        return None
    rate = completed / (now - first_t)
    return remaining / rate if rate > 0 else None


def _format_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "ETA ?"
    if eta <= 0:
        return "done"
    if eta < 120:
        return f"ETA {eta:.0f}s"
    return f"ETA {eta / 60:.1f}m"


def render_status_board(
    events: Sequence[Mapping], now: Optional[float] = None
) -> str:
    """The ASCII progress board for one status event stream."""
    if now is None:
        now = time.time()
    folded = fold_status(events)
    sweeps: Mapping[str, Mapping] = folded["sweeps"]  # type: ignore[assignment]
    if not sweeps:
        return "no sweep status recorded"
    lines: List[str] = []
    for label in sorted(sweeps):
        bucket = sweeps[label]
        points: Mapping[int, Mapping] = bucket["points"]  # type: ignore[assignment]
        counts = _state_counts(points)
        total = len(points)
        finished = sum(counts[state] for state in TERMINAL_STATES)
        eta = _eta_seconds(counts, bucket.get("first_t"), now)
        parts = [f"{counts['done']} done", f"{counts['cache-hit']} cache-hit"]
        if counts["failed"]:
            parts.append(f"{counts['failed']} FAILED")
        parts.append(f"{counts['running']} running")
        parts.append(f"{counts['queued']} queued")
        lines.append(
            f"{label}: {finished}/{total} finished "
            f"{_progress_bar(finished, total)} "
            f"({', '.join(parts)})  {_format_eta(eta)}"
        )
        for index in sorted(points):
            event = points[index]
            if event.get("state") != "running":
                continue
            t = event.get("t")
            age = f" for {now - t:.1f}s" if isinstance(t, (int, float)) else ""
            lines.append(
                f"  point #{index} running on worker "
                f"{event.get('worker', '?')}{age}"
            )
    workers: Mapping[int, Mapping] = folded["workers"]  # type: ignore[assignment]
    if workers:
        lines.append("workers:")
        for pid in sorted(workers):
            event = workers[pid]
            t = event.get("t")
            age = (
                f"{now - t:.1f}s ago"
                if isinstance(t, (int, float))
                else "at ?"
            )
            lines.append(
                f"  {pid}: {event.get('state')} #{event.get('index')} "
                f"({event.get('sweep')}) {age}"
            )
    return "\n".join(lines)


def all_points_terminal(events: Sequence[Mapping]) -> bool:
    """True when every known grid point reached a terminal state."""
    folded = fold_status(events)
    sweeps: Mapping[str, Mapping] = folded["sweeps"]  # type: ignore[assignment]
    if not sweeps:
        return False
    for bucket in sweeps.values():
        for event in bucket["points"].values():  # type: ignore[union-attr]
            if event.get("state") not in TERMINAL_STATES:
                return False
    return True


def end_of_sweep_summary(
    label: str,
    runs: Sequence[Tuple[int, bool, float]],
) -> str:
    """The terminal end-of-sweep summary (hit rate, slowest, stragglers).

    ``runs`` is ``(grid_index, cached, elapsed_s)`` per run, in grid
    order — duck-typed so this module needs nothing from the runner.
    """
    total = len(runs)
    hits = sum(1 for __, cached, __unused in runs if cached)
    executed = [(index, elapsed) for index, cached, elapsed in runs if not cached]
    lines = [
        f"{label}: {total} points, {hits} cache hits "
        f"({hits / total:.0%} hit rate)" if total else f"{label}: 0 points"
    ]
    if executed:
        wall = sum(elapsed for __, elapsed in executed)
        slowest = sorted(executed, key=lambda item: -item[1])[:3]
        slowest_text = ", ".join(
            f"#{index} {elapsed:.2f}s" for index, elapsed in slowest
        )
        lines.append(
            f"  executed {len(executed)} in {wall:.2f}s simulated-work "
            f"wall; slowest: {slowest_text}"
        )
        ordered = sorted(elapsed for __, elapsed in executed)
        median = ordered[len(ordered) // 2]
        stragglers = [
            f"#{index}"
            for index, elapsed in executed
            if median > 0 and elapsed > 2.0 * median
        ]
        if stragglers:
            lines.append(
                f"  stragglers (>2x median {median:.2f}s): "
                f"{', '.join(stragglers)}"
            )
    return "\n".join(lines)
