"""The metrics layer: deterministically sampled, sim-slice-keyed series.

:class:`MetricsHub` extends :class:`~repro.engine.stats.StatsRegistry`
(counters, summaries, histograms, raw time series all still work) with
two slice-keyed primitives:

* :class:`SliceGauge` — a time-weighted gauge.  Instrumentation points
  push value *changes* (``update(now, value)``); the gauge integrates
  value x time and reports the mean per fixed ``period_ns`` slice.
  Because it accumulates at existing event boundaries, it needs **no
  simulator events of its own** — observation can never perturb event
  order, which is what keeps observed and unobserved runs byte-identical.
* :class:`SliceCounter` — event counts bucketed by the slice the event
  fell in (escape fallbacks, misroutes, credit stalls, fault epochs).

Both are exact integrals/counts of the simulated trajectory, so their
JSON exports are byte-identical for any ``--jobs`` split.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..engine.stats import StatsRegistry

__all__ = ["MetricsHub", "SliceCounter", "SliceGauge", "slice_count"]


def slice_count(end_ns: float, period_ns: float) -> int:
    """Slices covering ``[0, end_ns]`` (at least one)."""
    if end_ns <= 0:
        return 1
    return int(math.floor(end_ns / period_ns)) + 1


class SliceGauge:
    """Time-weighted mean of a piecewise-constant value, per slice."""

    __slots__ = ("period_ns", "value", "_last_ns", "_sums")

    def __init__(self, period_ns: float) -> None:
        self.period_ns = period_ns
        self.value = 0.0
        self._last_ns = 0.0
        self._sums: Dict[int, float] = {}

    def update(self, now: float, value: float) -> None:
        """The gauge changed to ``value`` at simulated time ``now``."""
        self._accumulate(now)
        self.value = value

    def _accumulate(self, now: float) -> None:
        last, value, period = self._last_ns, self.value, self.period_ns
        if now > last and value:
            first = int(last // period)
            final = int(now // period)
            sums = self._sums
            if first == final:
                sums[first] = sums.get(first, 0.0) + (now - last) * value
            else:
                edge = (first + 1) * period
                sums[first] = sums.get(first, 0.0) + (edge - last) * value
                for index in range(first + 1, final):
                    sums[index] = sums.get(index, 0.0) + period * value
                tail = now - final * period
                if tail:
                    sums[final] = sums.get(final, 0.0) + tail * value
        if now > last:
            self._last_ns = now

    def close(self, now: float) -> None:
        """Account the held value up to the end of the run."""
        self._accumulate(now)

    def means(self, end_ns: float) -> List[float]:
        """Per-slice time-weighted means over ``[0, end_ns]``."""
        period = self.period_ns
        count = slice_count(end_ns, period)
        out = []
        for index in range(count):
            width = min(period, end_ns - index * period) if end_ns else period
            if width <= 0:
                width = period
            out.append(self._sums.get(index, 0.0) / width)
        return out


class SliceCounter:
    """Event counts bucketed by the sim slice the event fell in."""

    __slots__ = ("period_ns", "_counts", "total")

    def __init__(self, period_ns: float) -> None:
        self.period_ns = period_ns
        self.total = 0
        self._counts: Dict[int, int] = {}

    def add(self, now: float, amount: int = 1) -> None:
        index = int(now // self.period_ns)
        self._counts[index] = self._counts.get(index, 0) + amount
        self.total += amount

    def counts(self, end_ns: float) -> List[int]:
        """Per-slice counts over ``[0, end_ns]``."""
        return [
            self._counts.get(index, 0)
            for index in range(slice_count(end_ns, self.period_ns))
        ]


class MetricsHub(StatsRegistry):
    """A :class:`StatsRegistry` plus slice-keyed gauges and counters.

    One hub belongs to one machine's observer; the sampling cadence is
    fixed at construction from ``MachineConfig.observe.period_ns``.
    """

    def __init__(self, period_ns: float) -> None:
        super().__init__()
        if period_ns <= 0:
            raise ValueError("period_ns must be > 0")
        self.period_ns = period_ns
        self._slice_gauges: Dict[str, SliceGauge] = {}
        self._slice_counters: Dict[str, SliceCounter] = {}

    def slice_gauge(self, name: str) -> SliceGauge:
        if name not in self._slice_gauges:
            self._slice_gauges[name] = SliceGauge(self.period_ns)
        return self._slice_gauges[name]

    def slice_counter(self, name: str) -> SliceCounter:
        if name not in self._slice_counters:
            self._slice_counters[name] = SliceCounter(self.period_ns)
        return self._slice_counters[name]

    def close(self, end_ns: float) -> None:
        """Flush every gauge's held value through the end of the run."""
        for gauge in self._slice_gauges.values():
            gauge.close(end_ns)

    def slices_jsonable(self, end_ns: float) -> Dict[str, object]:
        """The slice-keyed layer as a JSON-able mapping."""
        return {
            "period_ns": self.period_ns,
            "slices": slice_count(end_ns, self.period_ns),
            "gauges": {
                name: gauge.means(end_ns)
                for name, gauge in sorted(self._slice_gauges.items())
            },
            "counters": {
                name: counter.counts(end_ns)
                for name, counter in sorted(self._slice_counters.items())
            },
        }
