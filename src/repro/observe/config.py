"""Observation configuration: what to record and how finely.

:class:`ObserveConfig` is the single switchboard for the observability
subsystem.  It is frozen (safe to embed in the frozen
:class:`~repro.netsim.config.MachineConfig`, to pickle into worker
processes, and to compare in tests) and **off by default**: a machine
built without one — or with ``enabled`` False — takes the exact
pre-observability code paths, so results and cache digests are
byte-identical to an uninstrumented build.

Everything here is deterministic by construction: the metrics layer
samples by *simulated* time slice (``period_ns``), never by wall clock,
and the tracing layer selects packets with a
:func:`~repro.engine.seeding.derive_seed` hash of the packet's stable
identity, so two runs of the same config produce byte-identical
artifacts regardless of ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObserveConfig"]


@dataclass(frozen=True)
class ObserveConfig:
    """What the observer records on one machine.

    Attributes:
        metrics: Record the :class:`~repro.observe.metrics.MetricsHub`
            time-series (per-link/per-VC occupancy, credit stalls,
            arbitration conflicts, injection/ejection depths, routing
            and fence and fault events).
        trace: Record packet-lifecycle spans for the sampled packets.
        period_ns: Width of one metrics slice in simulated nanoseconds;
            every slice-keyed gauge and counter aggregates over this
            cadence.
        trace_sample: Fraction of packets traced, selected by a
            ``derive_seed`` hash of the packet's ``(node, sequence)``
            identity — 1.0 traces everything, 0.0 nothing.
        trace_seed: Salt for the trace-sampling hash, so disjoint trace
            populations can be drawn from one workload.
    """

    metrics: bool = True
    trace: bool = False
    period_ns: float = 100.0
    trace_sample: float = 1.0
    trace_seed: int = 0

    def __post_init__(self) -> None:
        if self.period_ns <= 0:
            raise ValueError("period_ns must be > 0")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1]")

    @property
    def enabled(self) -> bool:
        """Whether this config asks for any observation at all."""
        return self.metrics or self.trace
