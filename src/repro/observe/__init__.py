"""``repro.observe`` — deterministic observability for the simulators.

Three layers over one switchboard (:class:`ObserveConfig`):

* **Metrics** (:mod:`repro.observe.metrics`) — sim-slice-keyed gauges
  and counters plus the full :class:`~repro.engine.stats.StatsRegistry`
  namespace, recorded at existing event boundaries (zero new events).
* **Tracing** (:mod:`repro.observe.trace`) — packet-lifecycle spans for
  a ``derive_seed``-sampled packet population, exportable as
  Chrome-trace/Perfetto JSON.
* **Profiling** (:mod:`repro.observe.profile`) — host wall-clock phase
  timers and cProfile-based per-subsystem time shares.

Cross-run accounting builds on the same discipline:

* **Run ledger** (:mod:`repro.observe.ledger`) — a persistent,
  append-only JSONL record of every execution beside the result cache,
  deterministic by construction (no wall clocks, grid-order appends).
* **Live status** (:mod:`repro.observe.status`) — per-grid-point
  heartbeat events and the ASCII progress board, segregated into their
  own file because they *are* wall-clock telemetry.

The contract: with observation off (the default) every machine takes
the exact pre-observability code paths, and with it on the simulated
trajectory is unchanged — only artifacts appear, byte-identical for any
``--jobs`` split.
"""

from .config import ObserveConfig
from .context import (
    activate,
    active_observe_config,
    collect,
    deactivate,
    observing,
    register_observer,
)
from .ledger import RunLedger, ledger_dir
from .metrics import MetricsHub, SliceCounter, SliceGauge
from .status import append_status, render_status_board
from .trace import PacketTracer, chrome_trace_events

__all__ = [
    "MetricsHub",
    "ObserveConfig",
    "PacketTracer",
    "RunLedger",
    "SliceCounter",
    "SliceGauge",
    "activate",
    "active_observe_config",
    "append_status",
    "chrome_trace_events",
    "collect",
    "deactivate",
    "ledger_dir",
    "observing",
    "register_observer",
    "render_status_board",
]
