"""Open-loop load sweeps: warmup / measure / drain on a NetworkMachine.

The harness drives a :class:`~repro.netsim.machine.NetworkMachine` the
way interconnect papers characterize fabrics: every node runs an
independent injection process (:mod:`repro.traffic.injection`) feeding a
spatial pattern (:mod:`repro.traffic.patterns`), and the measurement
follows the standard three-phase discipline:

1. **warmup** — traffic flows but nothing is recorded, letting queues
   reach steady state;
2. **measure** — packets injected in this window are latency-tracked,
   and flits delivered in this window define accepted throughput;
3. **drain** — injection stops and the simulation keeps running so
   measure-window packets still in flight can complete (up to a bound,
   so a saturated network still terminates).

Latency is reported per traffic class (requests, and responses when a
``read_fraction`` of the load is remote reads) through the same
percentile summaries (:func:`repro.analysis.aggregate.summarize_values`)
the figure-5 tables use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.aggregate import summarize_values
from ..engine.seeding import derive_seed
from ..netsim.machine import NetworkMachine
from ..netsim.packet import Packet, PacketKind, TrafficClass
from ..topology.torus import Coord
from .injection import InjectionProcess, offered_load_to_rate
from .patterns import TrafficPattern

__all__ = ["ClassWindowStats", "OpenLoopHarness", "OpenLoopResult"]


@dataclass
class ClassWindowStats:
    """Measure-window accounting for one traffic class."""

    injected_packets: int = 0
    injected_flits: int = 0
    delivered_packets: int = 0
    delivered_flits_in_window: int = 0
    latencies_ns: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "injected_packets": self.injected_packets,
            "injected_flits": self.injected_flits,
            "delivered_packets": self.delivered_packets,
            "delivered_flits_in_window": self.delivered_flits_in_window,
        }
        if self.latencies_ns:
            record["latency_ns"] = summarize_values(self.latencies_ns)
        return record


@dataclass
class OpenLoopResult:
    """One load point: offered vs accepted load and per-class latency."""

    pattern: str
    routing: str
    offered_load: float
    process: str
    seed: int
    warmup_ns: float
    measure_ns: float
    drain_ns: float
    num_nodes: int
    num_sources: int
    offered_load_measured: float
    accepted_load: float
    in_flight_at_end: int
    classes: Dict[str, ClassWindowStats]

    @property
    def request_latency_ns(self) -> Optional[Dict[str, object]]:
        stats = self.classes.get(TrafficClass.REQUEST.value)
        if stats is None or not stats.latencies_ns:
            return None
        return summarize_values(stats.latencies_ns)

    def to_dict(self) -> Dict[str, object]:
        return {
            "pattern": self.pattern,
            "routing": self.routing,
            "offered_load": self.offered_load,
            "process": self.process,
            "seed": self.seed,
            "warmup_ns": self.warmup_ns,
            "measure_ns": self.measure_ns,
            "drain_ns": self.drain_ns,
            "num_nodes": self.num_nodes,
            "num_sources": self.num_sources,
            "offered_load_measured": self.offered_load_measured,
            "accepted_load": self.accepted_load,
            "in_flight_at_end": self.in_flight_at_end,
            "classes": {name: stats.to_dict()
                        for name, stats in sorted(self.classes.items())},
        }


class OpenLoopHarness:
    """Runs one open-loop load point on a :class:`NetworkMachine`."""

    def __init__(self, machine: NetworkMachine, pattern: TrafficPattern,
                 offered_load: float, seed: int = 0,
                 process: str = "bernoulli", read_fraction: float = 0.0,
                 warmup_ns: float = 400.0, measure_ns: float = 1600.0,
                 drain_ns: Optional[float] = None) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if warmup_ns < 0 or measure_ns <= 0:
            raise ValueError("warmup must be >= 0 and measure > 0")
        self.machine = machine
        self.pattern = pattern
        self.offered_load = offered_load
        self.seed = seed
        self.process = process
        self.read_fraction = read_fraction
        self.warmup_ns = warmup_ns
        self.measure_ns = measure_ns
        # The drain bound keeps saturated runs finite; by default it is as
        # long as warmup + measure, ample for everything below saturation.
        self.drain_ns = (drain_ns if drain_ns is not None
                         else warmup_ns + measure_ns)
        self._stats: Dict[str, ClassWindowStats] = {}
        self._inject_end_ns = warmup_ns + measure_ns

    # ------------------------------------------------------------------
    # Per-packet plumbing.
    # ------------------------------------------------------------------

    def _class_stats(self, traffic_class: TrafficClass) -> ClassWindowStats:
        name = traffic_class.value
        if name not in self._stats:
            self._stats[name] = ClassWindowStats()
        return self._stats[name]

    def _in_window(self, time_ns: Optional[float]) -> bool:
        return (time_ns is not None
                and self.warmup_ns <= time_ns < self._inject_end_ns)

    def _on_delivered(self, packet: Packet) -> None:
        stats = self._class_stats(packet.traffic_class)
        if self._in_window(packet.delivered_ns):
            stats.delivered_flits_in_window += packet.num_flits
        if self._in_window(packet.injected_ns):
            stats.delivered_packets += 1
            stats.latencies_ns.append(packet.latency_ns)

    def _inject_one(self, node: Coord, rng: random.Random) -> None:
        machine = self.machine
        dst = self.pattern.next_destination(node, rng)
        src_core = machine.random_gc_address(rng)
        dst_core = machine.random_gc_address(rng)
        is_read = (self.read_fraction > 0.0
                   and rng.random() < self.read_fraction)
        kind = PacketKind.READ_REQUEST if is_read else PacketKind.COUNTED_WRITE
        # Route choice is delegated to the machine's routing policy; the
        # draws come from this source's pick stream so sweeps stay
        # deterministic across processes.
        plan = machine.plan_request_route(node, dst, rng, src_core=src_core)
        packet = Packet(
            kind=kind,
            traffic_class=TrafficClass.REQUEST,
            src_node=node,
            dst_node=machine.torus.normalize(dst),
            src_core=src_core,
            dst_core=dst_core,
            num_flits=1,
            payload_words=(1,) if is_read else (1, 0, 0, 0),
            dim_order=plan.phases[0].dim_order,
            slice_index=rng.randrange(2),
            quad_addr=0,
            accumulate=self.pattern.accumulate and not is_read)
        packet.route = plan
        machine.inject(packet)
        if self._in_window(machine.sim.now):
            stats = self._class_stats(TrafficClass.REQUEST)
            stats.injected_packets += 1
            stats.injected_flits += packet.num_flits

    def _start_source(self, node: Coord, rate: float) -> None:
        """Kick off one node's self-rescheduling injection process."""
        machine = self.machine
        sim = machine.sim
        node_id = machine.torus.node_id(node)
        gaps = InjectionProcess(
            rate, kind=self.process,
            rng=random.Random(
                derive_seed(self.seed, "traffic", "gaps", node_id)),
            slot_ns=machine.params.flit_serialization_ns)
        picks = random.Random(
            derive_seed(self.seed, "traffic", "picks", node_id))

        def fire() -> None:
            self._inject_one(node, picks)
            next_time = sim.now + gaps.next_gap_ns()
            if next_time < self._inject_end_ns:
                sim.at(next_time, fire)

        first = sim.now + gaps.next_gap_ns()
        if first < self._inject_end_ns:
            sim.at(first, fire)

    # ------------------------------------------------------------------
    # The measurement.
    # ------------------------------------------------------------------

    def run(self) -> OpenLoopResult:
        machine = self.machine
        sim = machine.sim
        torus = machine.torus
        sources = [node for node in torus.nodes()
                   if self.pattern.sends_from(node)]
        if not sources:
            raise ValueError(
                f"pattern {self.pattern.name!r} has no sending nodes "
                f"on this torus")
        rate = offered_load_to_rate(self.offered_load, machine.params)

        machine.set_record_delivered(False)
        machine.set_delivery_hook(self._on_delivered)
        try:
            for node in sources:
                self._start_source(node, rate)
            sim.run(until=self._inject_end_ns + self.drain_ns)
        finally:
            machine.set_delivery_hook(None)
            machine.set_record_delivered(True)

        slice_flits_per_ns = 1.0 / machine.params.flit_serialization_ns
        window_capacity = (self.measure_ns * len(sources)
                           * slice_flits_per_ns)
        request = self._class_stats(TrafficClass.REQUEST)
        offered_measured = request.injected_flits / window_capacity
        accepted = request.delivered_flits_in_window / window_capacity
        # Responses are injected by remote chips, so only the request
        # class has a meaningful injected-vs-delivered window balance.
        in_flight = request.injected_packets - request.delivered_packets
        return OpenLoopResult(
            pattern=self.pattern.name,
            routing=machine.routing.name,
            offered_load=self.offered_load,
            process=self.process,
            seed=self.seed,
            warmup_ns=self.warmup_ns,
            measure_ns=self.measure_ns,
            drain_ns=self.drain_ns,
            num_nodes=torus.dims.num_nodes,
            num_sources=len(sources),
            offered_load_measured=offered_measured,
            accepted_load=accepted,
            in_flight_at_end=in_flight,
            classes=dict(self._stats))
