"""Open-loop injection processes parameterized by offered load.

Offered load is expressed as a fraction of per-slice channel capacity:
at load 1.0 a node injects flits at exactly the rate one SERDES channel
slice can serialize them (one 192-bit flit per
:attr:`~repro.netsim.params.LatencyParams.flit_serialization_ns`).  The
two processes share that normalization and differ only in gap statistics:

* ``periodic`` — deterministic gaps of exactly ``1 / rate``; the offered
  rate is met exactly, which the accounting tests rely on.
* ``bernoulli`` — a slotted Bernoulli process: every flit slot injects
  with probability ``rate * slot``, giving geometrically distributed
  gaps with the same mean (the memoryless arrivals standard for
  latency-load curves).

Being open-loop, the process never reacts to network backpressure — past
saturation the source keeps offering load and queueing delay diverges,
which is exactly the behavior the saturation analysis measures.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..netsim.params import DEFAULT_PARAMS, LatencyParams

__all__ = ["InjectionProcess", "offered_load_to_rate"]

PROCESS_KINDS = ("bernoulli", "periodic")


def offered_load_to_rate(offered_load: float,
                         params: LatencyParams = DEFAULT_PARAMS,
                         flits_per_packet: int = 1) -> float:
    """Packets per nanosecond per node for one offered-load fraction."""
    if offered_load <= 0:
        raise ValueError("offered load must be positive")
    if flits_per_packet < 1:
        raise ValueError("packets carry at least one flit")
    flits_per_ns = offered_load / params.flit_serialization_ns
    return flits_per_ns / flits_per_packet


class InjectionProcess:
    """Generates inter-injection gaps (ns) for one source node."""

    def __init__(self, rate_per_ns: float, kind: str = "bernoulli",
                 rng: Optional[random.Random] = None,
                 slot_ns: Optional[float] = None) -> None:
        if rate_per_ns <= 0:
            raise ValueError("injection rate must be positive")
        if kind not in PROCESS_KINDS:
            raise ValueError(f"unknown injection process {kind!r}; "
                             f"known: {', '.join(PROCESS_KINDS)}")
        self.rate_per_ns = rate_per_ns
        self.kind = kind
        self.rng = rng if rng is not None else random.Random(0)
        self.slot_ns = (slot_ns if slot_ns is not None
                        else DEFAULT_PARAMS.flit_serialization_ns)
        if kind == "bernoulli":
            self._p = min(1.0, rate_per_ns * self.slot_ns)

    @property
    def mean_gap_ns(self) -> float:
        return 1.0 / self.rate_per_ns

    def next_gap_ns(self) -> float:
        """Time from one injection to the next."""
        if self.kind == "periodic":
            return self.mean_gap_ns
        if self._p >= 1.0:
            return self.slot_ns
        # Geometric number of slots until the next success (support >= 1),
        # by inverse transform; random() is in [0, 1) so 1-u is in (0, 1].
        u = 1.0 - self.rng.random()
        slots = math.floor(math.log(u) / math.log(1.0 - self._p)) + 1
        return slots * self.slot_ns
