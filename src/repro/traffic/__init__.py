"""Synthetic traffic subsystem: patterns, open-loop load sweeps.

This package gives the repository the standard interconnect-evaluation
axis the paper itself never exercises: latency-vs-offered-load curves
under synthetic traffic.  A spatial pattern (:mod:`~repro.traffic.patterns`)
picks destinations, an injection process (:mod:`~repro.traffic.injection`)
paces packets open-loop at a chosen fraction of per-slice channel
capacity, and :class:`~repro.traffic.openloop.OpenLoopHarness` measures
per-traffic-class latency percentiles and accepted throughput through a
warmup/measure/drain discipline.  Saturation detection lives in
:mod:`repro.analysis.saturation`; registered ``load-sweep-*`` sweeps in
:mod:`repro.runner.experiments` fan the load axis out in parallel.

Quick use::

    from repro.netsim import NetworkMachine
    from repro.traffic import OpenLoopHarness, make_pattern

    machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6)
    pattern = make_pattern("uniform", machine.torus)
    result = OpenLoopHarness(machine, pattern, offered_load=0.2).run()
    print(result.request_latency_ns)
"""

from .injection import InjectionProcess, offered_load_to_rate
from .openloop import ClassWindowStats, OpenLoopHarness, OpenLoopResult
from .patterns import (
    PATTERN_NAMES,
    AllToAllReductionPattern,
    BitComplementPattern,
    HotspotPattern,
    NeighborExchangePattern,
    PermutationPattern,
    TornadoPattern,
    TrafficPattern,
    TransposePattern,
    UniformRandomPattern,
    make_pattern,
)
from .surface import measure_load_point, measure_load_sweep

__all__ = [
    "InjectionProcess",
    "offered_load_to_rate",
    "ClassWindowStats",
    "OpenLoopHarness",
    "OpenLoopResult",
    "PATTERN_NAMES",
    "AllToAllReductionPattern",
    "BitComplementPattern",
    "HotspotPattern",
    "NeighborExchangePattern",
    "PermutationPattern",
    "TornadoPattern",
    "TrafficPattern",
    "TransposePattern",
    "UniformRandomPattern",
    "make_pattern",
    "measure_load_point",
    "measure_load_sweep",
]
