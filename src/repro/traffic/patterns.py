"""Synthetic traffic pattern library for the open-loop harness.

Interconnect evaluations characterize a fabric with a standard family of
spatial traffic patterns (Dally & Towles, ch. 3); this module provides
them over the Anton 3 node torus:

* ``uniform`` — every packet picks a destination uniformly at random
  among the other nodes.
* ``transpose`` — a fixed permutation: the mixed-radix digit rotation
  ``(x, y, z) -> (y, z, x)`` (generalized to non-cubic tori via node
  ranks), the classic adversary for dimension-order routing.
* ``bit-complement`` — per-axis coordinate complement
  ``c -> dim - 1 - c``, maximizing average distance.
* ``tornado`` — the half-way ring offset ``(x + ceil(X/2) - 1, y, z)``:
  every node sends nearly half-way around the X ring in the same
  rotational direction, so minimal routing loads only one direction of
  the ring while the other sits idle — the canonical pattern where
  minimal dimension-order routing collapses and Valiant's non-minimal
  spreading wins.
* ``neighbor`` — 3D nearest-neighbor exchange with the six face
  neighbors, the communication skeleton of a halo exchange.
* ``halo`` — the full MD halo exchange *matched to the domain
  decomposition*: destinations are exactly the nodes whose import
  region (home box expanded by the interaction cutoff, see
  :class:`repro.md.decomposition.Decomposition`) overlaps the source
  node's home box, i.e. face, edge and corner neighbors.
* ``hotspot`` — a fraction of packets converge on one hot node, the
  rest are uniform random.
* ``all-to-all`` — an all-to-all reduction: each node cycles round-robin
  over every other node with accumulating counted writes.

Patterns are destination generators: :meth:`TrafficPattern.next_destination`
maps a source node (plus the caller's RNG stream) to a destination node.
Permutation patterns also expose :meth:`permutation` so tests can assert
bijectivity, and set-based patterns expose :meth:`destinations`.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.torus import Coord, Torus3D

__all__ = [
    "PATTERN_NAMES",
    "TrafficPattern",
    "UniformRandomPattern",
    "PermutationPattern",
    "TransposePattern",
    "BitComplementPattern",
    "TornadoPattern",
    "NeighborExchangePattern",
    "HotspotPattern",
    "AllToAllReductionPattern",
    "make_pattern",
]


class TrafficPattern:
    """Base class: a spatial traffic pattern over one torus."""

    #: Registry name (set per subclass instance).
    name: str = "pattern"

    #: Whether generated packets carry the accumulate flag (reductions).
    accumulate: bool = False

    def __init__(self, torus: Torus3D) -> None:
        self.torus = torus

    def sends_from(self, src: Coord) -> bool:
        """Whether ``src`` injects at all (permutation fixed points idle)."""
        return True

    def next_destination(self, src: Coord, rng: random.Random) -> Coord:
        """The destination of the next packet injected at ``src``."""
        raise NotImplementedError


class UniformRandomPattern(TrafficPattern):
    """Uniform random traffic over all nodes except the source."""

    name = "uniform"

    def __init__(self, torus: Torus3D) -> None:
        super().__init__(torus)
        self._nodes = list(torus.nodes())

    def sends_from(self, src: Coord) -> bool:
        return len(self._nodes) > 1

    def next_destination(self, src: Coord, rng: random.Random) -> Coord:
        while True:
            dst = self._nodes[rng.randrange(len(self._nodes))]
            if dst != src:
                return dst


class PermutationPattern(TrafficPattern):
    """A pattern defined by a fixed bijection over the nodes."""

    def permutation(self, src: Coord) -> Coord:
        raise NotImplementedError

    def sends_from(self, src: Coord) -> bool:
        return self.permutation(src) != self.torus.normalize(src)

    def next_destination(self, src: Coord, rng: random.Random) -> Coord:
        return self.permutation(src)


class TransposePattern(PermutationPattern):
    """Digit-rotation transpose: ``(x, y, z) -> (y, z, x)``.

    On a non-cubic torus the rotated coordinates are not valid directly,
    so the permutation maps through node ranks: the source's rank in the
    rotated-dims grid becomes the destination's node id.  On a cubic
    torus this reduces to the plain coordinate rotation.
    """

    name = "transpose"

    def permutation(self, src: Coord) -> Coord:
        x, y, z = self.torus.normalize(src)
        dx, dy, dz = self.torus.dims.as_tuple()
        # Rank of (y, z, x) in the lexicographic (dy, dz, dx) grid.
        rank = (y * dz + z) * dx + x
        return self.torus.coord_of(rank)


class BitComplementPattern(PermutationPattern):
    """Per-axis complement: ``c -> dim - 1 - c`` on every axis."""

    name = "bit-complement"

    def permutation(self, src: Coord) -> Coord:
        coord = self.torus.normalize(src)
        dims = self.torus.dims.as_tuple()
        return tuple(d - 1 - c for c, d in zip(coord, dims))  # type: ignore[return-value]


class TornadoPattern(PermutationPattern):
    """Half-way X-ring offset: ``(x, y, z) -> (x + ceil(X/2) - 1, y, z)``.

    The offset is the same for every node, so all traffic circulates the
    X rings in one rotational direction; with the tie-break convention
    (half-way offsets go positive) minimal routing never uses the X-
    links and saturates at ``1 / offset`` of channel capacity.  Needs
    ``X >= 3`` to be non-degenerate: on smaller rings the offset is zero
    and no node sends (``sends_from`` is false everywhere).
    """

    name = "tornado"

    def permutation(self, src: Coord) -> Coord:
        x, y, z = self.torus.normalize(src)
        dx = self.torus.dims.x
        return ((x + math.ceil(dx / 2) - 1) % dx, y, z)


class NeighborExchangePattern(TrafficPattern):
    """Nearest-neighbor / halo exchange on the torus.

    With ``diagonals=False`` the destination set of each node is its
    distinct face neighbors (the six ``(axis, +-1)`` nodes), the pure
    nearest-neighbor pattern.  With ``diagonals=True`` the set is every
    node within one box step on all three axes — the halo-exchange
    neighborhood an MD domain decomposition exports to when the cutoff
    is smaller than a home-box edge.  :meth:`from_decomposition` derives
    the set from an actual :class:`~repro.md.decomposition.Decomposition`
    and its cutoff, including multi-box reach for large cutoffs.
    """

    def __init__(self, torus: Torus3D, diagonals: bool = False,
                 reach: Optional[Sequence[int]] = None) -> None:
        super().__init__(torus)
        self.name = "halo" if diagonals or reach else "neighbor"
        self._dests: Dict[Coord, Tuple[Coord, ...]] = {}
        for src in torus.nodes():
            if reach is not None:
                dests = self._within_reach(src, reach)
            elif diagonals:
                dests = self._within_reach(src, (1, 1, 1))
            else:
                seen: List[Coord] = []
                for direction, neighbor in torus.neighbors(src):
                    if neighbor != src and neighbor not in seen:
                        seen.append(neighbor)
                dests = tuple(seen)
            self._dests[src] = dests

    @classmethod
    def from_decomposition(cls, decomposition,
                           cutoff: float) -> "NeighborExchangePattern":
        """The halo destinations implied by an MD decomposition.

        Node ``m`` is a destination of node ``n`` exactly when ``m``'s
        import region — its home box expanded by ``cutoff`` on every
        face, periodically — can contain atoms homed on ``n``; per axis
        that holds when the box-index ring distance ``g`` satisfies
        ``(g - 1) * edge < cutoff`` (adjacent boxes share a face, so
        ``g = 1`` always qualifies).
        """
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        torus = decomposition.torus
        edges = decomposition.box_edges()
        reach = []
        for axis, dim in enumerate(torus.dims.as_tuple()):
            edge = float(edges[axis])
            # Largest g with (g - 1) * edge < cutoff, i.e. ceil(cutoff /
            # edge): strict, so a cutoff of exactly one edge reaches only
            # the adjacent box, matching Decomposition.export_mask.
            steps = math.ceil(cutoff / edge)
            reach.append(min(max(steps, 1), dim))
        return cls(torus, reach=tuple(reach))

    def _within_reach(self, src: Coord,
                      reach: Sequence[int]) -> Tuple[Coord, ...]:
        torus = self.torus
        dests = []
        for dst in torus.nodes():
            if dst == src:
                continue
            offsets = torus.offsets(src, dst)
            if all(abs(off) <= r for off, r in zip(offsets, reach)):
                dests.append(dst)
        return tuple(dests)

    def destinations(self, src: Coord) -> Tuple[Coord, ...]:
        return self._dests[self.torus.normalize(src)]

    def sends_from(self, src: Coord) -> bool:
        return bool(self.destinations(src))

    def next_destination(self, src: Coord, rng: random.Random) -> Coord:
        dests = self.destinations(src)
        return dests[rng.randrange(len(dests))]


class HotspotPattern(TrafficPattern):
    """A fraction of packets target one hot node; the rest are uniform."""

    name = "hotspot"

    def __init__(self, torus: Torus3D, hot: Optional[Coord] = None,
                 fraction: float = 0.5) -> None:
        super().__init__(torus)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("hotspot fraction must be in [0, 1]")
        self.hot = torus.normalize(hot) if hot is not None else (0, 0, 0)
        self.fraction = fraction
        self._uniform = UniformRandomPattern(torus)

    def sends_from(self, src: Coord) -> bool:
        return self._uniform.sends_from(src)

    def next_destination(self, src: Coord, rng: random.Random) -> Coord:
        src = self.torus.normalize(src)
        if src != self.hot and rng.random() < self.fraction:
            return self.hot
        return self._uniform.next_destination(src, rng)


class AllToAllReductionPattern(TrafficPattern):
    """All-to-all reduction: round-robin over every other node.

    Models the force-reduction phase of a global sum: each node streams
    accumulating counted writes to every other node in turn, so the
    per-source destination sequence is deterministic and balanced.
    """

    name = "all-to-all"
    accumulate = True

    def __init__(self, torus: Torus3D) -> None:
        super().__init__(torus)
        self._order: Dict[Coord, List[Coord]] = {}
        self._next: Dict[Coord, int] = {}
        nodes = list(torus.nodes())
        for src in nodes:
            others = [n for n in nodes if n != src]
            self._order[src] = others
            self._next[src] = 0

    def sends_from(self, src: Coord) -> bool:
        return bool(self._order[self.torus.normalize(src)])

    def next_destination(self, src: Coord, rng: random.Random) -> Coord:
        src = self.torus.normalize(src)
        order = self._order[src]
        index = self._next[src]
        self._next[src] = (index + 1) % len(order)
        return order[index]


#: Registry of pattern constructors by CLI/experiment name.
_FACTORIES = {
    "uniform": lambda torus, **kw: UniformRandomPattern(torus),
    "transpose": lambda torus, **kw: TransposePattern(torus),
    "bit-complement": lambda torus, **kw: BitComplementPattern(torus),
    "tornado": lambda torus, **kw: TornadoPattern(torus),
    "neighbor": lambda torus, **kw: NeighborExchangePattern(torus),
    "halo": lambda torus, **kw: NeighborExchangePattern(
        torus, diagonals=True),
    "hotspot": lambda torus, **kw: HotspotPattern(
        torus, hot=kw.get("hot"), fraction=kw.get("fraction", 0.5)),
    "all-to-all": lambda torus, **kw: AllToAllReductionPattern(torus),
}

PATTERN_NAMES = tuple(sorted(_FACTORIES))


def make_pattern(name: str, torus: Torus3D, **kwargs: object) -> TrafficPattern:
    """Construct a registered pattern by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(PATTERN_NAMES)
        raise KeyError(f"unknown traffic pattern {name!r}; "
                       f"known: {known}") from None
    return factory(torus, **kwargs)
