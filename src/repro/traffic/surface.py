"""Pure-function run surfaces for the synthetic-traffic subsystem.

Picklable entry points for the parallel runner (:mod:`repro.runner`):
plain JSON-able parameters in, JSON-able results out, a fresh machine
per call.  One call of :func:`measure_load_point` is one point of a
latency-vs-offered-load curve, so a registered ``load-sweep-*`` sweep
fans the load axis out across worker processes and the saturation
analysis (:mod:`repro.analysis.saturation`) runs over the collected
records.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..netsim.config import MachineConfig
from ..netsim.surface import build_machine
from .openloop import OpenLoopHarness
from .patterns import make_pattern


def measure_load_point(
    dims: Sequence[int] = (2, 2, 2),
    chip_cols: int = 6,
    chip_rows: int = 6,
    pattern: str = "uniform",
    routing: str = "randomized-minimal",
    offered_load: float = 0.1,
    machine_seed: int = 0,
    traffic_seed: int = 0,
    process: str = "bernoulli",
    read_fraction: float = 0.0,
    warmup_ns: float = 400.0,
    measure_ns: float = 1600.0,
    drain_ns: Optional[float] = None,
    hotspot_fraction: float = 0.5,
) -> dict:
    """One open-loop load point on a fresh machine.

    ``routing`` names a registered policy (:mod:`repro.routing`) so the
    same load axis can be swept per policy (the ``route-ablation-*``
    sweeps).  Returns the
    :meth:`~repro.traffic.openloop.OpenLoopResult.to_dict` record:
    offered vs accepted load plus per-traffic-class latency percentiles
    for the measure window.
    """
    machine = build_machine(config=MachineConfig(
        dims=tuple(dims), chip_cols=chip_cols, chip_rows=chip_rows,
        seed=machine_seed, routing=routing))
    traffic = make_pattern(pattern, machine.torus, fraction=hotspot_fraction)
    harness = OpenLoopHarness(
        machine,
        traffic,
        offered_load,
        seed=traffic_seed,
        process=process,
        read_fraction=read_fraction,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        drain_ns=drain_ns,
    )
    return harness.run().to_dict()


def measure_load_sweep(
    offered_loads: Sequence[float],
    latency_multiple: float = 3.0,
    **point_params: object,
) -> dict:
    """A whole latency-vs-load curve in-process, with saturation analysis.

    Convenience for examples and tests that do not go through the
    runner; each load point still builds a fresh machine, so results are
    identical to a runner sweep over the same parameters.
    """
    from ..analysis.saturation import analyze_load_sweep

    runs = [
        {"result": measure_load_point(offered_load=load, **point_params)}
        for load in sorted(float(load) for load in offered_loads)
    ]
    analysis = analyze_load_sweep(runs, latency_multiple)
    return {
        "points": [run["result"] for run in runs],
        "saturation": analysis.to_dict(),
    }
