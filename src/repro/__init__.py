"""repro: an open-source model of the Anton 3 specialized network.

Reproduction of "The Specialized High-Performance Network on Anton 3"
(HPCA 2022).  Subpackages:

* :mod:`repro.config` — published machine constants (Table I etc.).
* :mod:`repro.engine` — discrete-event simulation kernel.
* :mod:`repro.topology` — 3D torus and on-chip 2D meshes.
* :mod:`repro.netsim` — flit-level network simulator (routers, channels).
* :mod:`repro.routing` — pluggable inter-node routing policies.
* :mod:`repro.sync` — counted writes and blocking reads.
* :mod:`repro.fence` — the network fence (merge, multicast, barriers).
* :mod:`repro.compression` — INZ and the particle cache.
* :mod:`repro.md` — molecular-dynamics workload substrate.
* :mod:`repro.machine` — floorplan, component, and latency models.
* :mod:`repro.fullsim` — full-system traffic and time-step models.
* :mod:`repro.analysis` — fits, area model, activity plots, reports.
* :mod:`repro.runner` — parallel, cached experiment runner and CLI.
"""

from . import config

__version__ = "1.0.0"

__all__ = ["config", "__version__"]
