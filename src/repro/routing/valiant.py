"""Valiant's randomized non-minimal routing: two minimal phases via a
random intermediate node.

Valiant's algorithm trades path length for load balance: every packet
first routes minimally to a uniformly random intermediate node, then
minimally to its destination, which turns *any* traffic pattern into two
rounds of uniform-random traffic.  Average hop count doubles — so under
benign patterns Valiant sustains roughly half the throughput of minimal
routing — but no adversarial permutation can concentrate load, which is
exactly the tradeoff the routing-ablation sweeps measure (tornado
traffic collapses minimal DOR while Valiant keeps both ring directions
busy).

Deadlock safety: each phase is a minimal dimension-order route with the
dateline VC split, and the two phases ride disjoint VC classes (0 then
1), so channel dependencies only flow phase 0 → phase 1 and the combined
dependency graph stays acyclic (see :mod:`repro.routing.policy`).
"""

from __future__ import annotations

import random
from typing import Optional

from ..topology.torus import DIMENSION_ORDERS, Coord, Torus3D
from .policy import CongestionProbe, RoutePhase, RoutePlan, RoutingPolicy

__all__ = ["ValiantPolicy"]


class ValiantPolicy(RoutingPolicy):
    """Random-intermediate two-phase routing (Valiant 1981)."""

    name = "valiant"

    def __init__(self, torus: Torus3D) -> None:
        super().__init__(torus)
        self._nodes = list(torus.nodes())

    def make_plan(self, src: Coord, dst: Coord, rng: random.Random,
                  congestion: Optional[CongestionProbe] = None,
                  source=None) -> RoutePlan:
        mid = self._nodes[rng.randrange(len(self._nodes))]
        # Each phase randomizes its dimension order independently, like
        # the paper's minimal scheme does for its single phase.
        first = rng.choice(DIMENSION_ORDERS)
        second = rng.choice(DIMENSION_ORDERS)
        # mid == src degenerates to minimal routing (phase 0 is empty and
        # the per-hop walker advances past it immediately); mid == dst
        # likewise ends phase 1 with zero hops.  Both are kept — dropping
        # them would bias the intermediate distribution.
        return RoutePlan(policy=self.name, phases=(
            RoutePhase(target=mid, dim_order=first, vc_class=0),
            RoutePhase(target=self.torus.normalize(dst), dim_order=second,
                       vc_class=1)))
