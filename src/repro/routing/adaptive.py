"""Adaptive-lite: minimal routing steered by local congestion at injection.

A full adaptive router re-evaluates direction at every hop; Anton 3's
hardware deliberately does not (Section III-B2 argues randomized
oblivious routing balances load without the deadlock and ordering
complications of adaptivity).  ``adaptive-lite`` explores the midpoint:
the packet still commits to one minimal dimension order at injection —
so deadlock safety is identical to ``randomized-minimal`` (a minimal DOR
route with dateline VCs) — but the order is chosen by looking at the
source node's local channel state instead of uniformly at random.

Concretely, every candidate order is scored by the occupancy of the
outgoing channel its *first hop* would use (queued packets at the source
chip's channel adapters, both slices); the least-congested first hop
wins, and ties — the common case on an idle machine — are broken
uniformly at random so the policy degrades gracefully to randomized
minimal under zero load.

Invariants tests rely on: plans are single-phase minimal (length equals
``torus.min_hops``) on the escape request VCs with the per-source VC
class spread, and the per-hop walker never consults the adaptive probe
for them (``adaptive=False``) — true per-hop adaptivity lives in
:mod:`repro.routing.escape` instead.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..topology.torus import DIMENSION_ORDERS, Coord
from .policy import (
    CongestionProbe,
    RoutePhase,
    RoutePlan,
    RoutingPolicy,
    source_vc_class,
)

__all__ = ["AdaptiveLitePolicy"]


class AdaptiveLitePolicy(RoutingPolicy):
    """Least-congested-first-hop minimal order, chosen at injection."""

    name = "adaptive-lite"

    def make_plan(self, src: Coord, dst: Coord, rng: random.Random,
                  congestion: Optional[CongestionProbe] = None,
                  source=None) -> RoutePlan:
        torus = self.torus
        src = torus.normalize(src)
        dst = torus.normalize(dst)
        offsets = torus.offsets(src, dst)
        best: List[Tuple[int, int, int]] = []
        best_score: Optional[float] = None
        for order in DIMENSION_ORDERS:
            direction = None
            for axis in order:
                if offsets[axis]:
                    direction = (axis, 1 if offsets[axis] > 0 else -1)
                    break
            score = (float(congestion(src, direction))
                     if congestion is not None and direction is not None
                     else 0.0)
            if best_score is None or score < best_score:
                best, best_score = [order], score
            elif score == best_score:
                best.append(order)
        # Ties break over *orders*, not first-hop directions, so equal
        # congestion reproduces the randomized-minimal distribution —
        # including its per-source VC-class spread.
        order = best[rng.randrange(len(best))]
        return RoutePlan(policy=self.name, phases=(
            RoutePhase(target=dst, dim_order=order,
                       vc_class=source_vc_class(source)),))
