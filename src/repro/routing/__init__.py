"""Pluggable inter-node routing policies for the Anton 3 torus.

The paper credits randomized minimal dimension-order routing for the
network's load balance (Section III-B2); this package makes that choice
a policy object so the claim can be ablated.  A policy fixes each
request packet's :class:`~repro.routing.policy.RoutePlan` at injection
(one or more minimal dimension-order phases with their VC classes); the
chips resolve the plan hop by hop through
:func:`~repro.routing.policy.next_request_direction` and keep the
torus dateline VC discipline via :func:`~repro.routing.policy.note_hop`.
Response packets are untouched: they stay forced-XYZ, mesh-restricted,
on the dedicated response VC.

Policies:

* ``fixed-xyz`` — deterministic XYZ order, the classic DOR baseline.
* ``randomized-minimal`` — the paper's scheme and the default: one of
  the six orders uniformly at random per packet.
* ``valiant`` — non-minimal: two minimal phases via a uniformly random
  intermediate node, on disjoint VC classes.
* ``adaptive-lite`` — the least-congested minimal order at injection,
  judged from local channel occupancy; ties break randomly.
* ``adaptive-escape`` — true per-hop adaptivity: any productive
  direction chosen per hop from downstream adaptive-VC credit and
  occupancy, a capped misroute budget, and a Duato-style fallback onto
  the dateline-disciplined escape VCs (:mod:`repro.routing.escape`).

Quick use::

    from repro.netsim import NetworkMachine

    machine = NetworkMachine(dims=(4, 1, 1), routing="valiant")

or, for the latency-load ablation curves::

    repro-runner sweep route-ablation-valiant route-ablation-fixed-xyz
"""

from __future__ import annotations

from typing import Tuple

from ..topology.torus import Torus3D
from .adaptive import AdaptiveLitePolicy
from .escape import (
    AdaptiveEscapePolicy,
    AdaptiveVcProbe,
    DEFAULT_MISROUTE_BUDGET,
    adaptive_escape_direction,
)
from .oblivious import FixedXYZPolicy, RandomizedMinimalPolicy
from .policy import (
    CongestionProbe,
    RouteHop,
    RoutePhase,
    RoutePlan,
    RoutingPolicy,
    next_request_direction,
    note_hop,
    source_vc_class,
    trace_route,
)
from .valiant import ValiantPolicy

__all__ = [
    "AdaptiveEscapePolicy",
    "AdaptiveLitePolicy",
    "AdaptiveVcProbe",
    "CongestionProbe",
    "DEFAULT_MISROUTE_BUDGET",
    "DEFAULT_POLICY",
    "FixedXYZPolicy",
    "POLICY_NAMES",
    "RandomizedMinimalPolicy",
    "RouteHop",
    "RoutePhase",
    "RoutePlan",
    "RoutingPolicy",
    "ValiantPolicy",
    "adaptive_escape_direction",
    "make_policy",
    "next_request_direction",
    "note_hop",
    "source_vc_class",
    "trace_route",
]

#: Registry of policy classes by CLI/experiment name.
_FACTORIES = {
    FixedXYZPolicy.name: FixedXYZPolicy,
    RandomizedMinimalPolicy.name: RandomizedMinimalPolicy,
    ValiantPolicy.name: ValiantPolicy,
    AdaptiveLitePolicy.name: AdaptiveLitePolicy,
    AdaptiveEscapePolicy.name: AdaptiveEscapePolicy,
}

POLICY_NAMES: Tuple[str, ...] = tuple(sorted(_FACTORIES))

DEFAULT_POLICY = RandomizedMinimalPolicy.name


def make_policy(name: str, torus: Torus3D) -> RoutingPolicy:
    """Construct a registered routing policy by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(POLICY_NAMES)
        raise KeyError(f"unknown routing policy {name!r}; "
                       f"known: {known}") from None
    return factory(torus)
