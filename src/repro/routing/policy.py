"""The routing-policy interface and the per-hop route walker.

Section III-B2 of the paper describes Anton 3's inter-node routing as
randomized minimal dimension-order: each request packet picks one of the
six dimension orders at injection, independent of network load, and
response packets are pinned to XYZ.  This module generalizes that single
hardwired choice into a pluggable policy:

* a :class:`RoutingPolicy` decides, **at injection**, the packet's
  :class:`RoutePlan` — one or more minimal dimension-order *phases*,
  each with its own target node, dimension order, and VC class;
* :func:`next_request_direction` resolves the plan **per hop**: at every
  node the packet follows the first axis of the current phase's order
  that still has a nonzero minimal offset toward the phase target,
  advancing to the next phase when a target is reached;
* :func:`note_hop` maintains the dateline discipline: a request packet
  that crosses a wraparound link switches to its VC class's dateline VC
  for the rest of that ring, and resets when it turns to a new axis.

Deadlock safety: every phase is a minimal dimension-order route, and
within a phase the per-ring dateline VC split breaks the cyclic channel
dependency a torus ring would otherwise create (the standard two-VC
dateline argument).  Multi-phase plans (Valiant) put each phase on a
disjoint VC class, so inter-phase dependencies only ever point from
class 0 channels to class 1 channels — the phase graph is acyclic.
Responses never enter this module: they stay mesh-restricted XYZ on the
dedicated response VC (:mod:`repro.netsim.chip` keeps that invariant).

Invariants tests (and the cache-versioned experiments) rely on:

* ``request_vc == 2 * vc_class + dateline`` — the escape/request VC map
  (:func:`repro.netsim.packet.request_vc`); plans marked ``adaptive``
  additionally ride the dedicated adaptive VC
  (:data:`repro.netsim.packet.ADAPTIVE_VC`) on hops where they won it,
  and fall back to exactly this escape map otherwise.
* Response packets never carry a :class:`RoutePlan`: they are forced
  XYZ, mesh-restricted, on the single response VC.
* A policy's ``make_plan`` is a deterministic function of ``(src, dst,
  rng draws, congestion observations)``, and the per-hop walker draws
  only from the caller-provided ``rng``/``probe`` — so runner sweeps
  stay byte-identical across process fan-out.
* Per-hop adaptivity lives in :mod:`repro.routing.escape`; plans with
  ``adaptive=False`` never consult the probe and never misroute.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..topology.torus import Coord, Torus3D

__all__ = [
    "CongestionProbe",
    "RouteHop",
    "RoutePhase",
    "RoutePlan",
    "RoutingPolicy",
    "next_request_direction",
    "note_hop",
    "source_vc_class",
    "trace_route",
]

#: Local congestion oracle: ``(node, (axis, sign)) -> occupancy`` of the
#: node's outgoing channel in that direction (e.g. queued packets).
CongestionProbe = Callable[[Coord, Tuple[int, int]], float]


def source_vc_class(source) -> int:
    """Deterministic request VC class (0/1) for a traffic source.

    Single-phase policies spread their packets across both VC classes so
    the full four-VC request budget carries load — but keyed by the
    source GC (any object with ``tile_u``/``tile_v``/``which``), never
    per packet: packets from one endpoint stay on one VC, preserving the
    same-path point-to-point ordering counted-write software and the
    fence protocol lean on.  Class 1 is safe for a whole minimal route
    because each class is independently deadlock-free and cross-class
    dependencies only ever point 0 -> 1 (Valiant's phase transition).
    ``None`` (no source context) pins class 0.
    """
    if source is None:
        return 0
    return (source.tile_u + source.tile_v + source.which) % 2


@dataclass(frozen=True)
class RoutePhase:
    """One minimal dimension-order leg of a route.

    Attributes:
        target: The node this phase routes to (normalized coordinates).
        dim_order: Permutation of ``(0, 1, 2)`` resolved most-significant
            first at every hop.
        vc_class: Request VC class (0 or 1) the phase's hops ride on;
            multi-phase plans use disjoint classes for deadlock freedom.
    """

    target: Coord
    dim_order: Tuple[int, int, int]
    vc_class: int = 0

    def __post_init__(self) -> None:
        if sorted(self.dim_order) != [0, 1, 2]:
            raise ValueError(
                f"dim_order must be a permutation of (0,1,2): {self.dim_order}")
        if self.vc_class not in (0, 1):
            raise ValueError(f"vc_class must be 0 or 1, got {self.vc_class}")


@dataclass
class RoutePlan:
    """A packet's full routing decision, fixed at injection.

    ``phase_index`` is the only mutable field: it advances as the packet
    reaches intermediate phase targets.  The final phase's target is the
    packet's destination.

    ``adaptive`` marks the plan for per-hop re-selection
    (:mod:`repro.routing.escape`): the phase's ``dim_order``/``vc_class``
    then describe the *escape* route — the deterministic dimension-order
    leg the packet falls back to whenever it cannot win an adaptive VC —
    and ``max_misroutes`` caps the non-minimal adaptive hops the packet
    may take over its lifetime (``None`` disables the cap, which
    sacrifices livelock freedom and exists only so tests can prove the
    cap matters).
    """

    policy: str
    phases: Tuple[RoutePhase, ...]
    phase_index: int = 0
    adaptive: bool = False
    max_misroutes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a route plan needs at least one phase")

    @property
    def current(self) -> RoutePhase:
        return self.phases[self.phase_index]

    @property
    def destination(self) -> Coord:
        return self.phases[-1].target


class RoutingPolicy:
    """Base class: decides each request packet's route at injection."""

    #: Registry name (set per subclass).
    name: str = "policy"

    def __init__(self, torus: Torus3D) -> None:
        self.torus = torus

    def make_plan(self, src: Coord, dst: Coord, rng: random.Random,
                  congestion: Optional[CongestionProbe] = None,
                  source=None) -> RoutePlan:
        """The plan for one packet from ``src`` to ``dst``.

        ``rng`` is the caller's deterministic stream (policies must draw
        from it, never from module state); ``congestion`` is the local
        occupancy oracle adaptive policies may consult; ``source`` is
        the injecting endpoint (for :func:`source_vc_class`).
        """
        raise NotImplementedError

    def reroute_choice(self, options: List[Tuple[int, int]],
                       rng: Optional[random.Random]) -> Tuple[int, int]:
        """Pick one live distance-decreasing direction under faults.

        Called by :class:`~repro.faults.reroute.FaultAdviser` with the
        (nonempty, DIRECTIONS-ordered) set of directions that strictly
        decrease live-graph distance; never with healthy fabrics.  The
        base picks the first — the deterministic flavor of fixed
        dimension-order policies; randomized/adaptive policies override
        to spread load over the options via ``rng``.
        """
        return options[0]


# ---------------------------------------------------------------------------
# Per-hop resolution (called by the chip at every torus routing decision).
# ---------------------------------------------------------------------------


def next_request_direction(packet, coord: Coord, torus: Torus3D,
                           probe=None, rng=None, faults=None,
                           events=None) -> Optional[Tuple[int, int]]:
    """The request packet's next torus direction from ``coord``.

    Resolves the current phase of ``packet.route`` (falling back to a
    single minimal phase over ``packet.dim_order`` for packets built
    without a plan), advancing phases whose targets are reached.
    Returns ``None`` at the final destination.

    Plans marked ``adaptive`` are re-evaluated here at every hop:
    ``probe`` is the router's per-direction adaptive-VC state oracle
    (:data:`repro.routing.escape.AdaptiveVcProbe`) and ``rng`` breaks
    score ties; both are ignored by non-adaptive plans, so the RNG
    streams of the oblivious policies are untouched by their presence.

    ``faults`` is the machine's :class:`~repro.faults.reroute.
    FaultAdviser` when faults are active (chips pass it only then).
    Non-adaptive phases then follow its live-shortest-path table for
    *every* hop — following the table only at broken hops would let two
    nodes straddling a dead ring link ping-pong forever — while
    adaptive plans keep their per-hop chooser and use the table just
    for the escape leg (inside ``adaptive_escape_direction``).

    ``events`` is the optional observability callback
    (:mod:`repro.observe`): adaptive plans report each per-hop layer
    decision through it (``"adaptive"``/``"misroute"``/``"escape"``);
    it is ignored — and the hook never fires — for oblivious plans.
    """
    plan: Optional[RoutePlan] = getattr(packet, "route", None)
    if plan is None:
        if faults is not None:
            return faults.route_direction(packet, coord, packet.dst_node,
                                          rng)
        return _minimal_direction(coord, packet.dst_node, packet.dim_order,
                                  torus)
    while (plan.phase_index < len(plan.phases) - 1
           and coord == plan.current.target):
        plan.phase_index += 1
        # A new phase is a fresh dimension-order route on a fresh VC
        # class; dateline state restarts with it.
        packet.route_axis = None
        packet.crossed_dateline = False
    if plan.adaptive:
        from .escape import adaptive_escape_direction

        return adaptive_escape_direction(packet, coord, torus,
                                         probe=probe, rng=rng,
                                         faults=faults, events=events)
    phase = plan.current
    if faults is not None:
        return faults.route_direction(packet, coord, phase.target, rng)
    return _minimal_direction(coord, phase.target, phase.dim_order, torus)


def _minimal_direction(coord: Coord, target: Coord,
                       dim_order: Tuple[int, int, int],
                       torus: Torus3D) -> Optional[Tuple[int, int]]:
    offsets = torus.offsets(coord, target)
    for axis in dim_order:
        if offsets[axis]:
            return (axis, 1 if offsets[axis] > 0 else -1)
    return None


def note_hop(packet, coord: Coord, direction: Tuple[int, int],
             torus: Torus3D) -> None:
    """Update the packet's dateline state for one planned torus hop.

    Turning onto a new axis resets the dateline flag (each ring has its
    own dateline); crossing the wraparound link sets it, so this hop and
    every later hop on the ring ride the dateline VC.
    """
    axis, sign = direction
    if packet.route_axis != axis:
        packet.route_axis = axis
        packet.crossed_dateline = False
    if torus.is_wrap_hop(coord, axis, sign):
        packet.crossed_dateline = True


# ---------------------------------------------------------------------------
# Offline route tracing (tests, examples — no simulator required).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RouteHop:
    """One traced hop: where from, which way, on which VC, in which phase."""

    coord: Coord
    direction: Tuple[int, int]
    vc: int
    phase: int


def trace_route(packet, torus: Torus3D,
                max_hops: Optional[int] = None,
                probe=None, rng=None) -> Tuple[List[RouteHop], Coord]:
    """Walk a request packet's route hop by hop, without a simulator.

    Applies exactly the per-hop machinery the chips use
    (:func:`next_request_direction` + :func:`note_hop` + the VC
    assignment), so tests can assert route shape, length, and VC
    discipline offline.  ``probe``/``rng`` feed the per-hop chooser of
    adaptive plans (an always-congested probe is how the livelock tests
    drive uncapped misrouting).  Returns ``(hops, final_coord)``; raises
    ``RuntimeError`` if the walk exceeds ``max_hops`` (a routing cycle,
    or a livelocked adaptive walk).
    """
    from ..netsim.packet import TrafficClass, request_vc

    if packet.traffic_class is not TrafficClass.REQUEST:
        raise ValueError("trace_route walks request packets only")
    limit = (max_hops if max_hops is not None
             else 4 * sum(torus.dims.as_tuple()) + 8)
    coord = torus.normalize(packet.src_node)
    hops: List[RouteHop] = []
    while True:
        direction = next_request_direction(packet, coord, torus,
                                           probe=probe, rng=rng)
        if direction is None:
            return hops, coord
        note_hop(packet, coord, direction, torus)
        plan = getattr(packet, "route", None)
        hops.append(RouteHop(coord=coord, direction=direction,
                             vc=request_vc(packet),
                             phase=plan.phase_index if plan else 0))
        coord = torus.neighbor(coord, *direction)
        if len(hops) > limit:
            raise RuntimeError(
                f"route from {packet.src_node} to {packet.dst_node} did "
                f"not terminate within {limit} hops")
