"""Oblivious minimal policies: fixed XYZ and the paper's randomized order.

Both are single-phase minimal dimension-order routes; they differ only in
how the order is chosen.  ``fixed-xyz`` is the classic deterministic DOR
baseline (every packet resolves X, then Y, then Z), the policy whose load
imbalance under adversarial permutations the randomized scheme exists to
fix.  ``randomized-minimal`` is Section III-B2's choice: one of the six
orders uniformly at random per packet, independent of network state —
the repository's default and, before this subsystem existed, its only
behavior.

Invariants tests rely on: both policies emit exactly one minimal phase
(route length equals ``torus.min_hops``), their hops ride the escape
request VCs (``request_vc == 2 * vc_class + dateline``; fixed-xyz pins
class 0, randomized-minimal spreads class per source GC), and
``randomized-minimal`` draws exactly one ``rng.choice`` per plan —
reproducing the pre-subsystem RNG stream draw for draw, which is what
keeps the fig5/fig11 results unchanged.
"""

from __future__ import annotations

import random
from typing import Optional

from ..topology.torus import DIMENSION_ORDERS, Coord
from .policy import (
    CongestionProbe,
    RoutePhase,
    RoutePlan,
    RoutingPolicy,
    source_vc_class,
)

__all__ = ["FixedXYZPolicy", "RandomizedMinimalPolicy"]


class FixedXYZPolicy(RoutingPolicy):
    """Deterministic minimal dimension-order routing, always XYZ.

    Fully deterministic on purpose — order *and* VC class (always 0) —
    so the ablation baseline is the classic single-scheme DOR router
    with no load balancing anywhere.
    """

    name = "fixed-xyz"

    def make_plan(self, src: Coord, dst: Coord, rng: random.Random,
                  congestion: Optional[CongestionProbe] = None,
                  source=None) -> RoutePlan:
        return RoutePlan(policy=self.name, phases=(
            RoutePhase(target=self.torus.normalize(dst),
                       dim_order=(0, 1, 2)),))


class RandomizedMinimalPolicy(RoutingPolicy):
    """One of the six minimal orders, uniformly at random per packet.

    The order draw is a single ``rng.choice`` over
    :data:`~repro.topology.torus.DIMENSION_ORDERS`, reproducing the
    pre-subsystem behavior draw for draw so machines built with the
    default policy consume their RNG streams exactly as before.  The
    request VC class is spread per *source* (:func:`source_vc_class`)
    so the packet population fills all four request VCs without
    breaking same-path ordering.
    """

    name = "randomized-minimal"

    def make_plan(self, src: Coord, dst: Coord, rng: random.Random,
                  congestion: Optional[CongestionProbe] = None,
                  source=None) -> RoutePlan:
        order = rng.choice(DIMENSION_ORDERS)
        return RoutePlan(policy=self.name, phases=(
            RoutePhase(target=self.torus.normalize(dst), dim_order=order,
                       vc_class=source_vc_class(source)),))

    def reroute_choice(self, options, rng):
        """Spread degraded-mode hops uniformly over the live options —
        the randomized flavor, kept under faults."""
        if rng is None or len(options) == 1:
            return options[0]
        return options[rng.randrange(len(options))]
