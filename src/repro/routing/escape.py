"""True per-hop adaptive routing with a Duato-style escape VC layer.

``adaptive-lite`` (PR 3) stopped short of real adaptivity: it picks one
minimal order at injection because re-choosing directions mid-flight on
a torus is only deadlock-free with extra machinery.  This module adds
that machinery.  Each link's VC set is split into two layers:

* **Adaptive layer** — the dedicated adaptive VC
  (:data:`repro.netsim.packet.ADAPTIVE_VC`).  On it a packet may take
  *any productive direction* (any axis with a nonzero minimal offset
  toward the phase target; at an exact half-ring tie both signs are
  productive), chosen per hop from downstream credit and occupancy of
  the candidate channels' adaptive VCs.  When every productive adaptive
  VC is full, the packet may **misroute** — take a non-productive,
  non-wraparound direction whose adaptive VC has room — but only while
  its per-packet misroute budget (``RoutePlan.max_misroutes``) lasts.
* **Escape layer** — the four dateline-disciplined request VCs
  (``request_vc == 2 * vc_class + dateline``), on which routing is
  deterministic minimal dimension-order exactly as in every oblivious
  policy.  A packet that cannot win an adaptive VC (and cannot or may
  not misroute) falls back here for the hop and is restricted minimally.

Deadlock freedom is Duato's argument: the escape subnetwork (minimal
DOR + dateline VC split per ring) is deadlock-free on its own, escape
routing depends only on the packet's current node and phase target, and
a packet holding or waiting on adaptive resources can always request
its escape VC at the next routing decision — so every channel-wait
cycle through the adaptive layer drains through the escape layer.
Misroutes never cross a ring's wraparound link, so an escape leg after
any number of adaptive hops still crosses each dateline at most once
and the per-ring two-VC argument survives adaptivity.

Livelock freedom comes from the misroute cap: after at most
``max_misroutes`` non-minimal hops every further hop — adaptive or
escape — strictly decreases the remaining minimal distance, so the walk
terminates within ``min_hops + 2 * max_misroutes`` hops.  Plans built
with ``max_misroutes=None`` lose exactly this guarantee; the routing
tests drive such a plan with an always-congested probe and watch it
livelock, which is the written proof that the cap matters.

The per-hop chooser draws only from the caller's ``rng`` (score ties)
and ``probe`` (credit/occupancy observations), both supplied by the
chip from deterministic seeded state — runner sweeps with
``routing="adaptive-escape"`` stay byte-identical across ``--jobs``.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from ..topology.torus import Coord, Torus3D
from .policy import RoutePhase, RoutePlan, RoutingPolicy, source_vc_class

__all__ = [
    "AdaptiveEscapePolicy",
    "AdaptiveVcProbe",
    "DEFAULT_MISROUTE_BUDGET",
    "adaptive_escape_direction",
]

#: Per-hop adaptive-VC state oracle supplied by the router:
#: ``(node, (axis, sign)) -> (credits, queued_flits)`` of the node's
#: outgoing channel's adaptive VC in that direction.
AdaptiveVcProbe = Callable[[Coord, Tuple[int, int]], Tuple[int, int]]

#: Non-minimal hops one packet may take before being pinned minimal.
DEFAULT_MISROUTE_BUDGET = 4

Direction = Tuple[int, int]


def _productive_directions(offsets: Tuple[int, int, int],
                           dims: Tuple[int, int, int]) -> List[Direction]:
    """Directions that reduce the minimal distance to the phase target.

    One direction per axis with a nonzero offset — plus the opposite
    sign when the offset is exactly half the ring, where both rotations
    are minimal (the tie tornado traffic lives on: a per-hop adaptive
    router balances the two ring directions that oblivious minimal
    routing must commit to blindly).
    """
    productive: List[Direction] = []
    for axis in (0, 1, 2):
        offset = offsets[axis]
        if not offset:
            continue
        sign = 1 if offset > 0 else -1
        productive.append((axis, sign))
        if 2 * abs(offset) == dims[axis]:
            productive.append((axis, -sign))
    return productive


def _win_adaptive_vc(candidates: List[Direction], coord: Coord,
                     probe: AdaptiveVcProbe, num_flits: int,
                     rng: Optional[random.Random]) -> Optional[Direction]:
    """The winnable candidate with the most adaptive-VC headroom.

    A direction is winnable when its channel's adaptive VC has credit
    for the whole packet beyond what is already queued locally
    (``credits - queued_flits >= num_flits``); the winner maximizes that
    headroom and ties break via ``rng`` (first candidate when no rng is
    supplied, keeping offline traces deterministic).
    """
    best: List[Direction] = []
    best_headroom: Optional[int] = None
    for direction in candidates:
        credits, queued_flits = probe(coord, direction)
        headroom = int(credits) - int(queued_flits)
        if headroom < num_flits:
            continue
        if best_headroom is None or headroom > best_headroom:
            best, best_headroom = [direction], headroom
        elif headroom == best_headroom:
            best.append(direction)
    if not best:
        return None
    if rng is None or len(best) == 1:
        return best[0]
    return best[rng.randrange(len(best))]


def adaptive_escape_direction(packet, coord: Coord, torus: Torus3D,
                              probe: Optional[AdaptiveVcProbe] = None,
                              rng: Optional[random.Random] = None,
                              faults=None,
                              events=None) -> Optional[Direction]:
    """One per-hop routing decision for an adaptive-escape packet.

    Tries, in order: a productive adaptive hop, a misroute (budget and
    probe permitting), and finally the escape layer's deterministic
    minimal dimension-order hop.  Mutates the packet's layer state:
    ``packet.on_escape`` records which layer the chosen hop rides (it
    decides the VC via :func:`repro.netsim.packet.request_vc`) and
    ``packet.misroutes`` counts spent budget.  With no ``probe`` (e.g.
    offline traces without a fabric) every hop is an escape hop.
    Returns ``None`` at the phase target.

    Under faults (``faults`` is the machine's fault adviser) the
    adaptive layer needs no special handling — dead channels read zero
    adaptive-VC credit, so they can never win a productive or misroute
    hop — but the escape leg must stay live and progressing, so it
    follows the adviser's live-shortest-path table instead of the
    blind dimension order.

    ``events`` is the observability hook (:mod:`repro.observe`): called
    with ``"adaptive"``, ``"misroute"``, or ``"escape"`` as each hop's
    layer decision lands.  It observes only — no event may influence
    the decision — and stays ``None`` on unobserved machines.
    """
    plan: RoutePlan = packet.route
    phase = plan.current
    offsets = torus.offsets(coord, phase.target)
    dims = torus.dims.as_tuple()
    if faults is not None:
        return _faulted_adaptive_direction(packet, coord, torus, phase,
                                           probe, rng, faults, events)
    productive = _productive_directions(offsets, dims)
    if not productive:
        return None
    if probe is not None:
        choice = _win_adaptive_vc(productive, coord, probe,
                                  packet.num_flits, rng)
        if choice is not None:
            packet.on_escape = False
            if events is not None:
                events("adaptive")
            return choice
        # Every productive adaptive VC is full: misroute while budget
        # lasts, onto any non-productive direction whose adaptive VC has
        # room.  Wraparound hops are excluded so misrouting can never
        # add a second dateline crossing to a ring traversal.
        if plan.max_misroutes is None or packet.misroutes < plan.max_misroutes:
            detours = [
                (axis, sign)
                for axis in (0, 1, 2) for sign in (1, -1)
                if (axis, sign) not in productive
                and not torus.is_wrap_hop(coord, axis, sign)
            ]
            choice = _win_adaptive_vc(detours, coord, probe,
                                      packet.num_flits, rng)
            if choice is not None:
                packet.misroutes += 1
                packet.on_escape = False
                if events is not None:
                    events("misroute")
                return choice
    # Escape: the deterministic dimension-order hop on the dateline VCs.
    packet.on_escape = True
    if events is not None:
        events("escape")
    for axis in phase.dim_order:
        if offsets[axis]:
            return (axis, 1 if offsets[axis] > 0 else -1)
    return None


def _faulted_adaptive_direction(packet, coord: Coord, torus: Torus3D,
                                phase, probe: Optional[AdaptiveVcProbe],
                                rng: Optional[random.Random],
                                faults, events=None) -> Optional[Direction]:
    """The degraded-mode per-hop decision for an adaptive plan.

    "Productive" is redefined against the *live* graph: the adviser's
    strictly-distance-decreasing direction set replaces the torus-offset
    set.  That redefinition is what keeps the walk livelock-free — a
    torus-minimal hop toward a dead link can increase live distance, and
    alternating such hops with escape corrections would never terminate.
    The layer structure is unchanged: credit-scored adaptive choice over
    the productive set, budget-capped misroutes over live non-wrap
    detours, escape via the policy's ``reroute_choice``.
    """
    target = torus.normalize(phase.target)
    if torus.normalize(coord) == target:
        return None
    productive = faults.route_options(coord, target, packet.slice_index)
    if probe is not None:
        choice = _win_adaptive_vc(productive, coord, probe,
                                  packet.num_flits, rng)
        if choice is not None:
            packet.on_escape = False
            if events is not None:
                events("adaptive")
            return choice
        if (packet.route.max_misroutes is None
                or packet.misroutes < packet.route.max_misroutes):
            detours = [
                (axis, sign)
                for axis in (0, 1, 2) for sign in (1, -1)
                if (axis, sign) not in productive
                and not torus.is_wrap_hop(coord, axis, sign)
                and not faults.is_dead(coord, (axis, sign),
                                       packet.slice_index)
            ]
            choice = _win_adaptive_vc(detours, coord, probe,
                                      packet.num_flits, rng)
            if choice is not None:
                packet.misroutes += 1
                packet.on_escape = False
                if events is not None:
                    events("misroute")
                return choice
    packet.on_escape = True
    choice = faults.reroute_choice_for(productive, rng)
    if events is not None and choice is not None:
        events("escape")
    return choice


class AdaptiveEscapePolicy(RoutingPolicy):
    """Fully per-hop adaptive routing over an escape-VC safety net."""

    name = "adaptive-escape"

    def __init__(self, torus: Torus3D,
                 max_misroutes: Optional[int] = DEFAULT_MISROUTE_BUDGET,
                 ) -> None:
        super().__init__(torus)
        self.max_misroutes = max_misroutes

    def make_plan(self, src: Coord, dst: Coord, rng: random.Random,
                  congestion=None, source=None) -> RoutePlan:
        """A single adaptive phase whose escape route is XYZ minimal.

        All load-dependent choice happens per hop in
        :func:`adaptive_escape_direction`; the plan only fixes the
        escape discipline (deterministic XYZ order on the source's VC
        class) and the misroute budget.  No rng draw happens here, so
        machines built with this policy consume their injection RNG
        streams exactly like ``fixed-xyz``.
        """
        return RoutePlan(
            policy=self.name,
            phases=(RoutePhase(target=self.torus.normalize(dst),
                               dim_order=(0, 1, 2),
                               vc_class=source_vc_class(source)),),
            adaptive=True,
            max_misroutes=self.max_misroutes,
        )

    def reroute_choice(self, options, rng):
        """Degraded-mode escape hops spread over the live options; the
        adaptive layer's credit scoring happens before this is reached."""
        if rng is None or len(options) == 1:
            return options[0]
        return options[rng.randrange(len(options))]
