"""Counted remote-write messages — Section III-A of the paper.

A counted write is a small request-class packet carrying one quad
(16 bytes) that, on arrival at the destination SRAM, updates the quad and
atomically increments its 8-bit counter.  Together with blocking reads it
forms the fine-grained synchronization paradigm of the Anton machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .sram import QUAD_WORDS, QuadSram


@dataclass(frozen=True)
class CountedWriteMessage:
    """A remote write of one quad with counter increment on delivery.

    Attributes:
        dst_node: Destination node coordinate in the torus.
        dst_core: Destination GC index on the destination chip.
        quad_addr: Destination quad address within the GC's SRAM.
        words: The four 32-bit payload words.
        accumulate: When True the write add-accumulates into the quad
            (used for force summation during integration).
        src_node: Source node coordinate (for response routing and stats).
        src_core: Source GC index.
    """

    dst_node: Tuple[int, int, int]
    dst_core: int
    quad_addr: int
    words: Tuple[int, int, int, int]
    accumulate: bool = False
    src_node: Optional[Tuple[int, int, int]] = None
    src_core: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.words) != QUAD_WORDS:
            raise ValueError("counted writes carry exactly one quad")

    def payload_words(self) -> List[int]:
        return [w & 0xFFFF_FFFF for w in self.words]


def deliver(sram: QuadSram, message: CountedWriteMessage) -> None:
    """Apply a counted write to its destination SRAM block."""
    sram.counted_write(message.quad_addr, message.payload_words(),
                       accumulate=message.accumulate)
