"""Quad-granular SRAM with per-quad hardware counters — Section III-A.

Each Geometry Core pairs with a 128 KB globally addressable SRAM block.
The memory is organized in *quads* (four 32-bit values); every quad has an
associated 8-bit counter.  A *counted* remote write updates the quad data
and atomically increments the counter; software detects data arrival by
issuing a blocking read with a counter threshold.

This model keeps the data as Python ints and the counters as wrapping
8-bit values, and exposes the waiter hookup that the blocking-read model
in :mod:`repro.sync.blocking_read` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

QUAD_WORDS = 4
WORD_BYTES = 4
QUAD_BYTES = QUAD_WORDS * WORD_BYTES
COUNTER_BITS = 8
COUNTER_MOD = 1 << COUNTER_BITS


class SramError(RuntimeError):
    """Raised on out-of-range or misaligned SRAM access."""


@dataclass
class Quad:
    """One 16-byte quad with its 8-bit counted-write counter."""

    words: List[int] = field(default_factory=lambda: [0] * QUAD_WORDS)
    counter: int = 0

    def write(self, words: List[int], counted: bool) -> None:
        if len(words) != QUAD_WORDS:
            raise SramError(f"quad writes carry {QUAD_WORDS} words")
        self.words = [w & 0xFFFF_FFFF for w in words]
        if counted:
            self.counter = (self.counter + 1) % COUNTER_MOD

    def accumulate(self, words: List[int], counted: bool) -> None:
        """Add-accumulate write used for force summation into quads."""
        if len(words) != QUAD_WORDS:
            raise SramError(f"quad writes carry {QUAD_WORDS} words")
        self.words = [(a + b) & 0xFFFF_FFFF
                      for a, b in zip(self.words, words)]
        if counted:
            self.counter = (self.counter + 1) % COUNTER_MOD


class QuadSram:
    """A block of quad-addressable SRAM (default 128 KB = 8192 quads)."""

    def __init__(self, size_bytes: int = 128 * 1024) -> None:
        if size_bytes % QUAD_BYTES:
            raise SramError("SRAM size must be a whole number of quads")
        self.num_quads = size_bytes // QUAD_BYTES
        self.size_bytes = size_bytes
        self._quads: Dict[int, Quad] = {}
        # Waiters keyed by quad address: (threshold, callback).
        self._waiters: Dict[int, List[Tuple[int, Callable[[], None]]]] = {}
        self.counted_writes = 0
        self.plain_writes = 0

    def _check(self, quad_addr: int) -> None:
        if not 0 <= quad_addr < self.num_quads:
            raise SramError(
                f"quad address {quad_addr} outside 0..{self.num_quads - 1}")

    def quad(self, quad_addr: int) -> Quad:
        self._check(quad_addr)
        if quad_addr not in self._quads:
            self._quads[quad_addr] = Quad()
        return self._quads[quad_addr]

    # -- reads ----------------------------------------------------------

    def read(self, quad_addr: int) -> List[int]:
        """Non-blocking read of a quad's four words."""
        return list(self.quad(quad_addr).words)

    def counter(self, quad_addr: int) -> int:
        return self.quad(quad_addr).counter

    # -- writes ---------------------------------------------------------

    def write(self, quad_addr: int, words: List[int],
              counted: bool = False, accumulate: bool = False) -> None:
        """Write a quad; counted writes bump the quad counter and may
        release blocked readers."""
        quad = self.quad(quad_addr)
        if accumulate:
            quad.accumulate(words, counted)
        else:
            quad.write(words, counted)
        if counted:
            self.counted_writes += 1
            self._release_waiters(quad_addr)
        else:
            self.plain_writes += 1

    def counted_write(self, quad_addr: int, words: List[int],
                      accumulate: bool = False) -> None:
        self.write(quad_addr, words, counted=True, accumulate=accumulate)

    # -- blocking-read support -------------------------------------------

    def counter_reached(self, quad_addr: int, threshold: int) -> bool:
        """Has the quad's counter reached ``threshold`` (mod-256 aware)?

        The hardware compares an 8-bit counter against an 8-bit threshold;
        software resets counters between uses, so a simple >= on the
        wrapped value is the architected behavior.
        """
        return self.quad(quad_addr).counter >= (threshold % COUNTER_MOD)

    def add_waiter(self, quad_addr: int, threshold: int,
                   callback: Callable[[], None]) -> bool:
        """Register a callback for when the counter reaches threshold.

        Returns True (and does not register) if already satisfied.
        """
        if self.counter_reached(quad_addr, threshold):
            return True
        self._waiters.setdefault(quad_addr, []).append((threshold, callback))
        return False

    def _release_waiters(self, quad_addr: int) -> None:
        waiters = self._waiters.get(quad_addr)
        if not waiters:
            return
        still_blocked = []
        for threshold, callback in waiters:
            if self.counter_reached(quad_addr, threshold):
                callback()
            else:
                still_blocked.append((threshold, callback))
        if still_blocked:
            self._waiters[quad_addr] = still_blocked
        else:
            del self._waiters[quad_addr]

    def reset_counter(self, quad_addr: int) -> None:
        """Software counter reset between synchronization rounds."""
        self.quad(quad_addr).counter = 0

    @property
    def blocked_readers(self) -> int:
        return sum(len(w) for w in self._waiters.values())
