"""Counted-write / blocking-read synchronization (Section III-A)."""

from .blocking_read import BlockingReadPort, BlockingReadRecord
from .counted_write import CountedWriteMessage, deliver
from .sram import (
    COUNTER_BITS,
    COUNTER_MOD,
    QUAD_BYTES,
    QUAD_WORDS,
    Quad,
    QuadSram,
    SramError,
)

__all__ = [
    "BlockingReadPort",
    "BlockingReadRecord",
    "CountedWriteMessage",
    "deliver",
    "COUNTER_BITS",
    "COUNTER_MOD",
    "QUAD_BYTES",
    "QUAD_WORDS",
    "Quad",
    "QuadSram",
    "SramError",
]
