"""Blocking reads against quad counters — Section III-A of the paper.

A GC may issue a read of a local quad together with a counter threshold;
the read stalls until the quad's counted-write counter reaches the
threshold, then completes like a (high-latency) load.  This minimizes
arrival-to-use latency: software handlers start running before all their
input data has arrived and block exactly at the first use.

:class:`BlockingReadPort` models one GC's load port in simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..engine.simulator import Simulator
from .sram import QuadSram


@dataclass
class BlockingReadRecord:
    """Completion record for one blocking read."""

    quad_addr: int
    threshold: int
    issue_time: float
    complete_time: Optional[float] = None
    words: Optional[List[int]] = None

    @property
    def stall_ns(self) -> float:
        if self.complete_time is None:
            raise RuntimeError("read has not completed")
        return self.complete_time - self.issue_time

    @property
    def completed(self) -> bool:
        return self.complete_time is not None


class BlockingReadPort:
    """Issues blocking reads for one GC against its local SRAM.

    The port enforces the hardware property that a GC has a single
    outstanding blocking read (the core stalls on it).
    """

    def __init__(self, sim: Simulator, sram: QuadSram,
                 read_latency_ns: float = 0.0) -> None:
        self._sim = sim
        self._sram = sram
        self._read_latency_ns = read_latency_ns
        self._outstanding: Optional[BlockingReadRecord] = None
        self.history: List[BlockingReadRecord] = []

    @property
    def stalled(self) -> bool:
        return (self._outstanding is not None
                and not self._outstanding.completed)

    def issue(self, quad_addr: int, threshold: int,
              on_complete: Callable[[BlockingReadRecord], None]) -> BlockingReadRecord:
        """Issue a blocking read; ``on_complete`` fires when unstalled."""
        if self.stalled:
            raise RuntimeError("GC already stalled on a blocking read")
        record = BlockingReadRecord(quad_addr=quad_addr, threshold=threshold,
                                    issue_time=self._sim.now)
        self._outstanding = record
        self.history.append(record)

        def complete() -> None:
            def finish() -> None:
                record.complete_time = self._sim.now
                record.words = self._sram.read(quad_addr)
                on_complete(record)

            if self._read_latency_ns > 0:
                self._sim.after(self._read_latency_ns, finish)
            else:
                finish()

        already = self._sram.add_waiter(quad_addr, threshold, complete)
        if already:
            complete()
        return record
