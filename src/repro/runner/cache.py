"""Content-addressed on-disk cache of completed experiment runs.

A run is addressed by the SHA-256 digest of its canonical JSON config
``{"experiment", "version", "params"}``; the cache stores one JSON file
per digest under ``<root>/<digest[:2]>/<digest>.json`` so repeated
sweeps are served from disk instead of re-simulating.  Entries record
the config alongside the result, so the cache is self-describing and a
``report`` can be generated from the cache directory alone.

The cache root also hosts sibling subsystems that are *not* result
entries — ``observe/`` (metrics/trace artifacts keyed by the same
digests) and ``ledger/`` (the cross-run ledger) — so entry scans match
only the two-hex-char shard directories.  ``prune`` additionally sweeps
observe artifacts orphaned by entry removal: an artifact whose digest
no longer has a live cache entry can never be resolved again.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Tuple


def _jsonify(value: object) -> object:
    """JSON fallback for numpy scalars and sets."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"not JSON-serializable: {value!r}")


def canonical_json(payload: object) -> str:
    """Compact, key-sorted JSON — the hashing and storage encoding."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_jsonify)


def canonicalize(payload: object) -> object:
    """Round-trip ``payload`` through canonical JSON.

    Normalizes tuples to lists and numpy scalars to Python numbers so a
    freshly computed result is structurally identical to one reloaded
    from the cache.
    """
    return json.loads(canonical_json(payload))


def config_digest(
    experiment: str, params: Mapping[str, object], version: int = 1
) -> str:
    """The content address of one run's configuration."""
    blob = canonical_json(
        {"experiment": experiment, "version": version, "params": params}
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


#: Entry files live only under the two-hex-char shard directories;
#: sibling subsystems (observe/, ledger/) are never entries.
_ENTRY_GLOB = "[0-9a-f][0-9a-f]/*.json"


@dataclass
class ResultCache:
    """A directory of content-addressed experiment results."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _entry_paths(self) -> Iterator[Path]:
        return self.root.glob(_ENTRY_GLOB)

    def get(
        self, experiment: str, params: Mapping[str, object], version: int = 1
    ) -> Optional[Dict[str, object]]:
        """The stored entry for this config, or None (corrupt == miss)."""
        path = self.path_for(config_digest(experiment, params, version))
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            result = entry["result"]
        except (OSError, ValueError, TypeError, KeyError):
            self.stats.misses += 1
            return None
        if not isinstance(result, (dict, list)):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def put(
        self,
        experiment: str,
        params: Mapping[str, object],
        result: object,
        elapsed_s: Optional[float] = None,
        version: int = 1,
    ) -> Path:
        """Store one completed run; the write is atomic (tmp + rename)."""
        digest = config_digest(experiment, params, version)
        entry = {
            "experiment": experiment,
            "version": version,
            "digest": digest,
            "params": canonicalize(params),
            "result": canonicalize(result),
            "elapsed_s": elapsed_s,
        }
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(entry))
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self.stats.writes += 1
        return path

    def iter_entries(
        self, experiment: Optional[str] = None
    ) -> Iterator[Dict[str, object]]:
        """All readable entries, optionally filtered by experiment name."""
        for path in sorted(self._entry_paths()):
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if experiment is None or entry.get("experiment") == experiment:
                yield entry

    def stats_by_config(self) -> Dict[Tuple[str, int], Dict[str, int]]:
        """Entry and byte counts per ``(experiment, version)`` pair.

        Unreadable or malformed files are grouped under
        ``("<corrupt>", 0)`` so ``cache stats`` surfaces them instead of
        silently skipping (they are misses on every lookup anyway).
        """
        stats: Dict[Tuple[str, int], Dict[str, int]] = {}
        for path in sorted(self._entry_paths()):
            size = path.stat().st_size
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                key = (str(entry["experiment"]), int(entry.get("version", 1)))
            except (OSError, ValueError, TypeError, KeyError):
                key = ("<corrupt>", 0)
            bucket = stats.setdefault(key, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return stats

    def _artifact_paths(self) -> Iterator[Path]:
        """Observability artifact files beside the entries."""
        from ..observe.artifacts import observe_dir

        return observe_dir(self.root).glob("*.json")

    def _live_digests(self) -> set:
        return {path.stem for path in self._entry_paths()}

    def observe_stats(self) -> Dict[str, int]:
        """Artifact counts/bytes under ``observe/``, live vs orphaned.

        An artifact is *orphaned* when its digest no longer has a live
        cache entry (the run was pruned or the cache cleared): nothing
        can resolve it by digest anymore, so ``prune`` reclaims it.
        """
        live = self._live_digests()
        artifacts = size = orphaned = orphaned_size = 0
        for path in sorted(self._artifact_paths()):
            bytes_ = path.stat().st_size
            artifacts += 1
            size += bytes_
            if path.name.split(".")[0] not in live:
                orphaned += 1
                orphaned_size += bytes_
        return {
            "artifacts": artifacts,
            "bytes": size,
            "orphaned": orphaned,
            "orphaned_bytes": orphaned_size,
        }

    def ledger_stats(self) -> Dict[str, int]:
        """Record/event counts and on-disk bytes of the sibling ledger.

        The ledger is append-only and never pruned, so ``cache stats``
        is where its growth becomes visible: deterministic run records
        (``ledger.jsonl``) and worker heartbeats (``status.jsonl``).
        """
        from ..observe.ledger import (
            LEDGER_DIRNAME,
            LEDGER_FILENAME,
            STATUS_FILENAME,
            read_jsonl,
        )

        directory = self.root / LEDGER_DIRNAME
        record_path = directory / LEDGER_FILENAME
        status_path = directory / STATUS_FILENAME
        return {
            "records": len(read_jsonl(record_path, strict=False)),
            "status_events": len(read_jsonl(status_path, strict=False)),
            "bytes": sum(path.stat().st_size
                         for path in (record_path, status_path)
                         if path.is_file()),
        }

    def prune(self, registered: Mapping[str, int]) -> Dict[str, int]:
        """Delete entries whose ``(experiment, version)`` is not registered.

        ``registered`` maps experiment names to their current version;
        an entry survives only when its experiment is present at exactly
        that version — anything else (renamed experiments, stale
        versions after a semantics bump, corrupt files) can never be
        served again and is removed.  Observability artifacts whose
        digest has no surviving entry are swept with them.  Returns
        ``{"removed", "kept", "freed_bytes", "artifacts_removed",
        "artifacts_freed_bytes"}``.
        """
        removed = kept = freed = 0
        for path in sorted(self._entry_paths()):
            size = path.stat().st_size
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                experiment = str(entry["experiment"])
                version = int(entry.get("version", 1))
                stale = registered.get(experiment) != version
            except (OSError, ValueError, TypeError, KeyError):
                stale = True
            if stale:
                path.unlink()
                removed += 1
                freed += size
            else:
                kept += 1
        live = self._live_digests()
        artifacts_removed = artifacts_freed = 0
        for path in sorted(self._artifact_paths()):
            if path.name.split(".")[0] in live:
                continue
            artifacts_freed += path.stat().st_size
            path.unlink()
            artifacts_removed += 1
        return {
            "removed": removed,
            "kept": kept,
            "freed_bytes": freed,
            "artifacts_removed": artifacts_removed,
            "artifacts_freed_bytes": artifacts_freed,
        }

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_paths():
            path.unlink()
            removed += 1
        return removed
