"""Built-in experiments: the paper's figure grids as declarative sweeps.

Each experiment binds one registered :class:`~repro.runner.catalog.
RunSurface` (``repro.netsim.surface``, ``repro.fence.surface``,
``repro.traffic.surface``, ``repro.workload.surface``,
``repro.faults.surface``, ``repro.fullsim.surface``) to the parameter
grid the corresponding benchmark sweeps — the single source of truth
shared by ``benchmarks/``, ``examples/``, and the
``python -m repro.runner`` CLI.  Surfaces resolve their functions by
dotted path at call time, so importing the registry stays cheap and
workers only load what they execute.  Smoke grids are tiny variants
used by CI and tests to exercise the parallel path in seconds.
"""

from __future__ import annotations

from .catalog import RunSurface, register_surface
from .experiment import Experiment, Sweep, register
from .grid import ParameterGrid

# ---------------------------------------------------------------------------
# Run surfaces: every experiment entry point, one registry.
# ---------------------------------------------------------------------------

LATENCY_CURVE_SURFACE = register_surface(RunSurface(
    name="repro.netsim.surface.measure_latency_curve",
    param_names=(
        "dims",
        "chip_cols",
        "chip_rows",
        "machine_seed",
        "harness_seed",
        "max_hops",
        "samples_per_hop",
    ),
    description="One-way ping latency per hop count on a fresh machine",
))

MIN_ONE_HOP_SURFACE = register_surface(RunSurface(
    name="repro.netsim.surface.measure_min_one_hop",
    param_names=(
        "dims",
        "chip_cols",
        "chip_rows",
        "machine_seed",
        "harness_seed",
        "samples",
    ),
    description="Best-placement minimum single-hop latency",
))

FENCE_CURVE_SURFACE = register_surface(RunSurface(
    name="repro.fence.surface.measure_fence_curve",
    param_names=(
        "dims",
        "chip_cols",
        "chip_rows",
        "seed",
        "hops",
        "max_hops",
        "pattern",
        "request_vcs",
        "slices",
    ),
    description="Fence barrier latency per synchronization domain",
))

WATER_SYSTEM_SURFACE = register_surface(RunSurface(
    name="repro.fullsim.surface.evaluate_water_system",
    param_names=(
        "n_atoms",
        "steps",
        "seed",
        "node_dims",
        "pcache_warmup_steps",
    ),
    description="Water-box traffic reduction and application speedup",
))

LOAD_POINT_SURFACE = register_surface(RunSurface(
    name="repro.traffic.surface.measure_load_point",
    param_names=(
        "dims",
        "chip_cols",
        "chip_rows",
        "pattern",
        "routing",
        "offered_load",
        "machine_seed",
        "traffic_seed",
        "process",
        "read_fraction",
        "warmup_ns",
        "measure_ns",
        "drain_ns",
        "hotspot_fraction",
    ),
    description="One open-loop synthetic-traffic load point",
))

WINDOW_POINT_SURFACE = register_surface(RunSurface(
    name="repro.workload.surface.measure_window_point",
    param_names=(
        "dims",
        "chip_cols",
        "chip_rows",
        "pattern",
        "routing",
        "window",
        "machine_seed",
        "workload_seed",
        "read_fraction",
        "think_ns",
        "warmup_ns",
        "measure_ns",
        "drain_ns",
        "hotspot_fraction",
    ),
    description="One closed-loop fixed-outstanding-window point",
))

PHASE_LOOP_SURFACE = register_surface(RunSurface(
    name="repro.workload.surface.measure_phase_loop",
    param_names=(
        "dims",
        "chip_cols",
        "chip_rows",
        "pattern",
        "routing",
        "messages_per_node",
        "window",
        "iterations",
        "fence_hops",
        "machine_seed",
        "workload_seed",
        "read_fraction",
        "hotspot_fraction",
    ),
    description="One fence-synchronized phase workload",
))

FAULT_LOAD_POINT_SURFACE = register_surface(RunSurface(
    name="repro.faults.surface.measure_fault_load_point",
    param_names=(
        "dims",
        "chip_cols",
        "chip_rows",
        "pattern",
        "routing",
        "offered_load",
        "num_faults",
        "fault_seed",
        "fault_kind",
        "machine_seed",
        "traffic_seed",
        "process",
        "warmup_ns",
        "measure_ns",
        "drain_ns",
        "hotspot_fraction",
    ),
    description="One open-loop load point on a fault-degraded machine",
))

FAULT_PHASE_LOOP_SURFACE = register_surface(RunSurface(
    name="repro.faults.surface.measure_fault_phase_loop",
    param_names=(
        "dims",
        "chip_cols",
        "chip_rows",
        "pattern",
        "routing",
        "messages_per_node",
        "window",
        "iterations",
        "fence_hops",
        "num_faults",
        "fault_seed",
        "machine_seed",
        "workload_seed",
    ),
    description="One fenced phase workload on a fault-degraded machine",
))


# ---------------------------------------------------------------------------
# Figure 5: one-way latency vs hop count on the 128-node machine.
# ---------------------------------------------------------------------------

FIG5_GRID = ParameterGrid(
    {
        "dims": [(4, 4, 8)],
        "machine_seed": 42,
        "harness_seed": 17,
        "max_hops": 8,
        "samples_per_hop": 15,
    }
)

FIG5_SMOKE_GRID = ParameterGrid(
    {
        "dims": [(2, 2, 2)],
        "chip_cols": 6,
        "chip_rows": 6,
        "machine_seed": 42,
        "harness_seed": 17,
        "max_hops": 2,
        "samples_per_hop": 2,
    }
)

register(
    Experiment(
        name="fig5_latency",
        grid=FIG5_GRID,
        smoke_grid=FIG5_SMOKE_GRID,
        description="One-way end-to-end latency vs inter-node hops (Figure 5)",
        version=2,  # v2: results gained per-hop percentile summaries
        surface=LATENCY_CURVE_SURFACE,
    )
)

register(
    Experiment(
        name="min_one_hop",
        grid=ParameterGrid({"machine_seed": 42, "harness_seed": 18, "samples": 30}),
        smoke_grid=ParameterGrid(
            {
                "dims": [(2, 2, 2)],
                "chip_cols": 6,
                "chip_rows": 6,
                "machine_seed": 42,
                "harness_seed": 18,
                "samples": 4,
            }
        ),
        description="Best-placement minimum single-hop latency (~55 ns)",
        surface=MIN_ONE_HOP_SURFACE,
    )
)

# ---------------------------------------------------------------------------
# Figure 11: fence barrier latency vs synchronization domain.
# ---------------------------------------------------------------------------

FIG11_GRID = ParameterGrid({"dims": [(4, 4, 8)], "seed": 42, "max_hops": 8})

FIG11_SMOKE_GRID = ParameterGrid(
    {
        "dims": [(2, 2, 2)],
        "chip_cols": 6,
        "chip_rows": 6,
        "seed": 42,
        "max_hops": 2,
    }
)

register(
    Experiment(
        name="fig11_fence",
        grid=FIG11_GRID,
        smoke_grid=FIG11_SMOKE_GRID,
        description="Network-fence barrier latency vs hop count (Figure 11)",
        surface=FENCE_CURVE_SURFACE,
    )
)

# ---------------------------------------------------------------------------
# Figures 9a/9b: water-box traffic reduction and application speedup.
# ---------------------------------------------------------------------------

FIG9_ATOM_COUNTS = [2048, 4096, 8192, 16384]

FIG9_GRID = ParameterGrid({"n_atoms": FIG9_ATOM_COUNTS})

FIG9_SMOKE_GRID = ParameterGrid({"n_atoms": [256, 512], "steps": 5})

register(
    Experiment(
        name="fig9_water",
        grid=FIG9_GRID,
        smoke_grid=FIG9_SMOKE_GRID,
        description="Water-box traffic reduction and speedup (Figures 9a/9b)",
        surface=WATER_SYSTEM_SURFACE,
    )
)

# ---------------------------------------------------------------------------
# Synthetic-traffic load sweeps: latency vs offered load per pattern.
# ---------------------------------------------------------------------------

#: Offered load as a fraction of per-slice channel capacity; the top of
#: the axis is source line rate (the injection process cannot offer more
#: than one flit per slot).
LOAD_SWEEP_LOADS = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]

#: The patterns that get a registered ``load-sweep-<pattern>`` sweep.
LOAD_SWEEP_PATTERNS = (
    "uniform",
    "transpose",
    "bit-complement",
    "tornado",
    "neighbor",
    "halo",
    "hotspot",
    "all-to-all",
)

#: Tornado needs an X ring of >= 3 nodes to be non-degenerate; an 8-ring
#: puts the half-way offset at 3 hops, the classic worst case for
#: minimal routing (same node count as the 2x2x2 default).
TORNADO_DIMS = (8, 1, 1)


def _load_sweep_grid(pattern: str) -> ParameterGrid:
    return ParameterGrid(
        {
            "dims": [TORNADO_DIMS if pattern == "tornado" else (2, 2, 2)],
            "chip_cols": 6,
            "chip_rows": 6,
            "pattern": pattern,
            "offered_load": list(LOAD_SWEEP_LOADS),
            "machine_seed": 7,
            "traffic_seed": 11,
            "warmup_ns": 400.0,
            "measure_ns": 1600.0,
        }
    )


LOAD_SWEEP_SMOKE_GRID = ParameterGrid(
    {
        "dims": [(2, 1, 1)],
        "chip_cols": 6,
        "chip_rows": 6,
        "pattern": "uniform",
        "offered_load": [0.05, 0.2, 0.4],
        "machine_seed": 7,
        "traffic_seed": 11,
        "warmup_ns": 200.0,
        "measure_ns": 600.0,
    }
)

register(
    Experiment(
        name="load_sweep",
        grid=_load_sweep_grid("uniform"),
        smoke_grid=LOAD_SWEEP_SMOKE_GRID,
        description="Open-loop synthetic-traffic load point "
        "(latency vs offered load)",
        # v3: adaptive-escape routing + the six-VC link map (escape /
        # response / adaptive split).
        version=3,
        surface=LOAD_POINT_SURFACE,
    )
)

LOAD_SWEEPS = {
    f"load-sweep-{pattern}": Sweep(
        "load_sweep", _load_sweep_grid(pattern), label=f"load-sweep-{pattern}"
    )
    for pattern in LOAD_SWEEP_PATTERNS
}

# ---------------------------------------------------------------------------
# Routing ablations: the adversarial patterns under each routing policy.
# ---------------------------------------------------------------------------

#: Policies that get a registered ``route-ablation-<policy>`` sweep.
ROUTE_ABLATION_POLICIES = (
    "fixed-xyz",
    "randomized-minimal",
    "valiant",
    "adaptive-lite",
    "adaptive-escape",
)

#: The PR-2 adversarial patterns each ablation drives to saturation.
ROUTE_ABLATION_PATTERNS = ("transpose", "bit-complement", "hotspot", "tornado")

ROUTE_ABLATION_LOADS = [0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0]


def _route_ablation_grid(policy: str) -> ParameterGrid:
    """One policy's ablation: every adversarial pattern over the load axis.

    A union grid (one subgrid per pattern) because tornado needs its
    own torus shape; the report groups the curves by (pattern, routing).
    """
    return ParameterGrid(
        [
            {
                "dims": [TORNADO_DIMS if pattern == "tornado" else (2, 2, 2)],
                "chip_cols": 6,
                "chip_rows": 6,
                "pattern": pattern,
                "routing": policy,
                "offered_load": list(ROUTE_ABLATION_LOADS),
                "machine_seed": 7,
                "traffic_seed": 11,
                "warmup_ns": 400.0,
                "measure_ns": 1600.0,
            }
            for pattern in ROUTE_ABLATION_PATTERNS
        ]
    )


ROUTE_ABLATION_SMOKE_GRID = ParameterGrid(
    {
        "dims": [(2, 2, 2)],
        "chip_cols": 6,
        "chip_rows": 6,
        "pattern": "uniform",
        "routing": ["randomized-minimal", "valiant", "adaptive-escape"],
        "offered_load": [0.05, 0.2, 0.4],
        "machine_seed": 7,
        "traffic_seed": 11,
        "warmup_ns": 200.0,
        "measure_ns": 600.0,
    }
)

register(
    Experiment(
        name="route_ablation",
        grid=_route_ablation_grid("randomized-minimal"),
        smoke_grid=ROUTE_ABLATION_SMOKE_GRID,
        description="Open-loop load point under a chosen routing policy "
        "(routing ablations)",
        version=2,  # v2: adaptive-escape routing + the six-VC link map
        surface=LOAD_POINT_SURFACE,
    )
)

ROUTE_ABLATIONS = {
    f"route-ablation-{policy}": Sweep(
        "route_ablation",
        _route_ablation_grid(policy),
        label=f"route-ablation-{policy}",
    )
    for policy in ROUTE_ABLATION_POLICIES
}

# ---------------------------------------------------------------------------
# Closed-loop workloads: fixed-outstanding windows and fenced phase loops.
# ---------------------------------------------------------------------------

#: The outstanding-window axis of every ``closed-loop-<pattern>`` sweep.
CLOSED_LOOP_WINDOWS = [1, 2, 4, 8, 16, 32]

#: Patterns that get a registered ``closed-loop-<pattern>`` sweep (the
#: same family the open-loop load sweeps cover, so every closed-loop
#: plateau has an open-loop saturation curve to compare against).
CLOSED_LOOP_PATTERNS = LOAD_SWEEP_PATTERNS


def _closed_loop_grid(pattern: str) -> ParameterGrid:
    return ParameterGrid(
        {
            "dims": [TORNADO_DIMS if pattern == "tornado" else (2, 2, 2)],
            "chip_cols": 6,
            "chip_rows": 6,
            "pattern": pattern,
            "window": list(CLOSED_LOOP_WINDOWS),
            "machine_seed": 7,
            "workload_seed": 11,
            "warmup_ns": 400.0,
            "measure_ns": 1600.0,
        }
    )


CLOSED_LOOP_SMOKE_GRID = ParameterGrid(
    {
        "dims": [(2, 1, 1)],
        "chip_cols": 6,
        "chip_rows": 6,
        "pattern": "uniform",
        "routing": ["randomized-minimal", "valiant", "adaptive-escape"],
        "window": [1, 4],
        "machine_seed": 7,
        "workload_seed": 11,
        "warmup_ns": 200.0,
        "measure_ns": 600.0,
    }
)

register(
    Experiment(
        name="closed_loop",
        grid=_closed_loop_grid("uniform"),
        smoke_grid=CLOSED_LOOP_SMOKE_GRID,
        description="Closed-loop fixed-outstanding-window point "
        "(throughput/latency vs window)",
        version=2,  # v2: adaptive-escape routing + the six-VC link map
        surface=WINDOW_POINT_SURFACE,
    )
)

CLOSED_LOOP_SWEEPS = {
    f"closed-loop-{pattern}": Sweep(
        "closed_loop",
        _closed_loop_grid(pattern),
        label=f"closed-loop-{pattern}",
    )
    for pattern in CLOSED_LOOP_PATTERNS
}

#: Patterns that get a registered ``phase-loop-<pattern>`` sweep; each
#: fans the routing-policy axis out over one fence-synchronized
#: MD-timestep-shaped workload (export burst, fence, return burst,
#: fence).
PHASE_LOOP_PATTERNS = ("halo", "neighbor", "uniform", "tornado")


def _phase_loop_grid(pattern: str) -> ParameterGrid:
    # Tornado gets bandwidth-bound bursts (deep windows, long phases):
    # with latency-bound bursts every policy just pays its path length
    # and minimal routing looks fine, which hides exactly the ring
    # congestion the tornado workload exists to expose.
    heavy = pattern == "tornado"
    return ParameterGrid(
        {
            "dims": [TORNADO_DIMS if heavy else (2, 2, 2)],
            "chip_cols": 6,
            "chip_rows": 6,
            "pattern": pattern,
            "routing": list(ROUTE_ABLATION_POLICIES),
            "messages_per_node": 200 if heavy else 12,
            "window": 64 if heavy else 4,
            "iterations": 1 if heavy else 2,
            "machine_seed": 7,
            "workload_seed": 11,
        }
    )


PHASE_LOOP_SMOKE_GRID = ParameterGrid(
    {
        "dims": [(2, 1, 1)],
        "chip_cols": 6,
        "chip_rows": 6,
        "pattern": "uniform",
        "routing": ["randomized-minimal"],
        "messages_per_node": 4,
        "window": 2,
        "iterations": 1,
        "machine_seed": 7,
        "workload_seed": 11,
    }
)

register(
    Experiment(
        name="phase_loop",
        grid=_phase_loop_grid("halo"),
        smoke_grid=PHASE_LOOP_SMOKE_GRID,
        description="Fence-synchronized phase workload "
        "(MD-timestep iteration time per routing policy)",
        version=2,  # v2: adaptive-escape routing + the six-VC link map
        surface=PHASE_LOOP_SURFACE,
    )
)

PHASE_LOOP_SWEEPS = {
    f"phase-loop-{pattern}": Sweep(
        "phase_loop",
        _phase_loop_grid(pattern),
        label=f"phase-loop-{pattern}",
    )
    for pattern in PHASE_LOOP_PATTERNS
}

# ---------------------------------------------------------------------------
# Fault sweeps: degraded-mode resilience per routing policy.
# ---------------------------------------------------------------------------

#: Policies that get registered ``fault-sweep-<policy>`` and
#: ``fault-phase-loop-<policy>`` sweeps — the deterministic table-driven
#: baseline, the paper's randomized-minimal default, and the adaptive
#: policy whose misroute budget is the degraded-mode story.
FAULT_SWEEP_POLICIES = (
    "fixed-xyz",
    "randomized-minimal",
    "adaptive-escape",
)

#: The fault-count axis.  Every count is a connectivity-preserving
#: dead-link set derived from ``fault_seed`` (the sampler resamples any
#: partitioning draw), so the sweep measures routing around damage,
#: never unreachable destinations.  12 dead cables out of 24 on the
#: 2x2x2 torus is the deep-damage end where policies separate hard.
FAULT_SWEEP_COUNTS = [0, 2, 4, 6, 8, 10, 12]

#: Saturating offered load: with headroom to spare every policy hides
#: the damage, at line rate the surviving cables are the bottleneck and
#: the accepted-load gap between policies is the resilience metric.
FAULT_SWEEP_LOAD = 1.0


def _fault_sweep_grid(policy: str) -> ParameterGrid:
    return ParameterGrid(
        {
            "dims": [(2, 2, 2)],
            "chip_cols": 6,
            "chip_rows": 6,
            "pattern": "uniform",
            "routing": policy,
            "offered_load": FAULT_SWEEP_LOAD,
            "num_faults": list(FAULT_SWEEP_COUNTS),
            "fault_seed": 1,
            "machine_seed": 0,
            "traffic_seed": 0,
            "warmup_ns": 200.0,
            "measure_ns": 800.0,
        }
    )


FAULT_SWEEP_SMOKE_GRID = ParameterGrid(
    {
        "dims": [(2, 2, 2)],
        "chip_cols": 6,
        "chip_rows": 6,
        "pattern": "uniform",
        "routing": ["fixed-xyz", "adaptive-escape"],
        "offered_load": 0.3,
        "num_faults": [0, 4],
        "fault_seed": 1,
        "machine_seed": 0,
        "traffic_seed": 0,
        "warmup_ns": 100.0,
        "measure_ns": 300.0,
    }
)

register(
    Experiment(
        name="fault_sweep",
        grid=_fault_sweep_grid("randomized-minimal"),
        smoke_grid=FAULT_SWEEP_SMOKE_GRID,
        description="Open-loop accepted load vs dead-cable count "
        "(degraded-mode resilience per routing policy)",
        surface=FAULT_LOAD_POINT_SURFACE,
    )
)

FAULT_SWEEPS = {
    f"fault-sweep-{policy}": Sweep(
        "fault_sweep",
        _fault_sweep_grid(policy),
        label=f"fault-sweep-{policy}",
    )
    for policy in FAULT_SWEEP_POLICIES
}


def _fault_phase_loop_grid(policy: str) -> ParameterGrid:
    return ParameterGrid(
        {
            "dims": [(2, 2, 2)],
            "chip_cols": 6,
            "chip_rows": 6,
            "pattern": "halo",
            "routing": policy,
            "messages_per_node": 8,
            "window": 4,
            "iterations": 2,
            "num_faults": [0, 2, 4, 6],
            "fault_seed": 1,
            "machine_seed": 0,
            "workload_seed": 0,
        }
    )


FAULT_PHASE_LOOP_SMOKE_GRID = ParameterGrid(
    {
        "dims": [(2, 2, 2)],
        "chip_cols": 6,
        "chip_rows": 6,
        "pattern": "halo",
        "routing": ["adaptive-escape"],
        "messages_per_node": 4,
        "window": 2,
        "iterations": 1,
        "num_faults": [0, 2],
        "fault_seed": 1,
        "machine_seed": 0,
        "workload_seed": 0,
    }
)

register(
    Experiment(
        name="fault_phase_loop",
        grid=_fault_phase_loop_grid("randomized-minimal"),
        smoke_grid=FAULT_PHASE_LOOP_SMOKE_GRID,
        description="Fenced phase-loop iteration time vs dead-cable count "
        "(degraded-mode iteration-time growth per routing policy)",
        surface=FAULT_PHASE_LOOP_SURFACE,
    )
)

FAULT_PHASE_LOOP_SWEEPS = {
    f"fault-phase-loop-{policy}": Sweep(
        "fault_phase_loop",
        _fault_phase_loop_grid(policy),
        label=f"fault-phase-loop-{policy}",
    )
    for policy in FAULT_SWEEP_POLICIES
}

# ---------------------------------------------------------------------------
# 512-node scaling study: the 8x8x8 torus with reduced-size chips.
# ---------------------------------------------------------------------------

SCALING_512_FENCE_GRID = ParameterGrid(
    {
        "dims": [(8, 8, 8)],
        "chip_cols": 6,
        "chip_rows": 6,
        "seed": 9,
        "hops": [[1, 2, 4, 8, 12]],
        "request_vcs": 1,
        "slices": 1,
    }
)

SCALING_512_LATENCY_GRID = ParameterGrid(
    {
        "dims": [(8, 8, 8)],
        "chip_cols": 6,
        "chip_rows": 6,
        "machine_seed": 9,
        "harness_seed": 10,
        "max_hops": 12,
        "samples_per_hop": 4,
    }
)

#: Adaptive-escape at 512-node scale: closed-loop window points and one
#: fenced phase loop on the 8x8x8 torus, each ablated against the
#: paper's randomized-minimal baseline.  Short measure windows keep one
#: point tractable (a 512-chip machine is ~100x the default build);
#: these sweeps are CLI-driven, not part of tier-1.
SCALING_512_CLOSED_LOOP_GRID = ParameterGrid(
    {
        "dims": [(8, 8, 8)],
        "chip_cols": 6,
        "chip_rows": 6,
        "pattern": "neighbor",
        "routing": ["randomized-minimal", "adaptive-escape"],
        "window": [1, 4],
        "machine_seed": 9,
        "workload_seed": 13,
        "warmup_ns": 200.0,
        "measure_ns": 800.0,
    }
)

SCALING_512_PHASE_LOOP_GRID = ParameterGrid(
    {
        "dims": [(8, 8, 8)],
        "chip_cols": 6,
        "chip_rows": 6,
        "pattern": "halo",
        "routing": ["randomized-minimal", "adaptive-escape"],
        "messages_per_node": 4,
        "window": 2,
        "iterations": 1,
        "machine_seed": 9,
        "workload_seed": 13,
    }
)

# ---------------------------------------------------------------------------
# Named sweeps: what the benchmarks and the CLI actually run.
# ---------------------------------------------------------------------------

FIG5_SWEEP = Sweep("fig5_latency", FIG5_GRID, label="fig5")
FIG9_SWEEP = Sweep("fig9_water", FIG9_GRID, label="fig9")
FIG11_SWEEP = Sweep("fig11_fence", FIG11_GRID, label="fig11")
SCALING_512_FENCE_SWEEP = Sweep(
    "fig11_fence", SCALING_512_FENCE_GRID, label="scaling-512-fence"
)
SCALING_512_LATENCY_SWEEP = Sweep(
    "fig5_latency", SCALING_512_LATENCY_GRID, label="scaling-512-latency"
)
SCALING_512_CLOSED_LOOP_SWEEP = Sweep(
    "closed_loop",
    SCALING_512_CLOSED_LOOP_GRID,
    label="scaling-512-closed-loop-adaptive",
)
SCALING_512_PHASE_LOOP_SWEEP = Sweep(
    "phase_loop",
    SCALING_512_PHASE_LOOP_GRID,
    label="scaling-512-phase-loop-adaptive",
)

BUILTIN_SWEEPS = {
    sweep.name: sweep
    for sweep in (
        FIG5_SWEEP,
        FIG9_SWEEP,
        FIG11_SWEEP,
        SCALING_512_FENCE_SWEEP,
        SCALING_512_LATENCY_SWEEP,
        SCALING_512_CLOSED_LOOP_SWEEP,
        SCALING_512_PHASE_LOOP_SWEEP,
        *LOAD_SWEEPS.values(),
        *ROUTE_ABLATIONS.values(),
        *CLOSED_LOOP_SWEEPS.values(),
        *PHASE_LOOP_SWEEPS.values(),
        *FAULT_SWEEPS.values(),
        *FAULT_PHASE_LOOP_SWEEPS.values(),
    )
}

DEFAULT_SWEEP_NAMES = ("fig5", "fig9", "fig11")


def smoke_sweeps() -> list:
    """Tiny sweeps over every experiment that declares a smoke grid."""
    from .experiment import list_experiments

    return [
        Sweep(exp.name, exp.smoke_grid, label=f"smoke-{exp.name}")
        for exp in list_experiments()
        if exp.smoke_grid is not None
    ]
