"""Parallel, cached experiment runner.

A declarative :class:`Experiment`/:class:`Sweep` API over the paper's
simulations: parameter grids expand deterministically, runs fan out
across worker processes, and completed runs are memoized in a
content-addressed on-disk cache so repeated sweeps are near-free.

Quick use::

    from repro.runner import ResultCache, run_sweep
    from repro.runner.experiments import FIG5_SWEEP

    result = run_sweep(FIG5_SWEEP, jobs=4, cache=ResultCache(".repro-cache"))
    points = result.runs[0].result["points"]

CLI: ``python -m repro.runner sweep fig5 --jobs 4`` (or ``repro-runner``
after ``pip install -e .``).
"""

from .cache import CacheStats, ResultCache, canonical_json, canonicalize, config_digest
from .catalog import RunSurface, get_surface, list_surfaces, register_surface
from .execute import RunResult, SweepResult, run_sweep, run_sweeps
from .experiment import (
    Experiment,
    Sweep,
    ensure_builtin_experiments,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)
from .grid import ParameterGrid

__all__ = [
    "CacheStats",
    "ResultCache",
    "canonical_json",
    "canonicalize",
    "config_digest",
    "RunSurface",
    "get_surface",
    "list_surfaces",
    "register_surface",
    "RunResult",
    "SweepResult",
    "run_sweep",
    "run_sweeps",
    "Experiment",
    "Sweep",
    "ensure_builtin_experiments",
    "get_experiment",
    "list_experiments",
    "register",
    "run_experiment",
    "ParameterGrid",
]
