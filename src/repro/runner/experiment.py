"""The declarative Experiment / Sweep API and the experiment registry.

An :class:`Experiment` names a pure run function (JSON-able params in,
JSON-able result out) plus its default parameter grid; a :class:`Sweep`
binds an experiment to a concrete grid.  Worker processes resolve
experiments by name through the module-level registry, so only the
``(name, params)`` pair ever crosses a process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .grid import ParameterGrid

RunFn = Callable[..., dict]


@dataclass(frozen=True)
class Experiment:
    """A named, parameterized, cacheable unit of simulation work.

    The run entry point is either a :class:`~repro.runner.catalog.
    RunSurface` passed as ``surface`` (the built-in experiments: a
    registered, importable-by-name surface that maps a params dict to a
    result dict) or a plain ``fn`` (custom registrations).  Either must
    be picklable and free of process-local state: the runner may execute
    it in a worker process.  Bump ``version`` when run semantics change
    so stale cache entries stop matching.  ``param_names`` declares the
    accepted parameter names so overrides can be validated up front; it
    defaults to the surface's declaration, and ``None`` (no surface, no
    declaration) disables validation.
    """

    name: str
    fn: Optional[RunFn] = None
    grid: Optional[ParameterGrid] = None
    description: str = ""
    version: int = 1
    smoke_grid: Optional[ParameterGrid] = None
    param_names: Optional[Tuple[str, ...]] = None
    #: A RunSurface (callable, preferred) or a bare dotted path string
    #: (documentation only — ``fn`` must then carry the behavior).
    surface: object = ""

    def __post_init__(self) -> None:
        if self.grid is None:
            raise TypeError(f"experiment {self.name!r} requires a grid")
        if self.fn is None and not callable(self.surface):
            raise TypeError(
                f"experiment {self.name!r} needs fn= or a callable "
                "surface= (a RunSurface)")
        if self.param_names is None:
            declared = getattr(self.surface, "param_names", None)
            if declared is not None:
                object.__setattr__(self, "param_names", tuple(declared))

    @property
    def surface_name(self) -> str:
        """The surface's dotted path, or ``""`` when undeclared."""
        return str(self.surface) if self.surface else ""

    def run(self, params: Mapping[str, object]) -> dict:
        """Execute one configuration."""
        if self.fn is not None:
            return self.fn(**dict(params))
        return self.surface(dict(params))

    def validate_params(self, params: Mapping[str, object]) -> None:
        """Reject parameter names ``fn`` does not accept.

        A no-op when the experiment declares no ``param_names`` (custom
        registrations); otherwise raises ``ValueError`` naming both the
        unknown and the accepted parameters, so a typo in ``--set``
        fails loudly instead of dying deep inside a worker (or, worse,
        being silently swallowed by a ``**params`` wrapper).
        """
        if self.param_names is None:
            return
        unknown = sorted(set(params) - set(self.param_names))
        if unknown:
            known = ", ".join(sorted(self.param_names))
            raise ValueError(
                f"experiment {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: {known}"
            )


@dataclass(frozen=True)
class Sweep:
    """An experiment bound to the parameter grid to fan out over."""

    experiment: str
    grid: Optional[ParameterGrid] = None
    label: str = ""

    @property
    def name(self) -> str:
        return self.label or self.experiment


_REGISTRY: Dict[str, Experiment] = {}
_builtins_loaded = False


def register(experiment: Experiment, replace: bool = False) -> Experiment:
    """Add an experiment to the registry (used at module import time)."""
    if not replace and experiment.name in _REGISTRY:
        raise ValueError(f"experiment {experiment.name!r} already registered")
    _REGISTRY[experiment.name] = experiment
    return experiment


def ensure_builtin_experiments() -> None:
    """Idempotently load the built-in experiment definitions.

    Called lazily (not at package import) so `repro.runner` can be
    imported without pulling in every simulation subsystem, and called
    again inside worker processes before resolving task names.
    """
    global _builtins_loaded
    if not _builtins_loaded:
        from . import experiments  # noqa: F401  (registers on import)

        _builtins_loaded = True


def get_experiment(name: str) -> Experiment:
    """Resolve a registered experiment by name."""
    ensure_builtin_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown experiment {name!r}; registered: {known}") from None


def list_experiments() -> List[Experiment]:
    """All registered experiments, sorted by name."""
    ensure_builtin_experiments()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_experiment(name: str, params: Optional[Mapping[str, object]] = None) -> dict:
    """Run one configuration of a registered experiment in-process."""
    return get_experiment(name).run(params or {})
