"""``repro-runner bench`` — the pinned simulator benchmark grid.

A small, fixed set of benchmark cases (one open-loop load point, one
closed-loop window point, one phase loop) that every revision runs the
same way, so host wall-clock numbers are comparable across commits.
``run_bench`` executes each case in-process, repeats it, and reports

* the best and mean wall-clock seconds per repeat (best-of-N is the
  standard noise filter for microbenchmarks),
* a throughput figure (simulated work items — packet deliveries or
  completed transactions — per host second),
* and the flattened numeric result surface of the final repeat, so a
  perf regression that also changes *results* is immediately visible.

``bench --json`` writes the payload as ``BENCH_<rev>.json`` (``rev``
from git, ``unknown`` outside a checkout) — the snapshot artifact the
CI overhead gate and cross-revision comparisons diff.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..observe.ledger import flatten_numeric, working_tree_rev
from .cache import canonicalize
from .experiment import get_experiment
from .sentinel import BENCH_SCHEMA_ID

__all__ = ["BENCH_CASES", "BenchCase", "bench_filename", "current_rev",
           "flatten_numeric", "run_bench"]


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark configuration."""

    name: str
    experiment: str
    params: Dict[str, object]
    #: Dotted path into the result whose value counts "work items"
    #: (packets delivered) for the throughput figure; None disables it.
    work_key: Optional[str] = None


#: The pinned grid.  Frozen on purpose: editing a case invalidates every
#: historical BENCH_<rev>.json comparison, so new cases get new names.
BENCH_CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        name="open-loop-uniform-0.4",
        experiment="load_sweep",
        params={
            "dims": (2, 1, 1), "chip_cols": 6, "chip_rows": 6,
            "pattern": "uniform", "offered_load": 0.4,
            "machine_seed": 7, "traffic_seed": 11,
            "warmup_ns": 200.0, "measure_ns": 600.0,
        },
        work_key="classes.request.delivered_packets",
    ),
    BenchCase(
        name="closed-loop-window-4",
        experiment="closed_loop",
        params={
            "dims": (2, 1, 1), "chip_cols": 6, "chip_rows": 6,
            "pattern": "uniform", "routing": "randomized-minimal",
            "window": 4, "machine_seed": 7, "workload_seed": 11,
            "warmup_ns": 200.0, "measure_ns": 600.0,
        },
        work_key="completed_transactions",
    ),
    BenchCase(
        name="phase-loop-uniform",
        experiment="phase_loop",
        params={
            "dims": (2, 1, 1), "chip_cols": 6, "chip_rows": 6,
            "pattern": "uniform", "routing": "randomized-minimal",
            "messages_per_node": 4, "window": 2, "iterations": 1,
            "machine_seed": 7, "workload_seed": 11,
        },
        work_key=None,
    ),
)


def current_rev() -> str:
    """Short git revision of the working tree, or ``unknown``.

    Shared with the run ledger (:func:`repro.observe.ledger.working_tree_rev`)
    so bench snapshots and ledger records stamp the same revision string.
    """
    return working_tree_rev()


def bench_filename(rev: Optional[str] = None) -> str:
    return f"BENCH_{rev if rev is not None else current_rev()}.json"


def _dig(payload: object, dotted: str) -> Optional[float]:
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def run_bench(repeat: int = 3,
              cases: Optional[Tuple[BenchCase, ...]] = None,
              progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run the benchmark grid; returns the BENCH payload."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    selected = BENCH_CASES if cases is None else cases
    rows = []
    for case in selected:
        experiment = get_experiment(case.experiment)
        params = canonicalize(case.params)
        experiment.validate_params(params)
        wall: List[float] = []
        result: dict = {}
        for index in range(repeat):
            start = time.perf_counter()
            result = experiment.run(params)
            wall.append(time.perf_counter() - start)
            if progress is not None:
                progress(f"bench {case.name}: repeat {index + 1}/{repeat} "
                         f"in {wall[-1]:.3f}s")
        result = canonicalize(result)
        best = min(wall)
        work = _dig(result, case.work_key) if case.work_key else None
        rows.append({
            "name": case.name,
            "experiment": case.experiment,
            "params": params,
            "repeat": repeat,
            "wall_s": {
                "best": best,
                "mean": sum(wall) / len(wall),
                "all": list(wall),
            },
            "throughput_per_s": (work / best if work and best > 0 else None),
            "metrics": flatten_numeric(result),
        })
    return {
        "schema": BENCH_SCHEMA_ID,
        "rev": current_rev(),
        "repeat": repeat,
        "cases": rows,
    }


def bench_table(payload: dict) -> str:
    """Human-readable table of one BENCH payload."""
    from ..analysis.report import format_table

    rows = []
    for case in payload["cases"]:
        throughput = case.get("throughput_per_s")
        rows.append([
            case["name"],
            case["experiment"],
            f"{case['wall_s']['best']:.3f}",
            f"{case['wall_s']['mean']:.3f}",
            f"{throughput:.0f}" if throughput else "-",
        ])
    table = format_table(
        ("case", "experiment", "best_s", "mean_s", "work/s"), rows)
    return f"bench @ {payload['rev']} (repeat={payload['repeat']})\n{table}"
