"""Sweep execution: cache lookup, process fan-out, ordered collection.

Runs are enumerated in the grid's canonical order; cached configs are
served from the :class:`~repro.runner.cache.ResultCache`, and the
remainder is executed either inline (``jobs == 1``) or on a
``concurrent.futures`` process pool.  Results are reassembled in grid
order regardless of completion order, and every result — fresh or
cached — is canonicalized through JSON, so a sweep's output is
byte-identical for any job count.

Observability (:mod:`repro.observe`) rides in the task tuple, never in
the parameter dict: an observed worker activates the ambient context,
runs the configuration exactly as an unobserved worker would, and ships
the collected per-machine artifacts back beside the result.  Cache
digests therefore never depend on observation, and observed runs bypass
cache *reads* (every config must actually execute to produce artifacts)
while still populating the cache with their — byte-identical — results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..observe import context as observe_context
from ..observe.artifacts import write_run_artifacts
from ..observe.config import ObserveConfig
from .cache import ResultCache, canonicalize, config_digest
from .experiment import Experiment, Sweep, get_experiment


@dataclass(frozen=True)
class RunResult:
    """One completed configuration of a sweep."""

    experiment: str
    params: Dict[str, object]
    result: dict
    cached: bool
    elapsed_s: float
    artifact_paths: Tuple[str, ...] = ()

    def record(self) -> Dict[str, object]:
        """The deterministic, emittable form of this run."""
        return {
            "experiment": self.experiment,
            "params": self.params,
            "result": self.result,
        }


@dataclass(frozen=True)
class SweepResult:
    """All runs of one sweep, in grid order."""

    label: str
    experiment: str
    runs: Tuple[RunResult, ...]

    @property
    def cache_hits(self) -> int:
        return sum(1 for run in self.runs if run.cached)

    @property
    def cache_misses(self) -> int:
        return len(self.runs) - self.cache_hits

    @property
    def elapsed_s(self) -> float:
        return sum(run.elapsed_s for run in self.runs if not run.cached)

    def record(self) -> Dict[str, object]:
        """The deterministic, emittable form of this sweep."""
        return {
            "label": self.label,
            "experiment": self.experiment,
            "runs": [run.record() for run in self.runs],
        }


def _execute_task(
    task: Tuple[Experiment, Dict[str, object], Optional[ObserveConfig]],
) -> Tuple[dict, float, Optional[Dict[str, list]]]:
    """Worker entry point: run one configuration, canonicalize the result.

    The :class:`Experiment` itself travels in the task (its ``fn`` is a
    module-level function, picklable by reference), so workers need no
    registry state — custom-registered experiments work under any
    multiprocessing start method, fork or spawn.  The third element is
    the :class:`~repro.observe.config.ObserveConfig` (or ``None``): it
    is activated as the ambient context around the run, so any machine
    the experiment builds observes itself, and the collected artifacts
    travel back with the result.
    """
    experiment, params, observe = task
    if observe is None:
        start = time.perf_counter()
        result = experiment.run(params)
        elapsed = time.perf_counter() - start
        return canonicalize(result), elapsed, None
    observe_context.activate(observe)
    try:
        start = time.perf_counter()
        result = experiment.run(params)
        elapsed = time.perf_counter() - start
        artifacts = observe_context.collect()
    finally:
        observe_context.deactivate()
    return canonicalize(result), elapsed, artifacts


def run_sweep(
    sweep: Sweep,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    observe: Optional[ObserveConfig] = None,
    artifact_dir: Optional[Path] = None,
) -> SweepResult:
    """Execute every configuration of ``sweep``.

    ``jobs`` bounds worker processes for the uncached remainder; results
    come back in grid order either way.  With a ``cache``, completed
    configs are reused and fresh ones are stored.

    With an enabled ``observe`` config every configuration executes (no
    cache reads — a cached result has no artifacts) and each run's
    collected artifacts are written under ``artifact_dir`` keyed by the
    run's cache digest; results still land in the cache, byte-identical
    to an unobserved run's.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if observe is not None and not observe.enabled:
        observe = None
    experiment = get_experiment(sweep.experiment)
    grid = sweep.grid if sweep.grid is not None else experiment.grid
    param_sets: List[Dict[str, object]] = [canonicalize(p) for p in grid]

    runs: List[Optional[RunResult]] = [None] * len(param_sets)
    pending: List[int] = []
    for index, params in enumerate(param_sets):
        entry = (
            cache.get(experiment.name, params, experiment.version)
            if cache is not None and observe is None
            else None
        )
        if entry is not None:
            runs[index] = RunResult(
                experiment=experiment.name,
                params=params,
                result=entry["result"],
                cached=True,
                elapsed_s=float(entry.get("elapsed_s") or 0.0),
            )
        else:
            pending.append(index)

    if progress is not None and param_sets:
        progress(
            f"{sweep.name}: {len(param_sets)} runs "
            f"({len(param_sets) - len(pending)} cached, {len(pending)} to run)"
        )

    tasks = [(experiment, param_sets[index], observe) for index in pending]
    if not tasks:
        outcomes: Iterable[Tuple[dict, float, Optional[Dict[str, list]]]] = ()
    elif jobs == 1 or len(tasks) == 1:
        outcomes = map(_execute_task, tasks)
    else:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
        try:
            outcomes = list(pool.map(_execute_task, tasks))
        finally:
            pool.shutdown()

    for index, (result, elapsed, artifacts) in zip(pending, outcomes):
        params = param_sets[index]
        if cache is not None:
            cache.put(experiment.name, params, result, elapsed, experiment.version)
        artifact_paths: Tuple[str, ...] = ()
        if artifacts and artifact_dir is not None:
            digest = config_digest(experiment.name, params, experiment.version)
            written = write_run_artifacts(artifact_dir, digest, artifacts)
            artifact_paths = tuple(str(path) for path in written)
        runs[index] = RunResult(
            experiment=experiment.name,
            params=params,
            result=result,
            cached=False,
            elapsed_s=elapsed,
            artifact_paths=artifact_paths,
        )
        if progress is not None:
            progress(f"{sweep.name}: finished run {index + 1}/{len(param_sets)}")

    return SweepResult(
        label=sweep.name,
        experiment=experiment.name,
        runs=tuple(run for run in runs if run is not None),
    )


def run_sweeps(
    sweeps: Iterable[Sweep],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    observe: Optional[ObserveConfig] = None,
    artifact_dir: Optional[Path] = None,
) -> List[SweepResult]:
    """Run several sweeps sequentially (each fans out internally)."""
    return [
        run_sweep(s, jobs=jobs, cache=cache, progress=progress,
                  observe=observe, artifact_dir=artifact_dir)
        for s in sweeps
    ]
