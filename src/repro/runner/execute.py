"""Sweep execution: cache lookup, process fan-out, ordered collection.

Runs are enumerated in the grid's canonical order; cached configs are
served from the :class:`~repro.runner.cache.ResultCache`, and the
remainder is executed either inline (``jobs == 1``) or on a
``concurrent.futures`` process pool.  Results are reassembled in grid
order regardless of completion order, and every result — fresh or
cached — is canonicalized through JSON, so a sweep's output is
byte-identical for any job count.

Observability (:mod:`repro.observe`) rides in the task tuple, never in
the parameter dict: an observed worker activates the ambient context,
runs the configuration exactly as an unobserved worker would, and ships
the collected per-machine artifacts back beside the result.  Cache
digests therefore never depend on observation, and observed runs bypass
cache *reads* (every config must actually execute to produce artifacts)
while still populating the cache with their — byte-identical — results.

Cross-run accounting (:mod:`repro.observe.ledger`) follows the same
discipline with a determinism split: workers heartbeat per-grid-point
state (queued/running/done/cache-hit/failed, wall times, pids) into the
non-deterministic ``status.jsonl``, while the coordinating process
appends one deterministic record per grid point — in grid order, with
no wall-clock fields — to ``ledger.jsonl``, which is therefore
byte-identical across ``--jobs`` splits.  Both writes happen strictly
outside simulation, so results and digests never depend on the ledger.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..observe import context as observe_context
from ..observe.artifacts import write_run_artifacts
from ..observe.config import ObserveConfig
from ..observe.ledger import RunLedger
from ..observe.status import append_status
from .cache import ResultCache, canonicalize, config_digest
from .experiment import Experiment, Sweep, get_experiment


@dataclass(frozen=True)
class RunResult:
    """One completed configuration of a sweep."""

    experiment: str
    params: Dict[str, object]
    result: dict
    cached: bool
    elapsed_s: float
    artifact_paths: Tuple[str, ...] = ()

    def record(self) -> Dict[str, object]:
        """The deterministic, emittable form of this run."""
        return {
            "experiment": self.experiment,
            "params": self.params,
            "result": self.result,
        }


@dataclass(frozen=True)
class SweepResult:
    """All runs of one sweep, in grid order."""

    label: str
    experiment: str
    runs: Tuple[RunResult, ...]

    @property
    def cache_hits(self) -> int:
        return sum(1 for run in self.runs if run.cached)

    @property
    def cache_misses(self) -> int:
        return len(self.runs) - self.cache_hits

    @property
    def elapsed_s(self) -> float:
        return sum(run.elapsed_s for run in self.runs if not run.cached)

    def record(self) -> Dict[str, object]:
        """The deterministic, emittable form of this sweep."""
        return {
            "label": self.label,
            "experiment": self.experiment,
            "runs": [run.record() for run in self.runs],
        }


#: Where a worker heartbeats one grid point: (status file path, sweep
#: label, grid index, config digest).  None disables status writes.
StatusRef = Optional[Tuple[str, str, int, str]]


def _execute_task(
    task: Tuple[Experiment, Dict[str, object], Optional[ObserveConfig],
                StatusRef],
) -> Tuple[dict, float, Optional[Dict[str, list]]]:
    """Worker entry point: run one configuration, canonicalize the result.

    The :class:`Experiment` itself travels in the task (its ``fn`` is a
    module-level function, picklable by reference), so workers need no
    registry state — custom-registered experiments work under any
    multiprocessing start method, fork or spawn.  The third element is
    the :class:`~repro.observe.config.ObserveConfig` (or ``None``): it
    is activated as the ambient context around the run, so any machine
    the experiment builds observes itself, and the collected artifacts
    travel back with the result.  The fourth is the status heartbeat
    target (or ``None``): lifecycle events are appended strictly before
    and after the simulation, never inside it.
    """
    experiment, params, observe, status = task
    if status is not None:
        path, sweep_label, index, digest = status
        append_status(Path(path), sweep_label, index, "running",
                      digest=digest)
    try:
        if observe is None:
            start = time.perf_counter()
            result = experiment.run(params)
            elapsed = time.perf_counter() - start
            artifacts = None
        else:
            observe_context.activate(observe)
            try:
                start = time.perf_counter()
                result = experiment.run(params)
                elapsed = time.perf_counter() - start
                artifacts = observe_context.collect()
            finally:
                observe_context.deactivate()
    except BaseException:
        if status is not None:
            append_status(Path(path), sweep_label, index, "failed",
                          digest=digest)
        raise
    if status is not None:
        append_status(Path(path), sweep_label, index, "done",
                      digest=digest, elapsed_s=elapsed)
    return canonicalize(result), elapsed, artifacts


def run_sweep(
    sweep: Sweep,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    observe: Optional[ObserveConfig] = None,
    artifact_dir: Optional[Path] = None,
    ledger: Optional[RunLedger] = None,
) -> SweepResult:
    """Execute every configuration of ``sweep``.

    ``jobs`` bounds worker processes for the uncached remainder; results
    come back in grid order either way.  With a ``cache``, completed
    configs are reused and fresh ones are stored.

    With an enabled ``observe`` config every configuration executes (no
    cache reads — a cached result has no artifacts) and each run's
    collected artifacts are written under ``artifact_dir`` keyed by the
    run's cache digest; results still land in the cache, byte-identical
    to an unobserved run's.

    With a ``ledger``, workers heartbeat per-point status into the
    ledger's status file while the sweep runs, and one deterministic
    record per grid point is appended to the run ledger afterwards —
    in grid order, so ``ledger.jsonl`` is byte-identical for any job
    count.  Neither write can perturb results: both happen strictly
    outside simulation.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if observe is not None and not observe.enabled:
        observe = None
    experiment = get_experiment(sweep.experiment)
    grid = sweep.grid if sweep.grid is not None else experiment.grid
    param_sets: List[Dict[str, object]] = [canonicalize(p) for p in grid]
    digests: List[str] = [
        config_digest(experiment.name, params, experiment.version)
        for params in param_sets
    ]
    status_path = ledger.status_path if ledger is not None else None

    runs: List[Optional[RunResult]] = [None] * len(param_sets)
    metrics_by_index: Dict[int, list] = {}
    pending: List[int] = []
    for index, params in enumerate(param_sets):
        entry = (
            cache.get(experiment.name, params, experiment.version)
            if cache is not None and observe is None
            else None
        )
        if entry is not None:
            runs[index] = RunResult(
                experiment=experiment.name,
                params=params,
                result=entry["result"],
                cached=True,
                elapsed_s=float(entry.get("elapsed_s") or 0.0),
            )
            if status_path is not None:
                append_status(status_path, sweep.name, index, "cache-hit",
                              digest=digests[index])
        else:
            pending.append(index)
            if status_path is not None:
                append_status(status_path, sweep.name, index, "queued",
                              digest=digests[index])

    if progress is not None and param_sets:
        progress(
            f"{sweep.name}: {len(param_sets)} runs "
            f"({len(param_sets) - len(pending)} cached, {len(pending)} to run)"
        )

    tasks = [
        (
            experiment,
            param_sets[index],
            observe,
            (str(status_path), sweep.name, index, digests[index])
            if status_path is not None
            else None,
        )
        for index in pending
    ]
    if not tasks:
        outcomes: Iterable[Tuple[dict, float, Optional[Dict[str, list]]]] = ()
    elif jobs == 1 or len(tasks) == 1:
        outcomes = map(_execute_task, tasks)
    else:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
        try:
            outcomes = list(pool.map(_execute_task, tasks))
        finally:
            pool.shutdown()

    for index, (result, elapsed, artifacts) in zip(pending, outcomes):
        params = param_sets[index]
        if cache is not None:
            cache.put(experiment.name, params, result, elapsed, experiment.version)
        artifact_paths: Tuple[str, ...] = ()
        if artifacts and artifact_dir is not None:
            written = write_run_artifacts(artifact_dir, digests[index],
                                          artifacts)
            artifact_paths = tuple(str(path) for path in written)
        if artifacts and ledger is not None:
            metrics_by_index[index] = artifacts.get("metrics") or []
        runs[index] = RunResult(
            experiment=experiment.name,
            params=params,
            result=result,
            cached=False,
            elapsed_s=elapsed,
            artifact_paths=artifact_paths,
        )
        if progress is not None:
            progress(f"{sweep.name}: finished run {index + 1}/{len(param_sets)}")

    if ledger is not None:
        # Deterministic records, appended by the coordinator in grid
        # order: no wall times, no worker ids, byte-identical --jobs 1/N.
        for index, run in enumerate(runs):
            if run is None:
                continue
            ledger.record_run(
                sweep=sweep.name,
                grid_index=index,
                experiment=experiment.name,
                version=experiment.version,
                digest=digests[index],
                params=run.params,
                result=run.result,
                cached=run.cached,
                observed=observe is not None,
                metrics_machines=metrics_by_index.get(index),
            )

    return SweepResult(
        label=sweep.name,
        experiment=experiment.name,
        runs=tuple(run for run in runs if run is not None),
    )


def run_sweeps(
    sweeps: Iterable[Sweep],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    observe: Optional[ObserveConfig] = None,
    artifact_dir: Optional[Path] = None,
    ledger: Optional[RunLedger] = None,
) -> List[SweepResult]:
    """Run several sweeps sequentially (each fans out internally)."""
    return [
        run_sweep(s, jobs=jobs, cache=cache, progress=progress,
                  observe=observe, artifact_dir=artifact_dir, ledger=ledger)
        for s in sweeps
    ]
