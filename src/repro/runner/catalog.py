"""Run surfaces and the auto-generated experiment catalog.

A :class:`RunSurface` is the one picklable shape every experiment entry
point shares: ``surface(params: dict) -> dict`` with declared
``param_names``.  It names a module-level pure function by dotted path
and resolves it lazily, so importing the registry stays cheap, workers
only load what they execute, and the same object is both the runner's
entry point and the catalog's documentation — the docs literally cannot
name a function the runner does not call.

The catalog renderer (``repro-runner list --markdown``) turns the
experiment and surface registries into a Markdown document —
``docs/experiments.md`` is this output, committed.  The renderer is
deterministic (sorted registries, stable value formatting), so CI can
regenerate the catalog and fail on any diff: the committed docs can
never drift from the registry that actually runs.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from .experiment import Experiment, ensure_builtin_experiments, list_experiments
from .grid import ParameterGrid


@dataclass(frozen=True)
class RunSurface:
    """A named, picklable run surface: ``surface(params) -> dict``.

    ``name`` is the dotted path of a module-level pure function (JSON-
    able keyword parameters in, JSON-able dict out); ``param_names``
    declares the keywords it accepts, which is what ``--set`` validation
    and the generated catalog read.  The function is resolved on call,
    never at registration, so surfaces can be enumerated without
    importing any simulation subsystem.
    """

    name: str
    param_names: Tuple[str, ...]
    description: str = ""

    def __str__(self) -> str:
        return self.name

    def resolve(self) -> Callable[..., dict]:
        """Import and return the underlying function."""
        module_name, _, attr = self.name.rpartition(".")
        if not module_name:
            raise ValueError(f"surface name {self.name!r} is not a dotted path")
        fn = getattr(importlib.import_module(module_name), attr)
        if not callable(fn):
            raise TypeError(f"surface {self.name!r} is not callable")
        return fn

    def __call__(self, params: Mapping[str, object]) -> dict:
        unknown = sorted(set(params) - set(self.param_names))
        if unknown:
            raise ValueError(
                f"surface {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: "
                f"{', '.join(sorted(self.param_names))}")
        return self.resolve()(**dict(params))


_SURFACES: Dict[str, RunSurface] = {}


def register_surface(surface: RunSurface, replace: bool = False) -> RunSurface:
    """Add a surface to the registry (used at module import time)."""
    if not replace and surface.name in _SURFACES:
        raise ValueError(f"surface {surface.name!r} already registered")
    _SURFACES[surface.name] = surface
    return surface


def get_surface(name: str) -> RunSurface:
    """Resolve a registered surface by dotted path."""
    ensure_builtin_experiments()
    try:
        return _SURFACES[name]
    except KeyError:
        known = ", ".join(sorted(_SURFACES)) or "(none)"
        raise KeyError(f"unknown surface {name!r}; registered: {known}") from None


def list_surfaces() -> List[RunSurface]:
    """All registered surfaces, sorted by dotted path."""
    ensure_builtin_experiments()
    return [_SURFACES[name] for name in sorted(_SURFACES)]

HEADER = """\
# Experiment catalog

Every registered experiment and named sweep of the parallel runner
(`repro.runner`), with its cache version, run surface, and parameter
grid.

> **Auto-generated** from the experiment registry by
> `repro-runner list --markdown > docs/experiments.md`.
> Do not edit by hand: CI regenerates this file and fails on any diff,
> so the catalog cannot drift from the registry that actually runs.
"""


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (tuple, list)):
        inner = ", ".join(_format_value(item) for item in value)
        return f"({inner})" if isinstance(value, tuple) else f"[{inner}]"
    return str(value)


def _format_axis(values: List[object]) -> str:
    if len(values) == 1:
        return _format_value(values[0])
    return ", ".join(_format_value(value) for value in values)


def _grid_rows(grid: ParameterGrid) -> List[str]:
    rows = ["| axis | values |", "| --- | --- |"]
    for key, values in grid.axes().items():
        rows.append(f"| `{key}` | {_format_axis(values)} |")
    if len(grid.subgrids()) > 1:
        rows += [
            "",
            f"(a union of {len(grid.subgrids())} subgrids — the table "
            "shows the last member's axes; swept axes below cover all "
            "members)",
        ]
    return rows


def _swept_axes(grid: ParameterGrid) -> str:
    """Axes with more than one value — within a subgrid or across the
    members of a union grid (e.g. the per-pattern ablation subgrids)."""
    swept = set()
    subgrids = grid.subgrids()
    for axes in subgrids:
        swept.update(key for key, values in axes.items() if len(values) > 1)
    for key in {key for axes in subgrids for key in axes}:
        per_subgrid = [axes.get(key) for axes in subgrids]
        if any(values != per_subgrid[0] for values in per_subgrid[1:]):
            swept.add(key)
    return ", ".join(f"`{key}`" for key in sorted(swept)) or "—"


def _experiment_section(experiment: Experiment) -> List[str]:
    lines = [f"### `{experiment.name}` (v{experiment.version})", ""]
    if experiment.description:
        lines += [experiment.description, ""]
    surface = f"`{experiment.surface}`" if experiment.surface else "—"
    smoke = (
        f"{len(experiment.smoke_grid)} points"
        if experiment.smoke_grid is not None
        else "none"
    )
    lines += [
        f"- **surface:** {surface}",
        f"- **default grid:** {len(experiment.grid)} points"
        f" — **smoke grid:** {smoke}",
    ]
    if experiment.param_names:
        params = ", ".join(f"`{name}`" for name in experiment.param_names)
        lines.append(f"- **parameters:** {params}")
    lines += ["", "Default grid:", ""]
    lines += _grid_rows(experiment.grid)
    lines.append("")
    return lines


def _sweep_rows(sweeps: Iterable) -> List[str]:
    rows = [
        "| sweep | experiment | runs | swept axes |",
        "| --- | --- | --- | --- |",
    ]
    for name, sweep in sweeps:
        grid = sweep.grid
        runs = len(grid) if grid is not None else 0
        swept = _swept_axes(grid) if grid is not None else "—"
        rows.append(f"| `{name}` | `{sweep.experiment}` | {runs} | {swept} |")
    return rows


def _surface_rows() -> List[str]:
    rows = [
        "| surface | description | parameters |",
        "| --- | --- | --- |",
    ]
    for surface in list_surfaces():
        params = ", ".join(f"`{name}`" for name in surface.param_names)
        rows.append(
            f"| `{surface.name}` | {surface.description or '—'} | {params} |")
    return rows


def catalog_markdown() -> str:
    """The full catalog document, newline-terminated."""
    from .experiments import BUILTIN_SWEEPS

    lines: List[str] = [HEADER, "## Experiments", ""]
    for experiment in list_experiments():
        lines += _experiment_section(experiment)
    lines += [
        "## Run surfaces",
        "",
        "The registered run surfaces experiments execute through: each",
        "is a pure module-level function, `(params) -> dict`, resolved",
        "by dotted path in worker processes.",
        "",
    ]
    lines += _surface_rows()
    lines += [
        "",
        "## Named sweeps",
        "",
        "What `repro-runner sweep <name>` actually runs; grids with a",
        "single value per axis are one-run sweeps (the figure anchors).",
        "",
    ]
    lines += _sweep_rows(sorted(BUILTIN_SWEEPS.items()))
    lines.append("")
    return "\n".join(lines)
