"""The auto-generated experiment catalog (``repro-runner list --markdown``).

Renders the experiment registry and the built-in sweeps as a Markdown
document — ``docs/experiments.md`` is this output, committed.  The
renderer is deterministic (sorted registries, stable value formatting),
so CI can regenerate the catalog and fail on any diff: the committed
docs can never drift from the registry that actually runs.
"""

from __future__ import annotations

from typing import Iterable, List

from .experiment import Experiment, list_experiments
from .grid import ParameterGrid

HEADER = """\
# Experiment catalog

Every registered experiment and named sweep of the parallel runner
(`repro.runner`), with its cache version, run surface, and parameter
grid.

> **Auto-generated** from the experiment registry by
> `repro-runner list --markdown > docs/experiments.md`.
> Do not edit by hand: CI regenerates this file and fails on any diff,
> so the catalog cannot drift from the registry that actually runs.
"""


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (tuple, list)):
        inner = ", ".join(_format_value(item) for item in value)
        return f"({inner})" if isinstance(value, tuple) else f"[{inner}]"
    return str(value)


def _format_axis(values: List[object]) -> str:
    if len(values) == 1:
        return _format_value(values[0])
    return ", ".join(_format_value(value) for value in values)


def _grid_rows(grid: ParameterGrid) -> List[str]:
    rows = ["| axis | values |", "| --- | --- |"]
    for key, values in grid.axes().items():
        rows.append(f"| `{key}` | {_format_axis(values)} |")
    if len(grid.subgrids()) > 1:
        rows += [
            "",
            f"(a union of {len(grid.subgrids())} subgrids — the table "
            "shows the last member's axes; swept axes below cover all "
            "members)",
        ]
    return rows


def _swept_axes(grid: ParameterGrid) -> str:
    """Axes with more than one value — within a subgrid or across the
    members of a union grid (e.g. the per-pattern ablation subgrids)."""
    swept = set()
    subgrids = grid.subgrids()
    for axes in subgrids:
        swept.update(key for key, values in axes.items() if len(values) > 1)
    for key in {key for axes in subgrids for key in axes}:
        per_subgrid = [axes.get(key) for axes in subgrids]
        if any(values != per_subgrid[0] for values in per_subgrid[1:]):
            swept.add(key)
    return ", ".join(f"`{key}`" for key in sorted(swept)) or "—"


def _experiment_section(experiment: Experiment) -> List[str]:
    lines = [f"### `{experiment.name}` (v{experiment.version})", ""]
    if experiment.description:
        lines += [experiment.description, ""]
    surface = f"`{experiment.surface}`" if experiment.surface else "—"
    smoke = (
        f"{len(experiment.smoke_grid)} points"
        if experiment.smoke_grid is not None
        else "none"
    )
    lines += [
        f"- **surface:** {surface}",
        f"- **default grid:** {len(experiment.grid)} points"
        f" — **smoke grid:** {smoke}",
    ]
    if experiment.param_names:
        params = ", ".join(f"`{name}`" for name in experiment.param_names)
        lines.append(f"- **parameters:** {params}")
    lines += ["", "Default grid:", ""]
    lines += _grid_rows(experiment.grid)
    lines.append("")
    return lines


def _sweep_rows(sweeps: Iterable) -> List[str]:
    rows = [
        "| sweep | experiment | runs | swept axes |",
        "| --- | --- | --- | --- |",
    ]
    for name, sweep in sweeps:
        grid = sweep.grid
        runs = len(grid) if grid is not None else 0
        swept = _swept_axes(grid) if grid is not None else "—"
        rows.append(f"| `{name}` | `{sweep.experiment}` | {runs} | {swept} |")
    return rows


def catalog_markdown() -> str:
    """The full catalog document, newline-terminated."""
    from .experiments import BUILTIN_SWEEPS

    lines: List[str] = [HEADER, "## Experiments", ""]
    for experiment in list_experiments():
        lines += _experiment_section(experiment)
    lines += [
        "## Named sweeps",
        "",
        "What `repro-runner sweep <name>` actually runs; grids with a",
        "single value per axis are one-run sweeps (the figure anchors).",
        "",
    ]
    lines += _sweep_rows(sorted(BUILTIN_SWEEPS.items()))
    lines.append("")
    return "\n".join(lines)
