"""Command-line interface: ``python -m repro.runner`` / ``repro-runner``.

Subcommands:

* ``list`` — registered experiments and named sweeps.
* ``run EXPERIMENT [--set k=v ...]`` — one configuration, in-process.
* ``sweep [NAME ...] [--smoke] [--jobs N]`` — fan a grid out across
  worker processes, memoized through the on-disk result cache.
* ``cache {stats,prune}`` — entry/byte counts per (experiment, version),
  and removal of entries no registered experiment can ever serve again.
* ``report`` — format sweep output (or the cache) as a table or CSV;
  ``--timeline`` renders sliced observability metrics as ASCII charts.
* ``trace {export,list}`` — Chrome/Perfetto export of recorded packet
  traces (``--packet NODE,SEQ`` for one packet's lifecycle), and the
  artifact inventory.
* ``diagnose DIGEST [--compare DIGEST]`` — automated root-cause
  forensics over an observed run's artifacts
  (:mod:`repro.analysis.forensics`): per-hop latency decomposition,
  backpressure attribution with saturation trees, fence critical
  paths, and topology heatmaps; stores a ``<digest>.diagnosis.json``
  artifact beside the metrics/trace layers.
* ``profile EXPERIMENT`` — cProfile one configuration and attribute
  wall-clock to repro subsystems.
* ``bench`` — the pinned benchmark grid (``BENCH_<rev>.json``).
* ``ledger {list,show,diff}`` — the persistent cross-run ledger beside
  the cache: every execution ever recorded, queryable and diffable by
  config digest across runs and revisions.
* ``status [--watch]`` — the live sweep progress board folded from the
  workers' heartbeat stream.
* ``regress`` — the noise-aware benchmark regression sentinel: compares
  a ``bench --json`` snapshot against baseline history and exits
  nonzero on a regression (CI-ready).

``run``/``sweep`` accept ``--observe``/``--trace`` (repro.observe):
observed runs execute every configuration (no cache reads), write
metrics/trace artifacts beside the cache keyed by each run's config
digest, and still produce byte-identical results and cache entries.
With a cache they also append to the run ledger (``--no-ledger`` to
opt out); ledger writes never affect results or digests.

Result payloads go to stdout (or ``--output``); progress and cache
statistics go to stderr, so stdout is always machine-consumable and
byte-stable for a given grid.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .experiment import Sweep, get_experiment, list_experiments
from .execute import SweepResult, run_sweep, run_sweeps
from .grid import ParameterGrid

DEFAULT_CACHE_DIR = ".repro-cache"


def _parse_set(assignments: Sequence[str]) -> Dict[str, object]:
    """Parse ``--set key=value`` overrides; values are JSON when valid."""
    params: Dict[str, object] = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects key=value, got {assignment!r}")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


def _open_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(Path(args.cache_dir))


def _open_ledger(args: argparse.Namespace, cache: Optional[ResultCache]):
    """The RunLedger beside the cache, or None (--no-ledger / --no-cache).

    The ledger lives beside the cache, so disabling the cache disables
    the ledger with it; ``--no-ledger`` opts out independently.
    """
    if cache is None or getattr(args, "no_ledger", False):
        return None
    from ..observe.ledger import RunLedger, ledger_dir

    return RunLedger(ledger_dir(cache.root))


def _observe_config(args: argparse.Namespace):
    """The ObserveConfig the flags ask for, or None when off."""
    if not (getattr(args, "observe", False) or getattr(args, "trace", False)):
        return None
    from ..observe.config import ObserveConfig

    return ObserveConfig(
        metrics=True,
        trace=bool(args.trace),
        period_ns=args.observe_period,
        trace_sample=args.trace_sample,
        trace_seed=args.trace_seed,
    )


def _artifact_dir(args: argparse.Namespace) -> Path:
    from ..observe.artifacts import observe_dir

    return observe_dir(Path(args.cache_dir))


def _payload(results: Sequence[SweepResult]) -> dict:
    return {"sweeps": [result.record() for result in results]}


def _emit(args: argparse.Namespace, results: Sequence[SweepResult]) -> None:
    if args.format == "csv":
        from ..analysis.aggregate import sweeps_to_csv

        text = sweeps_to_csv([result.record() for result in results])
    else:
        text = json.dumps(_payload(results), sort_keys=True, indent=2) + "\n"
    if args.output and args.output != "-":
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)


def _summarize(results: Sequence[SweepResult], cache: Optional[ResultCache]) -> None:
    for result in results:
        print(
            f"{result.label}: {len(result.runs)} runs, "
            f"{result.cache_hits} cached, {result.cache_misses} executed "
            f"({result.elapsed_s:.1f}s simulated work)",
            file=sys.stderr,
        )
    if cache is not None:
        stats = cache.stats
        print(
            f"cache {cache.root}: {stats.hits}/{stats.lookups} hits "
            f"({stats.hit_rate:.0%}), {stats.writes} new entries",
            file=sys.stderr,
        )


def _progress(message: str) -> None:
    print(message, file=sys.stderr)


def _load_sweep_report(results: Sequence[SweepResult]) -> None:
    """Print latency-vs-load tables with saturation points (stderr).

    Only applies to ``load_sweep``/``route_ablation`` sweeps; stdout
    stays byte-stable for a given grid regardless.  Runs are grouped by
    ``(pattern, routing)``, so ablation sweeps that mix adversarial
    patterns on purpose render one table per curve.
    """
    from ..analysis.saturation import load_sweep_tables

    for result in results:
        if result.experiment not in ("load_sweep", "route_ablation"):
            continue
        try:
            tables = load_sweep_tables(
                [run.record() for run in result.runs], title=result.label
            )
        except ValueError:
            continue  # e.g. a grid whose points all failed to complete
        print(tables, file=sys.stderr)


def _closed_loop_report(results: Sequence[SweepResult]) -> None:
    """Print window-knee and phase-loop tables for closed-loop sweeps.

    The closed-loop analogue of :func:`_load_sweep_report`: window
    sweeps get one throughput/latency-vs-window table per (pattern,
    routing) curve with the detected knee, phase-loop sweeps get the
    per-configuration iteration-time comparison.  Stderr only; stdout
    stays byte-stable.
    """
    from ..analysis.closedloop import phase_loop_table, window_sweep_tables

    for result in results:
        try:
            if result.experiment == "closed_loop":
                print(
                    window_sweep_tables(
                        [run.record() for run in result.runs],
                        title=result.label,
                    ),
                    file=sys.stderr,
                )
            elif result.experiment == "phase_loop":
                print(
                    phase_loop_table(
                        [run.record() for run in result.runs],
                        title=result.label,
                    ),
                    file=sys.stderr,
                )
        except ValueError:
            continue  # e.g. a grid whose points all failed to complete


def _add_observe(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--observe",
        action="store_true",
        help="record deterministic metrics artifacts beside the cache "
        "(forces execution: observed runs skip cache reads)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also record packet-lifecycle traces (implies --observe)",
    )
    parser.add_argument(
        "--observe-period",
        type=float,
        default=100.0,
        metavar="NS",
        help="metrics slice width in simulated ns (default: 100)",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="FRACTION",
        help="fraction of packets traced, selected by a deterministic "
        "hash of the packet identity (default: 1.0)",
    )
    parser.add_argument(
        "--trace-seed",
        type=int,
        default=0,
        help="seed of the trace sampling hash (default: 0)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read or write the cache"
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record this execution in the run ledger "
        "(--no-cache implies this: the ledger lives beside the cache)",
    )
    parser.add_argument(
        "--format", choices=("json", "csv"), default="json", help="output format"
    )
    parser.add_argument(
        "--output", "-o", default="-", help="output path (default: stdout)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-runner",
        description="Parallel, cached experiment runner for the Anton 3 "
        "network reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list experiments and named sweeps")
    list_parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit the full experiment catalog as Markdown "
        "(the generator behind docs/experiments.md)",
    )

    run_parser = sub.add_parser("run", help="run one experiment configuration")
    run_parser.add_argument("experiment", help="registered experiment name")
    run_parser.add_argument(
        "--set",
        dest="assignments",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a parameter (JSON values; repeatable)",
    )
    _add_common(run_parser)
    _add_observe(run_parser)

    sweep_parser = sub.add_parser("sweep", help="run one or more parameter sweeps")
    sweep_parser.add_argument(
        "sweeps",
        nargs="*",
        metavar="SWEEP",
        help="named sweeps or experiment names (default: fig5 fig9 fig11)",
    )
    sweep_parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the tiny smoke grid of every experiment instead",
    )
    sweep_parser.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes (default: 1)"
    )
    _add_common(sweep_parser)
    _add_observe(sweep_parser)

    cache_parser = sub.add_parser(
        "cache", help="inspect or prune the result cache"
    )
    cache_parser.add_argument(
        "action",
        choices=("stats", "prune"),
        help="stats: entry/byte counts per (experiment, version); "
        "prune: delete entries whose (experiment, version) no longer "
        "matches a registered experiment",
    )
    cache_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    cache_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with prune: report what would be removed without deleting",
    )
    cache_parser.add_argument(
        "--json",
        action="store_true",
        help="with stats: emit the statistics as JSON on stdout",
    )

    trace_parser = sub.add_parser(
        "trace", help="export or list recorded packet traces"
    )
    trace_parser.add_argument(
        "action",
        choices=("export", "list"),
        help="export: one trace artifact as Chrome/Perfetto JSON; "
        "list: every observability artifact beside the cache",
    )
    trace_parser.add_argument(
        "--digest",
        default=None,
        help="with export: config digest (or unique prefix) of the run",
    )
    trace_parser.add_argument(
        "--input",
        "-i",
        default=None,
        help="with export: read this trace artifact file instead of "
        "resolving --digest against the cache",
    )
    trace_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    trace_parser.add_argument(
        "--packet",
        default=None,
        metavar="NODE,SEQ",
        help="with export: only this packet's lifecycle (its stable "
        "trace identity: injecting node id, per-chip sequence number)",
    )
    trace_parser.add_argument(
        "--output", "-o", default="-", help="output path (default: stdout)"
    )

    diagnose_parser = sub.add_parser(
        "diagnose",
        help="root-cause forensics over an observed run's artifacts",
    )
    diagnose_parser.add_argument(
        "digest",
        help="config digest (or unique prefix) of an observed run with "
        "a metrics artifact beside the cache",
    )
    diagnose_parser.add_argument(
        "--compare",
        default=None,
        metavar="DIGEST",
        help="diff the diagnosis against a second observed run "
        "(policy-ablation forensics)",
    )
    diagnose_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    diagnose_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the diagnosis (or the comparison) as JSON on stdout",
    )
    diagnose_parser.add_argument(
        "--no-write",
        action="store_true",
        help="do not store <digest>.diagnosis.json beside the "
        "metrics/trace artifacts",
    )
    diagnose_parser.add_argument(
        "--output", "-o", default="-", help="output path (default: stdout)"
    )

    profile_parser = sub.add_parser(
        "profile", help="profile one experiment configuration"
    )
    profile_parser.add_argument("experiment", help="registered experiment name")
    profile_parser.add_argument(
        "--set",
        dest="assignments",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a parameter (JSON values; repeatable)",
    )
    profile_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the subsystem shares as JSON instead of a table",
    )
    profile_parser.add_argument(
        "--functions",
        type=int,
        default=0,
        metavar="N",
        help="also print the top N functions by own time (stderr)",
    )
    profile_parser.add_argument(
        "--output", "-o", default="-", help="output path (default: stdout)"
    )

    bench_parser = sub.add_parser(
        "bench", help="run the pinned benchmark grid"
    )
    bench_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the BENCH payload as JSON (default path: BENCH_<rev>.json)",
    )
    bench_parser.add_argument(
        "--output",
        "-o",
        default=None,
        help="with --json: output path (default: BENCH_<rev>.json; "
        "use - for stdout)",
    )
    bench_parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="repeats per case; wall-clock reports best-of-N (default: 3)",
    )
    bench_parser.add_argument(
        "--case",
        action="append",
        default=[],
        metavar="NAME",
        help="run only this benchmark case (repeatable)",
    )

    ledger_parser = sub.add_parser(
        "ledger", help="query the persistent cross-run ledger"
    )
    ledger_parser.add_argument(
        "action",
        choices=("list", "show", "diff"),
        help="list: one row per recorded execution; "
        "show: the latest record of one digest; "
        "diff: compare two digests' records (params/result/metrics)",
    )
    ledger_parser.add_argument(
        "digests",
        nargs="*",
        metavar="DIGEST",
        help="config digest (or unique prefix): one for show, two for diff",
    )
    ledger_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    ledger_parser.add_argument(
        "--experiment",
        default=None,
        help="with list: only records of this experiment",
    )
    ledger_parser.add_argument(
        "--sweep",
        default=None,
        help="with list: only records of this sweep label",
    )
    ledger_parser.add_argument(
        "--json",
        action="store_true",
        help="emit records / the diff as JSON on stdout",
    )

    status_parser = sub.add_parser(
        "status", help="show the live sweep progress board"
    )
    status_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    status_parser.add_argument(
        "--watch",
        action="store_true",
        help="re-render until every grid point reaches a terminal state",
    )
    status_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="with --watch: seconds between renders (default: 2)",
    )

    regress_parser = sub.add_parser(
        "regress", help="noise-aware benchmark regression check"
    )
    regress_parser.add_argument(
        "--against",
        action="append",
        default=[],
        required=True,
        metavar="BENCH_JSON",
        help="baseline BENCH_<rev>.json snapshot (repeatable; repeats "
        "are pooled into the per-case noise band)",
    )
    regress_parser.add_argument(
        "--current",
        default=None,
        metavar="BENCH_JSON",
        help="current snapshot to classify (default: run the bench now)",
    )
    regress_parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="without --current: bench repeats per case (default: 3)",
    )
    regress_parser.add_argument(
        "--min-rel",
        type=float,
        default=None,
        metavar="FRACTION",
        help="relative slowdown floor below which nothing is flagged "
        "(default: 0.10)",
    )
    regress_parser.add_argument(
        "--sigma",
        type=float,
        default=None,
        help="noise-band width in baseline coefficient-of-variation "
        "units (default: 4.0)",
    )
    regress_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON on stdout",
    )
    regress_parser.add_argument(
        "--output", "-o", default="-", help="output path (default: stdout)"
    )

    report_parser = sub.add_parser("report", help="format sweep results")
    report_parser.add_argument(
        "--input",
        "-i",
        default=None,
        help="runner JSON output to format (default: read the cache)",
    )
    report_parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="with no --input: cache entries of this experiment only",
    )
    report_parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, help="result cache directory"
    )
    report_parser.add_argument(
        "--format", choices=("table", "csv"), default="table", help="report format"
    )
    report_parser.add_argument(
        "--percentiles",
        metavar="BY:VALUE",
        default=None,
        help="instead of the flat table, group runs by parameter BY and "
        "summarize result column VALUE with count/mean/max/p50/p95/p99 "
        "(e.g. offered_load:classes.request.latency_ns.mean)",
    )
    report_parser.add_argument(
        "--plot",
        metavar="X:Y",
        default=None,
        help="also render an ASCII chart of result/parameter column Y vs "
        "X to stderr (e.g. "
        "offered_load:classes.request.latency_ns.mean for the "
        "latency-load curve)",
    )
    report_parser.add_argument(
        "--plot-by",
        metavar="KEY[,KEY...]",
        default=None,
        help="split --plot into one series per distinct value of these "
        "comma-separated columns (e.g. pattern,routing)",
    )
    report_parser.add_argument(
        "--timeline",
        metavar="METRIC",
        default=None,
        help="instead of result tables, ASCII-chart this sliced metric "
        "of an observability metrics artifact (e.g. machine/in_flight; "
        "pass 'list' to enumerate the artifact's metrics)",
    )
    report_parser.add_argument(
        "--artifact",
        default=None,
        help="with --timeline: path of the metrics artifact to read",
    )
    report_parser.add_argument(
        "--by",
        choices=("vc",),
        default=None,
        help="with --timeline: expand the metric into one series per "
        "sub-resource (vc: per-virtual-channel, e.g. --timeline "
        "link/host0.out/occupancy --by vc charts every "
        "link/host0.out/vc<k>/occupancy)",
    )
    report_parser.add_argument(
        "--digest",
        default=None,
        help="with --timeline: resolve the artifact by config digest "
        "(or unique prefix) under <cache-dir>/observe instead",
    )
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    if args.markdown:
        from .catalog import catalog_markdown

        sys.stdout.write(catalog_markdown())
        return 0
    from .experiments import BUILTIN_SWEEPS

    print("experiments:")
    for experiment in list_experiments():
        grid_size = len(experiment.grid)
        print(
            f"  {experiment.name:24s} {grid_size:3d}-point grid  "
            f"{experiment.description}"
        )
    print("sweeps:")
    for name, sweep in sorted(BUILTIN_SWEEPS.items()):
        size = len(sweep.grid) if sweep.grid is not None else 0
        print(f"  {name:24s} {size:3d} runs of {sweep.experiment}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.experiment)
    overrides = _parse_set(args.assignments)
    # Fail fast on --set typos: an unknown key would otherwise vanish
    # into the experiment wrapper's **params (or crash a worker).
    experiment.validate_params(overrides)
    grid = ParameterGrid({key: [value] for key, value in overrides.items()})
    sweep = Sweep(experiment.name, grid, label=f"run-{experiment.name}")
    cache = _open_cache(args)
    observe = _observe_config(args)
    ledger = _open_ledger(args, cache)
    result = run_sweep(
        sweep, jobs=1, cache=cache, progress=_progress,
        observe=observe, artifact_dir=_artifact_dir(args), ledger=ledger)
    _emit(args, [result])
    _report_artifacts([result])
    _summarize([result], cache)
    return 0


def _report_artifacts(results: Sequence[SweepResult]) -> None:
    """List written observability artifacts on stderr."""
    for result in results:
        for run in result.runs:
            for path in run.artifact_paths:
                print(f"observe: wrote {path}", file=sys.stderr)


def _resolve_sweeps(names: Sequence[str], smoke: bool) -> List[Sweep]:
    from .experiments import BUILTIN_SWEEPS, DEFAULT_SWEEP_NAMES, smoke_sweeps

    if smoke:
        if not names:
            return smoke_sweeps()
        # Honor the requested names: smoke only those experiments.
        wanted = {
            BUILTIN_SWEEPS[name].experiment if name in BUILTIN_SWEEPS else name
            for name in names
        }
        selected = [s for s in smoke_sweeps() if s.experiment in wanted]
        missing = wanted - {s.experiment for s in selected}
        if missing:
            raise KeyError(f"no smoke grid for: {', '.join(sorted(missing))}")
        return selected
    resolved = []
    for name in names or DEFAULT_SWEEP_NAMES:
        if name in BUILTIN_SWEEPS:
            resolved.append(BUILTIN_SWEEPS[name])
        else:
            experiment = get_experiment(name)  # KeyError lists known names
            resolved.append(Sweep(experiment.name, experiment.grid))
    return resolved


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        sweeps = _resolve_sweeps(args.sweeps, args.smoke)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    cache = _open_cache(args)
    observe = _observe_config(args)
    ledger = _open_ledger(args, cache)
    results = run_sweeps(
        sweeps, jobs=args.jobs, cache=cache, progress=_progress,
        observe=observe, artifact_dir=_artifact_dir(args), ledger=ledger)
    _emit(args, results)
    _report_artifacts(results)
    _load_sweep_report(results)
    _closed_loop_report(results)
    if ledger is not None:
        from ..observe.status import end_of_sweep_summary

        for result in results:
            runs = [
                (index, run.cached, run.elapsed_s)
                for index, run in enumerate(result.runs)
            ]
            print(end_of_sweep_summary(result.label, runs), file=sys.stderr)
    _summarize(results, cache)
    return 0


def _registered_versions() -> Dict[str, int]:
    """Current ``{experiment: version}`` map — what prune keeps."""
    return {exp.name: exp.version for exp in list_experiments()}


def _cmd_cache(args: argparse.Namespace) -> int:
    from ..analysis.report import format_table

    if args.dry_run and args.action != "prune":
        print("error: --dry-run only applies to prune", file=sys.stderr)
        return 2
    if args.json and args.action != "stats":
        print("error: --json only applies to stats", file=sys.stderr)
        return 2
    root = Path(args.cache_dir)
    if not root.is_dir():
        print(f"error: no cache at {root}", file=sys.stderr)
        return 2
    cache = ResultCache(root)
    registered = _registered_versions()
    if args.action == "stats":
        stats = cache.stats_by_config()
        rows = []
        for (experiment, version), bucket in sorted(stats.items()):
            current = registered.get(experiment)
            if experiment == "<corrupt>":
                status = "corrupt"
            elif current is None:
                status = "unregistered"
            elif current != version:
                status = f"stale (now v{current})"
            else:
                status = "current"
            rows.append(
                [
                    experiment,
                    str(version),
                    str(bucket["entries"]),
                    str(bucket["bytes"]),
                    status,
                ]
            )
        total_entries = sum(bucket["entries"] for bucket in stats.values())
        total_bytes = sum(bucket["bytes"] for bucket in stats.values())
        observe = cache.observe_stats()
        ledger = cache.ledger_stats()
        if args.json:
            payload = {
                "root": str(cache.root),
                "configs": [
                    {
                        "experiment": experiment,
                        "version": version,
                        "entries": entries,
                        "bytes": size,
                        "status": status,
                    }
                    for experiment, version, entries, size, status in (
                        (row[0], int(row[1]), int(row[2]), int(row[3]),
                         row[4])
                        for row in rows
                    )
                ],
                "total": {"entries": total_entries, "bytes": total_bytes},
                "observe": observe,
                "ledger": ledger,
            }
            sys.stdout.write(
                json.dumps(payload, sort_keys=True, indent=2) + "\n")
            return 0
        print(
            format_table(
                ("experiment", "version", "entries", "bytes", "status"),
                rows,
            )
        )
        print(
            f"total: {total_entries} entries, {total_bytes} bytes "
            f"in {cache.root}"
        )
        if observe["artifacts"]:
            print(
                f"observe: {observe['artifacts']} artifacts, "
                f"{observe['bytes']} bytes "
                f"({observe['orphaned']} orphaned, "
                f"{observe['orphaned_bytes']} bytes reclaimable by prune)"
            )
        if ledger["records"] or ledger["status_events"]:
            print(
                f"ledger: {ledger['records']} run records, "
                f"{ledger['status_events']} status events, "
                f"{ledger['bytes']} bytes"
            )
        return 0
    # prune
    if args.dry_run:
        stats = cache.stats_by_config()
        removed = freed = 0
        for (experiment, version), bucket in stats.items():
            if registered.get(experiment) != version:
                removed += bucket["entries"]
                freed += bucket["bytes"]
        observe = cache.observe_stats()
        print(f"would remove {removed} entries ({freed} bytes) from {cache.root}")
        if observe["orphaned"]:
            print(
                f"would sweep {observe['orphaned']} orphaned observe "
                f"artifacts ({observe['orphaned_bytes']} bytes)"
            )
        return 0
    outcome = cache.prune(registered)
    print(
        f"removed {outcome['removed']} entries "
        f"({outcome['freed_bytes']} bytes), kept {outcome['kept']} "
        f"in {cache.root}"
    )
    if outcome["artifacts_removed"]:
        print(
            f"swept {outcome['artifacts_removed']} orphaned observe "
            f"artifacts ({outcome['artifacts_freed_bytes']} bytes)"
        )
    return 0


def _write_or_stdout(args: argparse.Namespace, text: str) -> None:
    if args.output and args.output != "-":
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..observe.artifacts import find_artifact, list_artifacts, load_artifact
    from ..observe.trace import chrome_trace_events

    directory = _artifact_dir(args)
    if args.action == "list":
        from ..analysis.report import format_table

        rows = list_artifacts(directory)
        if not rows:
            print(f"no observability artifacts under {directory}",
                  file=sys.stderr)
            return 0
        print(format_table(
            ("digest", "layer", "bytes", "path"),
            [[row["digest"][:16], row["layer"], str(row["bytes"]),
              row["path"]] for row in rows]))
        return 0
    # export
    if args.input is not None:
        path = Path(args.input)
    elif args.digest is not None:
        path = find_artifact(directory, args.digest, "trace")
        if path is None:
            print(f"error: no trace artifact for digest {args.digest!r} "
                  f"under {directory}", file=sys.stderr)
            return 2
    else:
        print("error: trace export needs --digest or --input",
              file=sys.stderr)
        return 2
    artifact = load_artifact(path)
    if artifact.get("layer") != "trace":
        print(f"error: {path} is a {artifact.get('layer')!r} artifact, "
              "not a trace", file=sys.stderr)
        return 2
    machines = artifact["machines"]
    if args.packet is not None:
        packet_id = _parse_packet(args.packet)
        machines = [
            {**machine,
             "spans": [span for span in machine.get("spans", [])
                       if list(span.get("trace_id", [])) == packet_id]}
            for machine in machines
        ]
        if not any(machine["spans"] for machine in machines):
            print(f"error: no spans for packet {args.packet} in {path}",
                  file=sys.stderr)
            return 2
    events = []
    for pid, machine in enumerate(machines):
        events.extend(chrome_trace_events(machine, pid=pid))
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    _write_or_stdout(
        args, json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return 0


def _parse_packet(spec: str) -> List[int]:
    """Parse the ``--packet NODE,SEQ`` stable trace identity."""
    parts = spec.split(",")
    try:
        node, seq = (int(part) for part in parts)
    except ValueError:
        raise ValueError(
            f"--packet expects NODE,SEQ integers, got {spec!r}") from None
    if node < 0 or seq < 0:
        raise ValueError(f"--packet ids must be non-negative, got {spec!r}")
    return [node, seq]


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from ..analysis.forensics import (
        compare_diagnoses,
        diagnose_run,
        render_comparison,
        render_diagnosis,
    )
    from ..observe.artifacts import find_artifact, load_artifact, write_artifact

    directory = _artifact_dir(args)

    def diagnose_one(digest_prefix: str):
        metrics_path = find_artifact(directory, digest_prefix, "metrics")
        if metrics_path is None:
            raise ValueError(
                f"no metrics artifact for digest {digest_prefix!r} under "
                f"{directory}; run the configuration with --observe first")
        metrics = load_artifact(metrics_path)
        digest = str(metrics.get("digest")
                     or metrics_path.name.split(".")[0])
        trace_path = find_artifact(directory, digest, "trace")
        trace = load_artifact(trace_path) if trace_path is not None else None
        machines = diagnose_run(metrics, trace)
        if not args.no_write:
            path = write_artifact(directory, digest, "diagnosis", machines)
            print(f"diagnose: wrote {path}", file=sys.stderr)
        return {"digest": digest, "layer": "diagnosis",
                "machines": machines}

    diagnosis = diagnose_one(args.digest)
    if args.compare is not None:
        other = diagnose_one(args.compare)
        diff = compare_diagnoses(diagnosis, other)
        if args.json:
            text = json.dumps(diff, sort_keys=True, indent=2) + "\n"
        else:
            text = render_comparison(diff)
        _write_or_stdout(args, text)
        return 0
    if args.json:
        text = json.dumps(diagnosis, sort_keys=True, indent=2) + "\n"
    else:
        text = render_diagnosis(diagnosis["digest"], diagnosis["machines"])
    _write_or_stdout(args, text)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from ..observe.profile import (
        profile_callable,
        profile_report,
        subsystem_shares,
    )

    experiment = get_experiment(args.experiment)
    overrides = _parse_set(args.assignments)
    experiment.validate_params(overrides)
    # Unprofiled warmup run: pays the one-time lazy-import cost (compile /
    # exec / marshal frames from importlib) so the profiled run measures
    # the simulator, not interpreter startup.
    experiment.run(overrides)
    __, stats = profile_callable(experiment.run, overrides)
    shares, total_s = subsystem_shares(stats)
    if args.functions > 0:
        import io

        buffer = io.StringIO()
        stats.stream = buffer
        stats.sort_stats("tottime").print_stats(args.functions)
        print(buffer.getvalue(), file=sys.stderr)
    if args.json:
        attributed = sum(
            share for name, share in shares.items() if name != "(other)")
        payload = {
            "experiment": experiment.name,
            "params": overrides,
            "total_s": total_s,
            "shares": shares,
            "attributed_fraction": (attributed / total_s if total_s else 0.0),
        }
        _write_or_stdout(
            args, json.dumps(payload, sort_keys=True, indent=2) + "\n")
    else:
        _write_or_stdout(args, profile_report(shares, total_s) + "\n")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        BENCH_CASES,
        bench_filename,
        bench_table,
        run_bench,
    )

    cases = None
    if args.case:
        by_name = {case.name: case for case in BENCH_CASES}
        unknown = [name for name in args.case if name not in by_name]
        if unknown:
            known = ", ".join(sorted(by_name))
            print(f"error: unknown bench case(s) {', '.join(unknown)}; "
                  f"known: {known}", file=sys.stderr)
            return 2
        cases = tuple(by_name[name] for name in args.case)
    payload = run_bench(repeat=args.repeat, cases=cases, progress=_progress)
    if args.json:
        text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        output = args.output if args.output is not None else bench_filename(
            payload["rev"])
        if output == "-":
            sys.stdout.write(text)
        else:
            Path(output).write_text(text, encoding="utf-8")
            print(f"wrote {output}", file=sys.stderr)
    else:
        print(bench_table(payload))
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from ..observe.ledger import (
        diff_records,
        diff_table,
        latest_records,
        ledger_dir,
        ledger_table,
        resolve_digest,
        RunLedger,
    )

    ledger = RunLedger(ledger_dir(Path(args.cache_dir)))
    records = ledger.records(strict=False)
    if not records:
        print(f"no ledger records at {ledger.record_path}", file=sys.stderr)
        return 2 if args.action != "list" else 0
    if args.action != "list" and (args.experiment or args.sweep):
        print("error: --experiment/--sweep only apply to ledger list",
              file=sys.stderr)
        return 2
    if args.action == "list":
        if args.digests:
            print("error: ledger list takes no digest arguments",
                  file=sys.stderr)
            return 2
        if args.experiment is not None:
            records = [record for record in records
                       if record.get("experiment") == args.experiment]
        if args.sweep is not None:
            records = [record for record in records
                       if record.get("sweep") == args.sweep]
        if not records:
            print("no ledger records match the filters", file=sys.stderr)
            return 0
        if args.json:
            sys.stdout.write(
                json.dumps(records, sort_keys=True, indent=2) + "\n")
        else:
            print(ledger_table(records))
            print(f"{len(records)} records in {ledger.record_path}",
                  file=sys.stderr)
        return 0
    latest = latest_records(records)
    if args.action == "show":
        if len(args.digests) != 1:
            print("error: ledger show takes exactly one DIGEST",
                  file=sys.stderr)
            return 2
        digest = resolve_digest(records, args.digests[0])
        sys.stdout.write(
            json.dumps(latest[digest], sort_keys=True, indent=2) + "\n")
        return 0
    # diff
    if len(args.digests) != 2:
        print("error: ledger diff takes exactly two DIGESTs", file=sys.stderr)
        return 2
    a = latest[resolve_digest(records, args.digests[0])]
    b = latest[resolve_digest(records, args.digests[1])]
    diff = diff_records(a, b)
    if args.json:
        sys.stdout.write(json.dumps(diff, sort_keys=True, indent=2) + "\n")
    else:
        print(diff_table(diff))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import time

    from ..observe.ledger import ledger_dir, RunLedger
    from ..observe.status import all_points_terminal, render_status_board

    ledger = RunLedger(ledger_dir(Path(args.cache_dir)))
    while True:
        events = ledger.status_events()
        print(render_status_board(events))
        if not args.watch or all_points_terminal(events):
            return 0
        time.sleep(max(args.interval, 0.05))
        print()


def _cmd_regress(args: argparse.Namespace) -> int:
    from .sentinel import (
        DEFAULT_MIN_REL,
        DEFAULT_SIGMA,
        evaluate,
        load_bench,
        regress_table,
    )

    baselines = [load_bench(Path(path)) for path in args.against]
    if args.current is not None:
        current = load_bench(Path(args.current))
    else:
        from .bench import run_bench

        current = run_bench(repeat=args.repeat, progress=_progress)
    report = evaluate(
        current,
        baselines,
        min_rel=args.min_rel if args.min_rel is not None else DEFAULT_MIN_REL,
        sigma=args.sigma if args.sigma is not None else DEFAULT_SIGMA,
    )
    if args.json:
        _write_or_stdout(
            args, json.dumps(report, sort_keys=True, indent=2) + "\n")
    else:
        _write_or_stdout(args, regress_table(report) + "\n")
    return int(report["exit_code"])


def _cmd_timeline(args: argparse.Namespace) -> int:
    from ..analysis.timeline import available_metrics, render_timeline
    from ..observe.artifacts import find_artifact, load_artifact

    if args.artifact is not None:
        path = Path(args.artifact)
    elif args.digest is not None:
        directory = _artifact_dir(args)
        path = find_artifact(directory, args.digest, "metrics")
        if path is None:
            print(f"error: no metrics artifact for digest {args.digest!r} "
                  f"under {directory}", file=sys.stderr)
            return 2
    else:
        print("error: --timeline needs --artifact or --digest",
              file=sys.stderr)
        return 2
    artifact = load_artifact(path)
    if args.timeline == "list":
        for kind, name in available_metrics(artifact):
            print(f"{kind:8s}{name}")
        return 0
    print(render_timeline(artifact, args.timeline, by=args.by))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.timeline is not None:
        return _cmd_timeline(args)
    from ..analysis.aggregate import (
        grouped_percentile_table,
        load_payload,
        sweep_table,
        sweeps_to_csv,
    )

    # Validate the plot spec up front so a typo cannot emit the full
    # tables to stdout before failing (a partial-success state for
    # pipelines capturing stdout).
    plot_columns = _parse_plot_spec(args.plot) if args.plot is not None else None
    if args.input:
        text = (
            sys.stdin.read()
            if args.input == "-"
            else Path(args.input).read_text(encoding="utf-8")
        )
        sweeps = load_payload(text)
    else:
        cache = ResultCache(Path(args.cache_dir))
        entries = list(cache.iter_entries(args.experiment))
        label = args.experiment or "cache"
        sweeps = [{"label": label, "runs": entries}]
    if args.percentiles is not None:
        if args.format == "csv":
            raise ValueError("--percentiles renders a table; drop --format csv")
        by, sep, value = args.percentiles.partition(":")
        if not sep or not by or not value:
            raise ValueError(
                f"--percentiles expects BY:VALUE, got {args.percentiles!r}"
            )
        for sweep in sweeps:
            print(
                grouped_percentile_table(
                    sweep["runs"],
                    by=by,
                    value=value,
                    title=str(sweep.get("label", "")),
                )
            )
            print()
    elif args.format == "csv":
        sys.stdout.write(sweeps_to_csv(sweeps))
    else:
        for sweep in sweeps:
            print(sweep_table(sweep["runs"], title=str(sweep.get("label", ""))))
            print()
    if plot_columns is not None:
        _render_plots(sweeps, plot_columns, args.plot_by)
    return 0


def _parse_plot_spec(plot: str) -> Tuple[str, str]:
    x, sep, y = plot.partition(":")
    if not sep or not x or not y:
        raise ValueError(f"--plot expects X:Y column names, got {plot!r}")
    return x, y


def _render_plots(
    sweeps: Sequence[Dict[str, object]],
    plot_columns: Tuple[str, str],
    plot_by: Optional[str],
) -> None:
    """ASCII-chart one sweep column pair per sweep, to stderr.

    Keeps stdout machine-consumable: tables/CSV stay the primary output
    and the chart rides alongside on the diagnostic stream.
    """
    from ..analysis.plot import ascii_chart, series_from_runs

    x, y = plot_columns
    by = tuple(key for key in (plot_by or "").split(",") if key)
    for sweep in sweeps:
        label = str(sweep.get("label", ""))
        series = series_from_runs(sweep["runs"], x, y, by=by)
        if not series:
            print(
                f"{label or 'sweep'}: no plottable points for {x} vs {y}",
                file=sys.stderr,
            )
            continue
        chart = ascii_chart(
            series,
            x_label=x,
            y_label=y,
            title=label,
            # --plot-by always gets its legend line, even when the
            # grouping collapses to a single (possibly unnamed) series.
            force_legend=plot_by is not None,
        )
        print(chart, file=sys.stderr)
        print(file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "diagnose":
            return _cmd_diagnose(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "ledger":
            return _cmd_ledger(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "regress":
            return _cmd_regress(args)
    except (KeyError, TypeError, ValueError, OSError) as error:
        # Bad experiment/parameter names, malformed inputs, unreadable
        # paths: report cleanly instead of dumping a traceback.
        if isinstance(error, OSError):
            message = str(error)
        else:
            message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
