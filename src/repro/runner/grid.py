"""Deterministic parameter grids for experiment sweeps.

A grid maps parameter names to axes of values; expansion is the cross
product of the axes in a canonical order (keys sorted, last key varying
fastest), so a sweep enumerates the same runs in the same order on every
machine — the foundation for content-addressed caching and for the
``--jobs 1`` / ``--jobs N`` equivalence guarantee.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Sequence, Union

GridSpec = Union[Mapping[str, object], Sequence[Mapping[str, object]]]


class ParameterGrid:
    """A cross-product grid of experiment parameters.

    A *list* value is an axis to sweep over; any other value (including
    a tuple, e.g. torus ``dims``) is a single fixed value.  A sequence
    of mappings is the union of the individual grids, expanded in order.

    Example:
        >>> grid = ParameterGrid({"n_atoms": [2048, 4096], "steps": 7})
        >>> list(grid)
        [{'n_atoms': 2048, 'steps': 7}, {'n_atoms': 4096, 'steps': 7}]
    """

    def __init__(self, spec: GridSpec) -> None:
        if isinstance(spec, Mapping):
            subgrids = [spec]
        else:
            subgrids = list(spec)
        self._subgrids: List[Dict[str, List[object]]] = []
        for subgrid in subgrids:
            if not isinstance(subgrid, Mapping):
                raise TypeError(f"grid spec must be a mapping, got {subgrid!r}")
            axes: Dict[str, List[object]] = {}
            for key in sorted(subgrid):
                value = subgrid[key]
                axis = list(value) if isinstance(value, list) else [value]
                if not axis:
                    raise ValueError(f"axis {key!r} has no values")
                axes[key] = axis
            self._subgrids.append(axes)

    def __len__(self) -> int:
        total = 0
        for axes in self._subgrids:
            count = 1
            for values in axes.values():
                count *= len(values)
            total += count
        return total

    def __iter__(self) -> Iterator[Dict[str, object]]:
        for axes in self._subgrids:
            keys = list(axes)
            for combo in itertools.product(*(axes[key] for key in keys)):
                yield dict(zip(keys, combo))

    def axes(self) -> Dict[str, List[object]]:
        """The merged axes (for display); union grids merge last-wins."""
        merged: Dict[str, List[object]] = {}
        for axes in self._subgrids:
            merged.update(axes)
        return merged

    def subgrids(self) -> List[Dict[str, List[object]]]:
        """The expanded per-subgrid axes (one mapping per union member).

        Single-mapping grids return a one-element list; display code
        (the experiment catalog) uses this to tell apart axes that are
        genuinely swept from axes that merely differ between union
        members.
        """
        return [dict(axes) for axes in self._subgrids]

    def __repr__(self) -> str:
        return f"ParameterGrid({self._subgrids!r})"
