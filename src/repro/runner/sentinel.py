"""``repro-runner regress`` — the noise-aware benchmark regression sentinel.

Continuous performance characterization needs more than a single
number: host wall-clock is noisy, so a naive threshold either cries
wolf or sleeps through real slowdowns.  The sentinel loads the
``BENCH_<rev>.json`` snapshots produced by ``repro-runner bench
--json`` (:mod:`repro.runner.bench`), fits a per-case noise band from
the repeated samples every snapshot carries, and classifies the current
snapshot against one or more baselines:

* **PASS** — the best-of-N wall-clock sits inside the noise band.
* **REGRESSED** — slower than ``baseline * (1 + threshold)``.
* **IMPROVED** — faster than ``baseline / (1 + threshold)``.
* **NEW** / **MISSING** — the case exists on only one side.

The per-case threshold is ``max(min_rel, sigma * cv)`` where ``cv`` is
the coefficient of variation (stddev/mean) of the pooled baseline
samples: quiet cases get the tight floor, jittery cases earn a wider
band, and a genuine 2x slowdown clears any plausible band.  The report
carries a machine-readable exit code (0 clean, 1 regressed) for CI.

Result drift rides along: every bench snapshot embeds the flattened
numeric result surface, so a perf change that also changed *results*
is listed per case under ``results_changed`` (informational — the
determinism gates elsewhere in CI are the hard failure for that).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = [
    "REGRESS_SCHEMA_ID",
    "evaluate",
    "load_bench",
    "noise_bands",
    "regress_table",
]

REGRESS_SCHEMA_ID = "repro.regress/1"
BENCH_SCHEMA_ID = "repro.bench/1"

#: Relative slowdown floor: never flag less than a 10% delta, however
#: quiet the baseline samples look.
DEFAULT_MIN_REL = 0.10
#: Band width in baseline noise units (coefficients of variation).
DEFAULT_SIGMA = 4.0


def load_bench(path: Path) -> dict:
    """Read one ``BENCH_<rev>.json`` snapshot (raises ``ValueError``)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA_ID:
        raise ValueError(
            f"{path} is not a {BENCH_SCHEMA_ID} bench snapshot"
        )
    if not isinstance(payload.get("cases"), list):
        raise ValueError(f"{path} carries no bench cases")
    return payload


def _case_map(payload: Mapping) -> Dict[str, Mapping]:
    return {
        str(case.get("name")): case
        for case in payload.get("cases", ())
        if isinstance(case, Mapping) and case.get("name")
    }


def _samples(case: Mapping) -> List[float]:
    wall = case.get("wall_s", {})
    samples = wall.get("all") if isinstance(wall, Mapping) else None
    if isinstance(samples, list) and samples:
        return [float(s) for s in samples]
    best = wall.get("best") if isinstance(wall, Mapping) else None
    return [float(best)] if isinstance(best, (int, float)) else []


def noise_bands(
    baselines: Sequence[Mapping],
    min_rel: float = DEFAULT_MIN_REL,
    sigma: float = DEFAULT_SIGMA,
) -> Dict[str, Dict[str, object]]:
    """Per-case noise bands fitted from pooled baseline samples.

    Pooling every baseline snapshot's repeats gives the band more
    degrees of freedom than any single best-of-N; one-sample histories
    fall back to the ``min_rel`` floor (cv is 0).
    """
    bands: Dict[str, Dict[str, object]] = {}
    for payload in baselines:
        for name, case in _case_map(payload).items():
            bucket = bands.setdefault(
                name,
                {"samples": [], "revs": [], "metrics": None},
            )
            bucket["samples"].extend(_samples(case))
            rev = str(payload.get("rev", "unknown"))
            if rev not in bucket["revs"]:
                bucket["revs"].append(rev)
            # The newest baseline's result surface is the drift anchor.
            bucket["metrics"] = case.get("metrics")
    for name, bucket in bands.items():
        samples = bucket["samples"]
        mean = sum(samples) / len(samples) if samples else 0.0
        if len(samples) > 1 and mean > 0:
            variance = sum((s - mean) ** 2 for s in samples) / (
                len(samples) - 1
            )
            cv = math.sqrt(variance) / mean
        else:
            cv = 0.0
        bucket["best"] = min(samples) if samples else None
        bucket["mean"] = mean if samples else None
        bucket["cv"] = cv
        bucket["threshold"] = max(min_rel, sigma * cv)
    return bands


def _changed_result_keys(
    baseline_metrics: Optional[Mapping],
    current_metrics: Optional[Mapping],
    rel_tol: float = 1e-9,
) -> List[str]:
    if not isinstance(baseline_metrics, Mapping) or not isinstance(
        current_metrics, Mapping
    ):
        return []
    changed = []
    for key in sorted(set(baseline_metrics) | set(current_metrics)):
        a, b = baseline_metrics.get(key), current_metrics.get(key)
        if a is None or b is None:
            changed.append(key)
        elif not math.isclose(
            float(a), float(b), rel_tol=rel_tol, abs_tol=rel_tol
        ):
            changed.append(key)
    return changed


def evaluate(
    current: Mapping,
    baselines: Sequence[Mapping],
    min_rel: float = DEFAULT_MIN_REL,
    sigma: float = DEFAULT_SIGMA,
) -> dict:
    """Classify one current bench snapshot against baseline history."""
    if min_rel < 0:
        raise ValueError("min_rel must be >= 0")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if not baselines:
        raise ValueError("regress needs at least one baseline snapshot")
    bands = noise_bands(baselines, min_rel=min_rel, sigma=sigma)
    current_cases = _case_map(current)
    rows: List[Dict[str, object]] = []
    for name in sorted(set(bands) | set(current_cases)):
        band = bands.get(name)
        case = current_cases.get(name)
        if band is None or band.get("best") is None:
            rows.append({"name": name, "verdict": "NEW"})
            continue
        if case is None:
            rows.append({"name": name, "verdict": "MISSING"})
            continue
        samples = _samples(case)
        current_best = min(samples) if samples else None
        baseline_best = float(band["best"])
        threshold = float(band["threshold"])
        if not current_best or baseline_best <= 0:
            verdict = "NEW"
            ratio = None
        else:
            ratio = current_best / baseline_best
            if ratio > 1.0 + threshold:
                verdict = "REGRESSED"
            elif ratio < 1.0 / (1.0 + threshold):
                verdict = "IMPROVED"
            else:
                verdict = "PASS"
        rows.append(
            {
                "name": name,
                "verdict": verdict,
                "current_best_s": current_best,
                "baseline_best_s": baseline_best,
                "baseline_mean_s": band["mean"],
                "baseline_samples": len(band["samples"]),
                "baseline_revs": list(band["revs"]),
                "cv": band["cv"],
                "threshold": threshold,
                "ratio": ratio,
                "results_changed": _changed_result_keys(
                    band.get("metrics"), case.get("metrics")
                ),
            }
        )
    regressed = [row["name"] for row in rows if row["verdict"] == "REGRESSED"]
    return {
        "schema": REGRESS_SCHEMA_ID,
        "current_rev": str(current.get("rev", "unknown")),
        "baseline_revs": sorted(
            {str(p.get("rev", "unknown")) for p in baselines}
        ),
        "min_rel": min_rel,
        "sigma": sigma,
        "cases": rows,
        "regressed": regressed,
        "verdict": "REGRESSED" if regressed else "PASS",
        "exit_code": 1 if regressed else 0,
    }


def regress_table(report: Mapping) -> str:
    """Human-readable rendering of one :func:`evaluate` report."""
    lines = [
        f"regress: {report['current_rev']} vs "
        f"{'+'.join(report['baseline_revs'])} "
        f"(min_rel={report['min_rel']:.0%}, sigma={report['sigma']:g})"
    ]
    for row in report["cases"]:
        verdict = row["verdict"]
        if verdict in ("NEW", "MISSING"):
            lines.append(f"  {verdict:9s} {row['name']}")
            continue
        ratio = row["ratio"]
        lines.append(
            f"  {verdict:9s} {row['name']}: "
            f"{row['current_best_s']:.3f}s vs {row['baseline_best_s']:.3f}s "
            f"({ratio:.2f}x, band +/-{row['threshold']:.0%}, "
            f"{row['baseline_samples']} baseline samples)"
        )
        if row.get("results_changed"):
            shown = ", ".join(row["results_changed"][:4])
            more = len(row["results_changed"]) - 4
            suffix = f" (+{more} more)" if more > 0 else ""
            lines.append(f"            results changed: {shown}{suffix}")
    lines.append(f"verdict: {report['verdict']}")
    return "\n".join(lines)
