"""Synthetic-traffic load sweep: latency vs offered load with saturation.

Sweeps open-loop uniform-random and nearest-neighbor traffic on a small
torus and prints the latency-vs-offered-load tables with the detected
saturation points.  The same curves are available through the parallel
runner as registered sweeps::

    repro-runner sweep load-sweep-uniform load-sweep-neighbor --jobs 4

Run:  python examples/load_sweep.py
"""

from repro.analysis import load_sweep_table
from repro.traffic import measure_load_sweep

LOADS = [0.05, 0.2, 0.4, 0.6, 0.8, 1.0]


def main() -> None:
    for pattern in ("uniform", "neighbor"):
        sweep = measure_load_sweep(
            LOADS,
            dims=(2, 2, 2),
            chip_cols=6,
            chip_rows=6,
            pattern=pattern,
            warmup_ns=300.0,
            measure_ns=1000.0,
        )
        runs = [{"result": point} for point in sweep["points"]]
        print(load_sweep_table(runs, title=f"pattern: {pattern}"))
        print()


if __name__ == "__main__":
    main()
