#!/usr/bin/env python
"""Network-fence study: synchronization domains, patterns, and merging.

Shows (1) how barrier latency scales with the synchronization domain's
hop count (Figure 11's linear scaling), (2) the GC-to-ICB fence that paces
position streaming, and (3) the router-level fence merge/multicast
mechanics of Figure 10 on a small multicast DAG.

Run:  python examples/global_barrier.py
"""

from repro.analysis import format_table
from repro.fence import (
    FenceEdge,
    FenceEngine,
    FencePattern,
    configure_fence_network,
    run_fence_flood,
)
from repro.netsim import NetworkMachine


def demo_barrier_scaling(machine: NetworkMachine) -> None:
    print("== Barrier latency vs synchronization domain (Figure 11) ==")
    engine = FenceEngine(machine)
    rows = []
    for hops in range(machine.torus.dims.diameter + 1):
        gc = engine.barrier_latency(hops, FencePattern.GC_TO_GC)
        icb = engine.barrier_latency(hops, FencePattern.GC_TO_ICB)
        rows.append((hops, f"{gc:.1f}", f"{icb:.1f}"))
    print(format_table(("hops", "GC-to-GC ns", "GC-to-ICB ns"), rows))
    print("paper (128 nodes): 51.5 ns at 0 hops, ~504 ns global\n")


def demo_merge_mechanics() -> None:
    print("== Fence merging and multicast (Figure 10) ==")
    # Four GCs inject fences into two first-level routers; the merged
    # fences meet at a middle router and multicast to three ICBs.
    sources = {f"gc{i}": [FenceEdge(f"gc{i}", f"rtr{i % 2}", "in")]
               for i in range(4)}
    edges = {
        ("rtr0", "in"): [FenceEdge("rtr0", "mid", "left")],
        ("rtr1", "in"): [FenceEdge("rtr1", "mid", "right")],
        ("mid", "left"): [FenceEdge("mid", f"icb{i}", "in")
                          for i in range(3)],
        ("mid", "right"): [FenceEdge("mid", f"icb{i}", "in")
                           for i in range(3)],
        **{(f"icb{i}", "in"): [] for i in range(3)},
    }
    routers = configure_fence_network(sources, edges)
    print("  preconfigured expected counts per router input:")
    for name, router in sorted(routers.items()):
        for port, unit in sorted(router.inputs.items()):
            print(f"    {name}[{port}]: expect {unit.expected}, "
                  f"multicast to {sorted(unit.output_mask) or ['(consume)']}")
    deliveries = run_fence_flood(sources, edges)
    print(f"  flood result: every ICB received exactly one merged fence: "
          f"{deliveries}\n")


def demo_concurrent_fences(machine: NetworkMachine) -> None:
    print("== Concurrent fences (Section V-D) ==")
    engine = FenceEngine(machine)
    completions = []
    for i in range(3):
        engine.start_fence(1, on_node_complete=lambda c, t:
                           completions.append(t))
    machine.sim.run()
    nodes = machine.torus.dims.num_nodes
    print(f"  3 overlapped fences completed on all {nodes} nodes "
          f"({len(completions)} completions); hardware supports up to "
          f"{FenceEngine.MAX_CONCURRENT} concurrent fences\n")


def main() -> None:
    machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                             seed=2)
    demo_barrier_scaling(machine)
    demo_merge_mechanics()
    demo_concurrent_fences(machine)


if __name__ == "__main__":
    main()
