"""Routing ablation: one traffic pattern, several routing policies.

Sweeps open-loop tornado traffic (the half-way ring offset where
minimal dimension-order routing collapses) on an 8-node ring under
four routing policies and prints the latency-vs-load table per policy
— fixed-xyz collapses, randomized minimal limps, Valiant keeps both
ring directions busy, and per-hop adaptive-escape matches Valiant under
congestion without paying its detour at low load.  The same curves
(plus transpose, bit-complement and hotspot) are available through the
parallel runner as registered sweeps::

    repro-runner sweep route-ablation-valiant route-ablation-adaptive-escape

and can be rendered as an ASCII chart straight from the results::

    repro-runner sweep route-ablation-valiant -o out.json
    repro-runner report --input out.json \
        --plot offered_load:classes.request.latency_ns.mean \
        --plot-by pattern,routing

Run:  python examples/routing_ablation.py
"""

from repro.analysis import load_sweep_table
from repro.traffic import measure_load_sweep

RING = (8, 1, 1)
LOADS = [0.05, 0.2, 0.45]
POLICIES = ("fixed-xyz", "randomized-minimal", "valiant",
            "adaptive-escape")


def main() -> None:
    ceilings = {}
    for routing in POLICIES:
        sweep = measure_load_sweep(
            LOADS,
            dims=RING,
            chip_cols=6,
            chip_rows=6,
            pattern="tornado",
            routing=routing,
            warmup_ns=300.0,
            measure_ns=1000.0,
        )
        runs = [{"result": point} for point in sweep["points"]]
        print(load_sweep_table(runs, title=f"tornado under {routing}"))
        print()
        ceilings[routing] = max(point["accepted_load"]
                                for point in sweep["points"])
    print("accepted-load ceilings:",
          "  ".join(f"{name}={ceiling:.3f}"
                    for name, ceiling in ceilings.items()))


if __name__ == "__main__":
    main()
