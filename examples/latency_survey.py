#!/usr/bin/env python
"""Latency survey: reproduce the shape of Figures 5 and 6 interactively.

Measures one-way end-to-end latency against inter-node hop count with
counted-write ping-pongs on a simulated machine, fits the linear model the
paper reports (55.9 ns + 34.2 ns/hop on the real 128-node Anton 3), and
prints the minimum-latency component breakdown.

Run:  python examples/latency_survey.py [--nodes 4 4 8] [--samples 10]
"""

import argparse

from repro.analysis import fit_latency_vs_hops, format_table
from repro.machine import minimum_one_hop_breakdown
from repro.netsim import NetworkMachine, PingPongHarness


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs=3, default=(2, 2, 4),
                        help="torus dimensions (default 2 2 4)")
    parser.add_argument("--samples", type=int, default=10,
                        help="GC placements sampled per hop count")
    parser.add_argument("--full-chips", action="store_true",
                        help="use full 24x12 chips (slower to build)")
    args = parser.parse_args()

    if args.full_chips:
        machine = NetworkMachine(dims=tuple(args.nodes), seed=3)
    else:
        machine = NetworkMachine(dims=tuple(args.nodes), chip_cols=12,
                                 chip_rows=6, seed=3)
    print(f"machine: {machine.torus.dims.num_nodes} nodes "
          f"{tuple(args.nodes)}, diameter "
          f"{machine.torus.dims.diameter} hops\n")

    harness = PingPongHarness(machine, seed=4)
    curve = harness.latency_vs_hops(samples_per_hop=args.samples)
    points = {h: s.mean for h, s in curve.items()}
    fit = fit_latency_vs_hops(points)

    rows = [(h, f"{points[h]:.1f}", f"{fit.predict(h):.1f}")
            for h in sorted(points)]
    print(format_table(("hops", "mean one-way ns", "linear fit ns"), rows))
    print(f"\nfit: {fit.fixed_ns:.1f} ns fixed + "
          f"{fit.per_hop_ns:.1f} ns/hop (r^2 = {fit.r_squared:.4f})")
    print("paper (128-node Anton 3): 55.9 ns + 34.2 ns/hop\n")

    print("minimum one-hop breakdown (Figure 6 shape):")
    entries = minimum_one_hop_breakdown()
    total = sum(e.ns for e in entries)
    for entry in entries:
        bar = "#" * max(1, round(entry.ns * 3))
        print(f"  {entry.component:36s} {entry.ns:5.2f} ns {bar}")
    print(f"  {'total':36s} {total:5.2f} ns")


if __name__ == "__main__":
    main()
