#!/usr/bin/env python
"""Latency survey: reproduce the shape of Figures 5 and 6 interactively.

Declares a latency grid over torus sizes through the parallel runner
(``repro.runner``), fans it out across worker processes with result
caching (rerunning the survey is near-free), fits the linear model the
paper reports (55.9 ns + 34.2 ns/hop on the real 128-node Anton 3), and
prints the minimum-latency component breakdown.

Run:  python examples/latency_survey.py [--nodes 4 4 8] [--samples 10]
      [--jobs 4] [--cache-dir .repro-cache]
"""

import argparse

from repro.analysis import format_table
from repro.machine import minimum_one_hop_breakdown
from repro.runner import ParameterGrid, ResultCache, Sweep, run_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs=3, action="append",
                        default=None, metavar=("X", "Y", "Z"),
                        help="torus dimensions; repeat to sweep several "
                             "sizes (default 2 2 4)")
    parser.add_argument("--samples", type=int, default=10,
                        help="GC placements sampled per hop count")
    parser.add_argument("--full-chips", action="store_true",
                        help="use full 24x12 chips (slower to build)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="result cache directory ('' disables)")
    args = parser.parse_args()

    sizes = [tuple(dims) for dims in (args.nodes or [(2, 2, 4)])]
    grid = {"dims": [tuple(d) for d in sizes],
            "machine_seed": 3, "harness_seed": 4,
            "samples_per_hop": args.samples}
    if not args.full_chips:
        grid.update(chip_cols=12, chip_rows=6)
    sweep = Sweep("fig5_latency", ParameterGrid(grid), label="latency-survey")
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    result = run_sweep(sweep, jobs=args.jobs, cache=cache)
    for run in result.runs:
        data = run.result
        origin = "cache" if run.cached else f"{run.elapsed_s:.1f}s"
        print(f"machine: {data['num_nodes']} nodes "
              f"{tuple(run.params['dims'])} ({origin})\n")
        points = {int(h): mean for h, mean in data["points"].items()}
        fit = data["fit"]
        if fit is None:
            # Fewer than two nonzero hop counts: nothing to fit against.
            rows = [(h, f"{points[h]:.1f}", "-") for h in sorted(points)]
        else:
            rows = [(h, f"{points[h]:.1f}",
                     f"{fit['fixed_ns'] + fit['per_hop_ns'] * h:.1f}")
                    for h in sorted(points)]
        print(format_table(("hops", "mean one-way ns", "linear fit ns"),
                           rows))
        if fit is not None:
            print(f"\nfit: {fit['fixed_ns']:.1f} ns fixed + "
                  f"{fit['per_hop_ns']:.1f} ns/hop "
                  f"(r^2 = {fit['r_squared']:.4f})")
        print("paper (128-node Anton 3): 55.9 ns + 34.2 ns/hop\n")

    print("minimum one-hop breakdown (Figure 6 shape):")
    entries = minimum_one_hop_breakdown()
    total = sum(e.ns for e in entries)
    for entry in entries:
        bar = "#" * max(1, round(entry.ns * 3))
        print(f"  {entry.component:36s} {entry.ns:5.2f} ns {bar}")
    print(f"  {'total':36s} {total:5.2f} ns")


if __name__ == "__main__":
    main()
