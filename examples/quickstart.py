#!/usr/bin/env python
"""Quickstart: the three Anton 3 network specializations in five minutes.

Builds a small simulated machine and demonstrates, end to end:
  1. a counted write with a blocking read (fine-grained synchronization),
  2. INZ compression of a small-valued payload,
  3. the particle cache compressing a smooth position stream,
  4. a network-fence global barrier.

Run:  python examples/quickstart.py
"""

from repro.compression import ParticleCacheChannel, PositionPacket, inz
from repro.fence import FenceEngine
from repro.netsim import CoreAddress, NetworkMachine, PingPongHarness


def demo_counted_write(machine: NetworkMachine) -> None:
    print("== 1. Counted write + blocking read (Section III-A) ==")
    src, dst = (0, 0, 0), (1, 0, 0)
    core = CoreAddress(tile_u=0, tile_v=2, which=0)
    packet = machine.send_counted_write(src, core, dst, core,
                                        quad_addr=7, words=(1, 2, 3, 4))
    machine.run()
    gc = machine.gc(dst, core)
    print(f"  delivered quad {gc.sram.read(7)} in "
          f"{packet.latency_ns:.1f} ns; quad counter = "
          f"{gc.sram.counter(7)}")
    harness = PingPongHarness(machine)
    result = harness.measure_pair(src, core, dst, core)
    print(f"  ping-pong one-way latency: {result.one_way_ns:.1f} ns "
          f"({result.hops} torus hop)\n")


def demo_inz() -> None:
    print("== 2. INZ compression (Section IV-A) ==")
    payload = [211, -180, 95, 0]  # a typical force quad
    encoded = inz.encode_signed(payload)
    print(f"  {payload} -> {encoded.num_bytes} bytes on the wire "
          f"(raw: 16); decodes to {inz.decode_signed(encoded)}\n")


def demo_particle_cache() -> None:
    print("== 3. Particle cache (Section IV-B) ==")
    channel = ParticleCacheChannel()
    print("  step | wire packet           | residual bytes")
    for step in range(5):
        x = 1_000_000 + 300 * step + step * step
        wire, __ = channel.transfer(PositionPacket(42, (x, -x, 2 * x)))
        kind = type(wire).__name__
        residual = getattr(getattr(wire, "residual", None), "num_bytes", "-")
        print(f"  {step:4d} | {kind:21s} | {residual}")
        channel.end_of_step()
    print(f"  caches in sync: {channel.in_sync()}\n")


def demo_fence(machine: NetworkMachine) -> None:
    print("== 4. Network fence global barrier (Section V) ==")
    engine = FenceEngine(machine)
    diameter = machine.torus.dims.diameter
    for hops in (0, 1, diameter):
        latency = engine.barrier_latency(hops)
        label = "intra-node" if hops == 0 else (
            "global" if hops == diameter else "1-hop domain")
        print(f"  {hops}-hop barrier ({label}): {latency:.1f} ns")


def main() -> None:
    print("Building a 2x2x2 simulated Anton 3 machine "
          "(reduced 6x6 chips for speed)...\n")
    machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                             seed=1)
    demo_counted_write(machine)
    demo_inz()
    demo_particle_cache()
    demo_fence(machine)


if __name__ == "__main__":
    main()
