#!/usr/bin/env python
"""Water-box compression study: the Figure 9/12 pipeline, end to end.

Runs a real MD simulation of an LJ-water box, partitions it across an
8-node simulated machine, pushes every exported position and returned
force through the actual INZ and particle-cache codecs, and reports the
channel-traffic reduction, the application speedup, and an ASCII machine
activity plot.

Run:  python examples/water_compression.py [--atoms 4096] [--steps 7]
"""

import argparse

from repro.analysis import format_table, render_ascii, trace_from_breakdowns
from repro.fullsim import (
    BASELINE,
    FULL,
    INZ_ONLY,
    TimestepModel,
    TrafficModel,
    evaluate_system,
)
from repro.md import Decomposition, MdEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--atoms", type=int, default=4096)
    parser.add_argument("--steps", type=int, default=7)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print(f"running MD: {args.atoms} LJ-water atoms, "
          f"{args.steps} measured steps...")
    engine = MdEngine.water(args.atoms, seed=args.seed)
    snapshots = engine.run(args.steps)
    record = snapshots[-1].record
    print(f"  box {engine.system.box:.1f} A, T = {record.temperature:.0f} K, "
          f"{record.num_pairs} range-limited pairs/step\n")

    decomp = Decomposition(box=engine.system.box, node_dims=(2, 2, 2))
    result = evaluate_system(snapshots, decomp, engine.field.cutoff)

    rows = []
    for label in ("baseline", "inz", "inz+pcache"):
        outcome = result.outcomes[label]
        rows.append((label, f"{outcome.total_bits / 8e6:.2f} MB",
                     f"{result.traffic_reduction(label):.1%}",
                     f"{outcome.mean_step_ns:.0f} ns"))
    print(format_table(("config", "channel traffic", "reduction",
                        "mean step"), rows))
    print(f"\napplication speedup (compression on vs off): "
          f"{result.speedup():.2f}x")
    print("paper: INZ 32-40%, INZ+pcache 45-62%, speedup 1.18-1.62\n")

    print("machine activity, compression off vs on (Figure 12 shape):")
    model = TimestepModel()
    for config in (BASELINE, FULL):
        traffic_model = TrafficModel(decomp, config, engine.field.cutoff)
        traffics, breakdowns = [], []
        for i, snapshot in enumerate(snapshots):
            traffic = traffic_model.process_step(snapshot)
            if i < 3:
                continue
            traffics.append(traffic)
            breakdowns.append(model.evaluate(
                traffic, num_pairs=snapshot.record.num_pairs,
                num_atoms=args.atoms, num_nodes=8))
        trace = trace_from_breakdowns(breakdowns[:2], traffics[:2])
        print(f"\n--- {config.label} ---")
        print(render_ascii(trace, bins=16))


if __name__ == "__main__":
    main()
