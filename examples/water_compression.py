#!/usr/bin/env python
"""Water-box compression study: the Figure 9/12 pipeline, end to end.

Declares a water sweep over atom counts through the parallel runner
(``repro.runner``), which runs a real MD simulation per grid point,
pushes every exported position and returned force through the actual
INZ and particle-cache codecs, and reports the channel-traffic
reduction and the application speedup; completed runs are served from
the result cache on repeat invocations.  ``--activity`` additionally
regenerates the ASCII machine-activity plot (Figure 12's shape) for
the first grid point — that plot needs the raw MD snapshots, so it
re-simulates the MD run outside the cache.

Run:  python examples/water_compression.py [--atoms 4096 --atoms 8192]
      [--steps 7] [--jobs 4] [--cache-dir .repro-cache] [--activity]
"""

import argparse

from repro.analysis import format_table, render_ascii, trace_from_breakdowns
from repro.fullsim import BASELINE, FULL, TimestepModel, TrafficModel
from repro.md import Decomposition, MdEngine
from repro.runner import ParameterGrid, ResultCache, Sweep, run_sweep


def print_sweep_tables(result) -> None:
    for run in result.runs:
        data = run.result
        origin = "cache" if run.cached else f"{run.elapsed_s:.1f}s"
        print(f"\n{data['n_atoms']} atoms on {data['num_nodes']} nodes "
              f"({origin}):")
        rows = []
        for label in ("baseline", "inz", "inz+pcache"):
            config = data["configs"][label]
            reduction = (0.0 if label == "baseline"
                         else data["reductions"][label])
            rows.append((label, f"{config['total_bits'] / 8e6:.2f} MB",
                         f"{reduction:.1%}",
                         f"{config['mean_step_ns']:.0f} ns"))
        print(format_table(("config", "channel traffic", "reduction",
                            "mean step"), rows))
        print(f"application speedup (compression on vs off): "
              f"{data['speedups']['inz+pcache']:.2f}x")
    print("paper: INZ 32-40%, INZ+pcache 45-62%, speedup 1.18-1.62\n")


def print_activity(n_atoms: int, steps: int, seed: int) -> None:
    print("machine activity, compression off vs on (Figure 12 shape):")
    engine = MdEngine.water(n_atoms, seed=seed)
    snapshots = engine.run(steps)
    decomp = Decomposition(box=engine.system.box, node_dims=(2, 2, 2))
    model = TimestepModel()
    for config in (BASELINE, FULL):
        traffic_model = TrafficModel(decomp, config, engine.field.cutoff)
        traffics, breakdowns = [], []
        for i, snapshot in enumerate(snapshots):
            traffic = traffic_model.process_step(snapshot)
            if i < 3:
                continue
            traffics.append(traffic)
            breakdowns.append(model.evaluate(
                traffic, num_pairs=snapshot.record.num_pairs,
                num_atoms=n_atoms, num_nodes=8))
        trace = trace_from_breakdowns(breakdowns[:2], traffics[:2])
        print(f"\n--- {config.label} ---")
        print(render_ascii(trace, bins=16))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--atoms", type=int, action="append", default=None,
                        help="atom count; repeat to sweep (default 4096)")
    parser.add_argument("--steps", type=int, default=7)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--cache-dir", default=".repro-cache",
                        help="result cache directory ('' disables)")
    parser.add_argument("--activity", action="store_true",
                        help="also draw the ASCII activity plot "
                             "(re-simulates the MD run; not cached)")
    args = parser.parse_args()

    atom_counts = args.atoms or [4096]
    sweep = Sweep(
        "fig9_water",
        ParameterGrid({"n_atoms": atom_counts, "steps": args.steps,
                       "seed": args.seed}),
        label="water-compression")
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    print(f"running MD water sweep: atoms {atom_counts}, "
          f"{args.steps} measured steps, jobs={args.jobs}...")
    result = run_sweep(sweep, jobs=args.jobs, cache=cache)
    print_sweep_tables(result)

    if args.activity:
        print_activity(atom_counts[0], args.steps, args.seed)


if __name__ == "__main__":
    main()
