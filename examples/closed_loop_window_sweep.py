"""Closed-loop window sweep: tornado under minimal vs Valiant routing.

Sweeps the fixed-outstanding window on the 8-node ring under tornado
traffic for the paper's randomized-minimal scheme and for Valiant
routing, and prints the throughput/latency-vs-window tables with the
detected knees.  Tornado sends every node nearly half-way around the X
ring in one rotational direction, so minimal routing loads a single
ring direction and plateaus once its windows saturate it (latency, not
throughput, grows past the knee), while Valiant's random intermediate
hop spreads the same closed-loop demand over both directions and keeps
scaling through the deepest windows.

The same curves are available through the parallel runner as registered
sweeps::

    repro-runner sweep closed-loop-tornado --jobs 4

Run:  python examples/closed_loop_window_sweep.py
"""

from repro.analysis import window_sweep_table
from repro.workload import measure_window_sweep

WINDOWS = [4, 16, 48, 96]


def main() -> None:
    for routing in ("randomized-minimal", "valiant"):
        sweep = measure_window_sweep(
            WINDOWS,
            dims=(8, 1, 1),
            chip_cols=6,
            chip_rows=6,
            pattern="tornado",
            routing=routing,
            machine_seed=7,
            workload_seed=11,
        )
        runs = [{"result": point} for point in sweep["points"]]
        print(window_sweep_table(runs, title=f"routing: {routing}"))
        print()


if __name__ == "__main__":
    main()
