"""Setup shim for environments without the wheel package (offline installs).

``pip install -e . --no-build-isolation`` uses this via the legacy path
when PEP 517 editable builds are unavailable.
"""

from setuptools import setup

setup()
