"""Packaging for the Anton 3 network reproduction.

``pip install -e .`` installs the ``repro`` package from ``src/`` (no
PYTHONPATH hacks needed) and exposes the ``repro-runner`` console script
for the parallel experiment runner.  Offline environments without the
wheel package can use ``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-anton3-network",
    version="1.0.0",
    description=(
        "Reproduction of 'The Specialized High-Performance Network on "
        "Anton 3' (HPCA 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-runner=repro.runner.cli:main",
        ],
    },
)
