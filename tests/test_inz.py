"""Tests for interleaved non-zero (INZ) encoding — Section IV-A."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import inz

i32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
small = st.integers(min_value=-500, max_value=500)


class TestInvertWord:
    def test_zero_maps_to_zero(self):
        assert inz.invert_word(0) == 0

    def test_small_negatives_become_small(self):
        # Zigzag property: magnitude-n values use ~2n codes.
        assert inz.invert_word(inz.to_u32(-1)) == 1
        assert inz.invert_word(1) == 2
        assert inz.invert_word(inz.to_u32(-2)) == 3
        assert inz.invert_word(2) == 4

    def test_extremes(self):
        assert inz.invert_word(0x8000_0000) == 0xFFFF_FFFF
        assert inz.invert_word(0x7FFF_FFFF) == 0xFFFF_FFFE

    @given(i32)
    def test_roundtrip(self, value):
        u = inz.to_u32(value)
        assert inz.uninvert_word(inz.invert_word(u)) == u

    @given(i32)
    def test_nonzero_maps_to_nonzero(self, value):
        u = inz.to_u32(value)
        if u != 0:
            assert inz.invert_word(u) != 0

    @given(st.integers(-100, 100))
    def test_monotone_in_magnitude(self, magnitude):
        # |v| <= |w|  =>  invert(v) fits in no more bits than invert(w).
        v = inz.to_u32(magnitude)
        w = inz.to_u32(magnitude * 2)
        assert inz.invert_word(v).bit_length() <= inz.invert_word(w).bit_length() + 1


class TestInterleave:
    def test_single_lane_is_identity(self):
        assert inz.interleave([0xDEADBEEF]) == 0xDEADBEEF

    def test_two_lane_positions(self):
        # Bit j of word i lands at j*2 + i.
        assert inz.interleave([1, 0]) == 0b01
        assert inz.interleave([0, 1]) == 0b10
        assert inz.interleave([2, 0]) == 0b0100
        assert inz.interleave([3, 3]) == 0b1111

    def test_high_bits_land_on_top(self):
        vec = inz.interleave([1 << 31, 1 << 31])
        assert vec == 0b11 << 62

    @given(st.lists(i32, min_size=1, max_size=4))
    def test_roundtrip(self, words):
        unsigned = [inz.to_u32(w) for w in words]
        vec = inz.interleave(unsigned)
        assert inz.deinterleave(vec, len(words)) == unsigned


class TestEncode:
    def test_all_zero_payload_is_zero_bytes(self):
        enc = inz.encode([0, 0, 0, 0])
        assert enc.num_bytes == 0
        assert enc.data == b""
        assert not enc.abandoned
        assert inz.decode(enc) == [0, 0, 0, 0]

    def test_empty_input_is_zero_payload(self):
        assert inz.encode([]).num_bytes == 0

    def test_small_values_compress(self):
        enc = inz.encode([5, -3, 7, 2])
        assert enc.num_bytes < 16
        assert inz.decode_signed(enc) == [5, -3, 7, 2]

    def test_large_values_abandoned(self):
        words = [0x7FFF_FFFF, -0x8000_0000, 0x7FFF_0000, -1]
        enc = inz.encode(words)
        assert enc.abandoned
        assert enc.num_bytes == 16
        assert inz.decode_signed(enc) == [0x7FFF_FFFF, -0x8000_0000,
                                          0x7FFF_0000, -1]

    def test_paper_example_two_words_save_five_bytes(self):
        """Figure 7: two words with one significant byte each encode so the
        most significant non-zero byte moves from byte 7 to byte 2,
        eliminating 5 bytes of an 8-byte payload."""
        # Two words whose magnitudes fit in one byte (the figure's shape).
        enc = inz.encode([0x25, 0x4C])
        # 8 bytes of raw data -> at most 3 bytes survive.
        assert enc.num_bytes == 3
        assert inz.decode(enc)[:2] == [0x25, 0x4C]

    def test_too_many_words_rejected(self):
        with pytest.raises(ValueError):
            inz.encode([1, 2, 3, 4, 5])

    def test_shorter_payloads_zero_pad(self):
        enc = inz.encode([9])
        assert inz.decode(enc) == [9, 0, 0, 0]

    def test_descriptor_mismatch_detected(self):
        enc = inz.encode([1, 2, 3, 4])
        with pytest.raises(ValueError):
            inz.decode_bytes(enc.data, enc.num_bytes + 1)

    @given(st.lists(i32, min_size=0, max_size=4))
    @settings(max_examples=300)
    def test_roundtrip_any_payload(self, words):
        enc = inz.encode([inz.to_u32(w) for w in words])
        expect = [inz.to_u32(w) for w in words] + [0] * (4 - len(words))
        assert inz.decode(enc) == expect

    @given(st.lists(small, min_size=4, max_size=4))
    @settings(max_examples=200)
    def test_small_payloads_never_abandoned(self, words):
        enc = inz.encode_signed(words)
        assert not enc.abandoned
        assert enc.num_bytes <= 6  # 4 lanes x ~10 bits + 2 bits
        assert inz.decode_signed(enc) == words

    @given(st.lists(i32, min_size=4, max_size=4))
    @settings(max_examples=200)
    def test_never_expands_beyond_raw(self, words):
        assert inz.encode_signed(words).num_bytes <= 16

    @given(st.lists(small, min_size=4, max_size=4),
           st.lists(i32, min_size=4, max_size=4))
    @settings(max_examples=100)
    def test_smaller_values_never_cost_more(self, small_words, any_words):
        """Replacing every word with a smaller-magnitude one never grows
        the encoding (monotonicity of the leading-zero optimization)."""
        shrunk = [w % 8 for w in any_words]
        assert (inz.encode_signed(shrunk).num_bytes
                <= inz.encode_signed(any_words).num_bytes)


class TestEncodedPayloadBits:
    def test_bits_are_eight_times_bytes(self):
        words = [3, -9, 12, 0]
        assert inz.encoded_payload_bits(words) == inz.encode(words).num_bytes * 8

    def test_compression_ratio_for_typical_deltas(self):
        """MD position deltas are a few hundred fixed-point units; INZ
        should beat 50% on such payloads (the Fig. 9a regime)."""
        words = [211, -180, 95, 0]
        assert inz.encoded_payload_bits(words) <= 64  # vs 128 raw
