"""Tests for channel-frame packing (Section IV-A, dense byte packing)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    ChannelAccounting,
    FrameConfig,
    FrameItem,
    KIND_COMPRESSED,
    KIND_FENCE,
    KIND_FULL,
    KIND_MARKER,
    chunk_into_frames,
    deserialize,
    serialize,
)
from repro.compression.frames import HEADER_BYTES


def item_with_header(kind, payload):
    header = bytes(range(HEADER_BYTES[kind]))
    return FrameItem(kind, payload), header


class TestFrameItem:
    def test_wire_bytes(self):
        item = FrameItem(KIND_FULL, b"\x01\x02\x03")
        assert item.wire_bytes == 1 + 8 + 3

    def test_compressed_header_smaller_than_full(self):
        assert HEADER_BYTES[KIND_COMPRESSED] < HEADER_BYTES[KIND_FULL]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FrameItem(9, b"")

    def test_rejects_oversized_payload(self):
        with pytest.raises(ValueError):
            FrameItem(KIND_FULL, bytes(32))


class TestSerializeRoundtrip:
    def test_simple_roundtrip(self):
        pairs = [item_with_header(KIND_FULL, b"\x10" * 16),
                 item_with_header(KIND_COMPRESSED, b"\x07\x09"),
                 item_with_header(KIND_MARKER, b""),
                 item_with_header(KIND_FENCE, b"")]
        items, headers = zip(*pairs)
        stream = serialize(items, headers)
        out = deserialize(stream)
        assert [i for i, __ in out] == list(items)
        assert [h for __, h in out] == list(headers)

    def test_empty_stream(self):
        assert serialize([], []) == b""
        assert deserialize(b"") == []

    def test_header_length_enforced(self):
        with pytest.raises(ValueError):
            serialize([FrameItem(KIND_FULL, b"")], [b"\x00"])

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            serialize([FrameItem(KIND_MARKER, b"")], [])

    def test_truncated_stream_detected(self):
        item, header = item_with_header(KIND_FULL, b"\xAA" * 8)
        stream = serialize([item], [header])
        with pytest.raises(ValueError):
            deserialize(stream[:-1])

    @given(st.lists(st.tuples(
        st.sampled_from([KIND_FULL, KIND_COMPRESSED, KIND_MARKER, KIND_FENCE]),
        st.binary(min_size=0, max_size=16)), max_size=40))
    @settings(max_examples=100)
    def test_roundtrip_random_streams(self, spec):
        pairs = [item_with_header(kind, payload) for kind, payload in spec]
        items = [i for i, __ in pairs]
        headers = [h for __, h in pairs]
        assert deserialize(serialize(items, headers)) == pairs


class TestFrameChunking:
    def test_exact_multiple(self):
        config = FrameConfig(frame_bytes=64)
        frames = chunk_into_frames(bytes(128), config)
        assert len(frames) == 2
        assert all(len(f) == 64 for f in frames)

    def test_padding_last_frame(self):
        config = FrameConfig(frame_bytes=64)
        frames = chunk_into_frames(bytes(range(70)), config)
        assert len(frames) == 2
        assert frames[1][6:] == bytes(58)

    def test_empty_stream_no_frames(self):
        assert chunk_into_frames(b"", FrameConfig()) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FrameConfig(frame_bytes=8)


class TestChannelAccounting:
    def test_bits_accumulate(self):
        acct = ChannelAccounting(config=FrameConfig(frame_bytes=64))
        acct.add(FrameItem(KIND_FULL, bytes(16)))      # 1 + 8 + 16 = 25
        acct.add(FrameItem(KIND_COMPRESSED, bytes(2)))  # 1 + 3 + 2 = 6
        assert acct.payload_bytes == 31
        assert acct.bits == 248
        assert acct.items == 2

    def test_frame_count_rounds_up(self):
        acct = ChannelAccounting(config=FrameConfig(frame_bytes=64))
        acct.add(FrameItem(KIND_FULL, bytes(16)))
        assert acct.frames == 1
        for __ in range(3):
            acct.add(FrameItem(KIND_FULL, bytes(16)))
        assert acct.frames == 2

    def test_utilization(self):
        acct = ChannelAccounting(config=FrameConfig(frame_bytes=100))
        assert acct.utilization == 0.0
        acct.add(FrameItem(KIND_COMPRESSED, bytes(6)))  # 10 bytes
        assert acct.utilization == pytest.approx(0.10)

    def test_add_items(self):
        acct = ChannelAccounting()
        acct.add_items(FrameItem(KIND_MARKER, b"") for __ in range(5))
        assert acct.items == 5
