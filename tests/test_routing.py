"""Routing-subsystem invariants (repro.routing).

Offline route traces (no simulator) pin the structural guarantees every
policy must keep — cycle-free routes of the expected length, the
dateline/VC discipline on wrap links — and end-to-end machine runs pin
the integration invariants: delivery under every policy, and responses
forced to mesh-restricted XYZ regardless of the request policy.
"""

import random

import pytest

from repro.netsim import CoreAddress, NetworkMachine, PacketKind, TrafficClass
from repro.netsim.packet import ADAPTIVE_VC, Packet, request_vc
from repro.routing import (
    DEFAULT_POLICY,
    POLICY_NAMES,
    AdaptiveEscapePolicy,
    RoutePhase,
    RoutePlan,
    RoutingPolicy,
    make_policy,
    next_request_direction,
    source_vc_class,
    trace_route,
)
from repro.topology.torus import Torus3D

DIMS = (4, 3, 2)


def request_packet(src, dst, plan=None, dim_order=(0, 1, 2)):
    packet = Packet(
        kind=PacketKind.COUNTED_WRITE, traffic_class=TrafficClass.REQUEST,
        src_node=src, dst_node=dst, src_core=CoreAddress(0, 0, 0),
        dst_core=CoreAddress(0, 0, 0), dim_order=dim_order)
    packet.route = plan
    return packet


def trace(policy, torus, src, dst, rng, source=None):
    plan = policy.make_plan(src, dst, rng, source=source)
    hops, final = trace_route(request_packet(src, dst, plan), torus)
    return plan, hops, final


@pytest.fixture(scope="module")
def torus():
    return Torus3D(DIMS)


class TestRegistry:
    def test_all_policies_construct(self, torus):
        for name in POLICY_NAMES:
            policy = make_policy(name, torus)
            assert isinstance(policy, RoutingPolicy)
            assert policy.name == name

    def test_unknown_policy_raises(self, torus):
        with pytest.raises(KeyError, match="unknown routing policy"):
            make_policy("typo-policy", torus)

    def test_default_is_the_papers_scheme(self):
        assert DEFAULT_POLICY == "randomized-minimal"


class TestRouteShape:
    """Every policy: cycle-free routes of the expected length."""

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_terminates_at_destination_without_cycles(self, torus, name):
        policy = make_policy(name, torus)
        rng = random.Random(7)
        for src in torus.nodes():
            for dst in torus.nodes():
                plan, hops, final = trace(policy, torus, src, dst, rng)
                assert final == torus.normalize(dst)
                # Cycle-free: a (node, phase) pair never repeats.
                visited = [(hop.coord, hop.phase) for hop in hops]
                assert len(visited) == len(set(visited))

    @pytest.mark.parametrize("name",
                             ["fixed-xyz", "randomized-minimal",
                              "adaptive-lite", "adaptive-escape"])
    def test_minimal_policies_take_minimal_routes(self, torus, name):
        policy = make_policy(name, torus)
        rng = random.Random(11)
        for src in torus.nodes():
            for dst in torus.nodes():
                __, hops, __unused = trace(policy, torus, src, dst, rng)
                # Exactly the sum of per-axis wrap distances, never more.
                assert len(hops) == torus.min_hops(src, dst)

    def test_valiant_is_two_minimal_phases(self, torus):
        policy = make_policy("valiant", torus)
        rng = random.Random(13)
        for src in torus.nodes():
            for dst in torus.nodes():
                plan, hops, __ = trace(policy, torus, src, dst, rng)
                mid = plan.phases[0].target
                expected = (torus.min_hops(src, mid)
                            + torus.min_hops(mid, dst))
                assert len(hops) == expected
                # Phase hops ride their own VC classes: 0/1 then 2/3.
                for hop in hops:
                    assert hop.vc in ((0, 1) if hop.phase == 0 else (2, 3))


class TestVcDiscipline:
    """Dateline/VC rules on wrap links, traced hop by hop."""

    def test_wrap_hop_switches_to_dateline_vc(self):
        ring = Torus3D((5, 1, 1))
        policy = make_policy("fixed-xyz", ring)
        # (3,0,0) -> (0,0,0) is +2: the second hop (4 -> 0) wraps.
        __, hops, __unused = trace(policy, ring, (3, 0, 0), (0, 0, 0),
                                   random.Random(1))
        assert [hop.direction for hop in hops] == [(0, 1), (0, 1)]
        assert [hop.vc for hop in hops] == [0, 1]

    def test_post_wrap_hops_stay_on_dateline_vc(self):
        ring = Torus3D((7, 1, 1))
        policy = make_policy("fixed-xyz", ring)
        # (5,0,0) -> (1,0,0) is +3: wrap on the 6 -> 0 hop, then onward.
        __, hops, __unused = trace(policy, ring, (5, 0, 0), (1, 0, 0),
                                   random.Random(1))
        assert [hop.vc for hop in hops] == [0, 1, 1]

    def test_axis_change_resets_the_dateline(self):
        torus = Torus3D((4, 4, 1))
        policy = make_policy("fixed-xyz", torus)
        # X leg (3 -> 0 -> 1) wraps immediately; the Y leg (1 -> 2) is a
        # fresh ring, so its hop drops back to the non-dateline VC.
        __, hops, __unused = trace(policy, torus, (3, 1, 0), (1, 2, 0),
                                   random.Random(1))
        assert [hop.vc for hop in hops] == [1, 1, 0]

    def test_source_vc_class_spreads_but_stays_per_source(self):
        classes = {source_vc_class(CoreAddress(u, v, w))
                   for u in range(4) for v in range(4) for w in (0, 1)}
        assert classes == {0, 1}
        address = CoreAddress(2, 3, 1)
        assert (source_vc_class(address)
                == source_vc_class(CoreAddress(2, 3, 1)))
        assert source_vc_class(None) == 0

    def test_planless_packets_follow_dim_order_minimally(self, torus):
        packet = request_packet((0, 0, 0), (1, 1, 1), dim_order=(2, 0, 1))
        hops, final = trace_route(packet, torus)
        assert final == (1, 1, 1)
        assert [hop.direction[0] for hop in hops] == [2, 0, 1]
        assert request_vc(packet, False) == 0  # legacy packets: class 0

    def test_cycle_detection_guards_bad_plans(self, torus):
        # A plan whose phase target is unreachable minimally can't exist,
        # but a corrupted dim_order is caught by the walker's hop limit.
        plan = RoutePlan(policy="test", phases=(
            RoutePhase(target=(1, 0, 0), dim_order=(0, 1, 2)),))
        packet = request_packet((0, 0, 0), (1, 0, 0), plan)
        hops, final = trace_route(packet, torus)
        assert final == (1, 0, 0) and len(hops) == 1


class TestAdaptiveLite:
    def test_avoids_congested_first_hop(self, torus):
        policy = make_policy("adaptive-lite", torus)
        # Make every X first hop look congested; Y/Z first hops are free.
        def congestion(node, direction):
            return 9.0 if direction[0] == 0 else 0.0
        rng = random.Random(3)
        for __ in range(20):
            plan = policy.make_plan((0, 0, 0), (1, 1, 1), rng,
                                    congestion=congestion)
            assert plan.phases[0].dim_order[0] != 0

    def test_degrades_to_randomized_when_uncongested(self, torus):
        policy = make_policy("adaptive-lite", torus)
        rng = random.Random(5)
        orders = {policy.make_plan((0, 0, 0), (1, 1, 1), rng,
                                   congestion=lambda n, d: 0.0
                                   ).phases[0].dim_order
                  for __ in range(60)}
        assert len(orders) == 6  # all six orders remain in play

    def test_machine_probe_reports_queued_channel_packets(self):
        machine = NetworkMachine(dims=(2, 1, 1), chip_cols=6, chip_rows=6,
                                 seed=3, routing="adaptive-lite")
        assert machine._channel_congestion((0, 0, 0), (0, 1)) == 0.0


def free_probe(coord, direction):
    """Every adaptive VC has full credit and an empty queue."""
    return (8, 0)


def blocked_probe(coord, direction):
    """No adaptive VC anywhere has credit: everything escapes."""
    return (0, 0)


class TestAdaptiveEscape:
    """Per-hop adaptivity, misroute budget, and the escape fallback."""

    def plan(self, torus, src, dst, max_misroutes=4):
        policy = AdaptiveEscapePolicy(torus, max_misroutes=max_misroutes)
        return policy.make_plan(src, dst, random.Random(1))

    def test_plan_is_adaptive_with_xyz_escape_order(self, torus):
        plan = self.plan(torus, (0, 0, 0), (1, 1, 1))
        assert plan.adaptive
        assert plan.max_misroutes == 4
        assert plan.phases[0].dim_order == (0, 1, 2)

    def test_uncongested_hops_win_the_adaptive_vc(self, torus):
        packet = request_packet((0, 0, 0), (1, 1, 1),
                                self.plan(torus, (0, 0, 0), (1, 1, 1)))
        direction = next_request_direction(packet, (0, 0, 0), torus,
                                           probe=free_probe)
        assert direction in [(0, 1), (1, 1), (2, 1)]
        assert not packet.on_escape
        assert request_vc(packet) == ADAPTIVE_VC

    def test_avoids_the_congested_productive_direction(self, torus):
        def x_blocked(coord, direction):
            return (0, 0) if direction[0] == 0 else (8, 0)

        packet = request_packet((0, 0, 0), (1, 1, 1),
                                self.plan(torus, (0, 0, 0), (1, 1, 1)))
        rng = random.Random(2)
        chosen = set()
        for __ in range(20):
            direction = next_request_direction(packet, (0, 0, 0), torus,
                                               probe=x_blocked, rng=rng)
            assert direction[0] != 0
            assert not packet.on_escape
            chosen.add(direction)
        # The tie really is broken over every free candidate, not
        # pinned to whichever one the first draw happened to pick.  On
        # the 2-node Z ring the offset is a half-ring tie, so both Z
        # rotations are productive alongside +Y.
        assert chosen == {(1, 1), (2, 1), (2, -1)}

    def test_half_ring_tie_makes_both_rotations_productive(self):
        ring = Torus3D((8, 1, 1))
        # dst is exactly half way: +X congested, so -X (equally minimal)
        # must win — the per-hop load balance tornado traffic needs.
        def plus_x_blocked(coord, direction):
            return (0, 0) if direction == (0, 1) else (8, 0)

        packet = request_packet((0, 0, 0), (4, 0, 0),
                                self.plan(ring, (0, 0, 0), (4, 0, 0)))
        direction = next_request_direction(packet, (0, 0, 0), ring,
                                           probe=plus_x_blocked)
        assert direction == (0, -1)
        assert not packet.on_escape

    def test_blocked_adaptive_vcs_fall_back_to_escape_dor(self, torus):
        packet = request_packet((0, 0, 0), (1, 1, 1),
                                self.plan(torus, (0, 0, 0), (1, 1, 1)))
        hops, final = trace_route(packet, torus, probe=blocked_probe)
        assert final == (1, 1, 1)
        assert [hop.direction[0] for hop in hops] == [0, 1, 2]  # escape XYZ
        assert packet.on_escape
        assert packet.misroutes == 0
        assert all(hop.vc in (0, 1, 2, 3) for hop in hops)

    def test_probe_less_walks_are_escape_minimal(self, torus):
        packet = request_packet((2, 1, 0), (0, 2, 1),
                                self.plan(torus, (2, 1, 0), (0, 2, 1)))
        hops, final = trace_route(packet, torus)
        assert final == (0, 2, 1)
        assert len(hops) == torus.min_hops((2, 1, 0), (0, 2, 1))

    def test_misroute_spends_budget_on_a_nonminimal_hop(self):
        torus = Torus3D((5, 5, 1))
        # Productive (+X) blocked, the -X detour free: the packet pays
        # one budget unit to step away from its minimal path.
        def productive_blocked(coord, direction):
            offsets = torus.offsets(coord, (2, 0, 0))
            axis, sign = direction
            productive = offsets[axis] and (
                (offsets[axis] > 0) == (sign > 0))
            return (0, 0) if productive else (8, 0)

        packet = request_packet((1, 0, 0), (2, 0, 0),
                                self.plan(torus, (1, 0, 0), (2, 0, 0)))
        direction = next_request_direction(packet, (1, 0, 0), torus,
                                           probe=productive_blocked,
                                           rng=random.Random(3))
        assert direction == (0, -1)
        assert packet.misroutes == 1
        assert not packet.on_escape

    def test_misroutes_never_cross_the_dateline(self):
        ring = Torus3D((5, 1, 1))
        # At x=0 the only detour (-X) is the wrap link; with +X blocked
        # the packet must escape instead of misrouting across it.
        def plus_x_blocked(coord, direction):
            return (0, 0) if direction == (0, 1) else (8, 0)

        packet = request_packet((0, 0, 0), (2, 0, 0),
                                self.plan(ring, (0, 0, 0), (2, 0, 0)))
        direction = next_request_direction(packet, (0, 0, 0), ring,
                                           probe=plus_x_blocked)
        assert direction == (0, 1)
        assert packet.on_escape
        assert packet.misroutes == 0

    def test_capped_misrouting_terminates(self):
        torus = Torus3D((5, 5, 1))
        # Adversarial probe: productive always blocked, detours always
        # free — the walk ping-pongs on misroutes until the budget runs
        # out, then the escape layer carries it home.
        def adversarial(coord, direction):
            offsets = torus.offsets(coord, (2, 1, 0))
            axis, sign = direction
            productive = offsets[axis] and (
                (offsets[axis] > 0) == (sign > 0))
            return (0, 0) if productive else (8, 0)

        packet = request_packet((0, 0, 0), (2, 1, 0),
                                self.plan(torus, (0, 0, 0), (2, 1, 0)))
        hops, final = trace_route(packet, torus, probe=adversarial,
                                  rng=random.Random(5))
        assert final == (2, 1, 0)
        assert packet.misroutes == 4  # full budget spent
        assert len(hops) <= torus.min_hops((0, 0, 0), (2, 1, 0)) + 2 * 4

    def test_uncapped_misrouting_livelocks(self):
        torus = Torus3D((5, 5, 1))

        def adversarial(coord, direction):
            offsets = torus.offsets(coord, (2, 1, 0))
            axis, sign = direction
            productive = offsets[axis] and (
                (offsets[axis] > 0) == (sign > 0))
            return (0, 0) if productive else (8, 0)

        packet = request_packet(
            (0, 0, 0), (2, 1, 0),
            self.plan(torus, (0, 0, 0), (2, 1, 0), max_misroutes=None))
        with pytest.raises(RuntimeError, match="did not terminate"):
            trace_route(packet, torus, probe=adversarial,
                        rng=random.Random(5))

    def test_machine_exposes_adaptive_vc_state(self):
        machine = NetworkMachine(dims=(2, 1, 1), chip_cols=6, chip_rows=6,
                                 seed=3, routing="adaptive-escape")
        chip = machine.chip((0, 0, 0))
        credits, queued = chip.adaptive_vc_state((0, 1), 0)
        assert credits == 8 and queued == 0

    def test_light_traffic_rides_the_adaptive_vc_only(self):
        machine = NetworkMachine(dims=(3, 2, 2), chip_cols=6, chip_rows=6,
                                 seed=9, routing="adaptive-escape")
        machine.send_counted_write((0, 0, 0), CoreAddress(0, 0, 0),
                                   (2, 1, 1), CoreAddress(1, 1, 0))
        machine.sim.run()
        by_vc = machine.channel_vc_packets()
        assert by_vc[ADAPTIVE_VC] > 0
        assert sum(by_vc[vc] for vc in (0, 1, 2, 3)) == 0

    def test_wrap_storm_engages_the_escape_layer_and_drains(self):
        # A burst far beyond the adaptive VC's eight-flit credit pool on
        # a wrap-heavy ring: some hops must fall back to the dateline
        # escape VCs, and everything still drains (Duato's argument,
        # observed end to end).
        machine = NetworkMachine(dims=(5, 1, 1), chip_cols=6, chip_rows=6,
                                 seed=21, routing="adaptive-escape")
        packets = []
        for x in range(5):
            for i in range(40):
                packets.append(machine.send_counted_write(
                    (x, 0, 0), CoreAddress(x, 1, 0),
                    ((x + 2) % 5, 0, 0), CoreAddress(0, 0, 0),
                    quad_addr=i % 8))
        machine.sim.run()
        assert all(p.delivered_ns is not None for p in packets)
        by_vc = machine.channel_vc_packets()
        assert by_vc[ADAPTIVE_VC] > 0
        assert sum(by_vc[vc] for vc in (0, 1, 2, 3)) > 0


class TestMachineIntegration:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_counted_writes_deliver_under_every_policy(self, name):
        machine = NetworkMachine(dims=(3, 2, 2), chip_cols=6, chip_rows=6,
                                 seed=9, routing=name)
        for dst_node in [(1, 0, 0), (2, 1, 1), (0, 1, 1)]:
            packet = machine.send_counted_write(
                (0, 0, 0), CoreAddress(0, 0, 0), dst_node,
                CoreAddress(2, 2, 0), quad_addr=4, words=(1, 2, 3, 4))
            machine.sim.run()
            assert packet.delivered_ns is not None
            assert machine.gc(dst_node,
                              CoreAddress(2, 2, 0)).sram.read(4) == [1, 2, 3, 4]

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_responses_take_mesh_xyz_regardless_of_policy(self, name):
        machine = NetworkMachine(dims=(3, 2, 2), chip_cols=6, chip_rows=6,
                                 seed=9, routing=name)
        src_node, dst_node = (0, 0, 0), (2, 1, 1)
        src_core, dst_core = CoreAddress(0, 0, 0), CoreAddress(1, 1, 0)
        machine.gc(dst_node, dst_core).sram.counted_write(3, [7, 7, 7, 7])
        machine.send_remote_read(src_node, src_core, dst_node, dst_core,
                                 quad_addr=3, reply_quad=5)
        machine.sim.run()
        responses = [p for p in machine.gc(src_node, src_core).delivered
                     if p.kind is PacketKind.READ_RESPONSE]
        assert len(responses) == 1
        response = responses[0]
        assert response.traffic_class is TrafficClass.RESPONSE
        assert response.dim_order == (0, 1, 2)
        assert response.route is None  # never policy-routed
        # Mesh restriction: hop count is the no-wrap XYZ distance, which
        # on this pair (offset -2 on X minimally) exceeds min_hops.
        assert response.torus_hops_taken == machine.torus.mesh_hops(
            dst_node, src_node)
        assert machine.torus.mesh_hops(dst_node, src_node) > \
            machine.torus.min_hops(dst_node, src_node)

    def test_valiant_requests_carry_two_phase_plans(self):
        machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                                 seed=9, routing="valiant")
        packet = machine.make_request(
            PacketKind.COUNTED_WRITE, (0, 0, 0), CoreAddress(0, 0, 0),
            (1, 1, 1), CoreAddress(0, 0, 0))
        assert packet.route is not None
        assert len(packet.route.phases) == 2
        assert [phase.vc_class for phase in packet.route.phases] == [0, 1]

    def test_pinned_dim_order_bypasses_the_policy(self):
        machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                                 seed=9, routing="valiant")
        packet = machine.make_request(
            PacketKind.COUNTED_WRITE, (0, 0, 0), CoreAddress(0, 0, 0),
            (1, 1, 1), CoreAddress(0, 0, 0), dim_order=(2, 1, 0))
        assert packet.route is None
        assert packet.dim_order == (2, 1, 0)

    def test_policy_instance_accepted(self):
        torus_policy = make_policy("fixed-xyz", Torus3D((2, 2, 2)))
        machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                                 routing=torus_policy)
        assert machine.routing is torus_policy

    def test_unknown_policy_name_raises(self):
        with pytest.raises(KeyError, match="unknown routing policy"):
            NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                           routing="best-effort")


class TestRingDeadlockFreedom:
    """Wrap-heavy ring traffic drains completely under every policy.

    This is the regression the per-VC link arbitration exists for: on a
    ring longer than two nodes, minimal routes continue around the wrap
    link, and a shared-FIFO link would deadlock the dateline discipline.
    """

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_ring_storm_drains(self, name):
        machine = NetworkMachine(dims=(5, 1, 1), chip_cols=6, chip_rows=6,
                                 seed=21, routing=name)
        packets = []
        for x in range(5):
            for offset in (1, 2):
                packets.append(machine.send_counted_write(
                    (x, 0, 0), CoreAddress(x, 1, 0),
                    ((x + offset) % 5, 0, 0), CoreAddress(0, 0, 0),
                    quad_addr=offset))
        machine.sim.run()
        assert all(p.delivered_ns is not None for p in packets)


def test_next_request_direction_advances_valiant_phase(torus):
    plan = RoutePlan(policy="valiant", phases=(
        RoutePhase(target=(1, 0, 0), dim_order=(0, 1, 2), vc_class=0),
        RoutePhase(target=(1, 1, 0), dim_order=(0, 1, 2), vc_class=1)))
    packet = request_packet((0, 0, 0), (1, 1, 0), plan)
    assert next_request_direction(packet, (0, 0, 0), torus) == (0, 1)
    assert plan.phase_index == 0
    # At the intermediate target the plan advances and heads for dst.
    assert next_request_direction(packet, (1, 0, 0), torus) == (1, 1)
    assert plan.phase_index == 1
    assert next_request_direction(packet, (1, 1, 0), torus) is None
