"""End-to-end tests of the request/response protocol (Section III-B2).

A remote read sends a request-class packet to a GC's SRAM; the memory
answers with a two-flit response on the single response VC, following a
fixed XYZ dimension order and treating the torus as a mesh (no wraparound
crossing) so one VC suffices for deadlock freedom.
"""

import pytest

from repro.netsim import (
    CoreAddress,
    NetworkMachine,
    PacketKind,
    RESPONSE_VC,
    TrafficClass,
)


@pytest.fixture(scope="module")
def machine():
    return NetworkMachine(dims=(3, 2, 2), chip_cols=6, chip_rows=6, seed=31)


def do_read(machine, src_node, dst_node, quad=5, reply=9,
            src_core=None, dst_core=None):
    src_core = src_core or CoreAddress(1, 1, 0)
    dst_core = dst_core or CoreAddress(3, 4, 1)
    target = machine.gc(dst_node, dst_core)
    target.sram.write(quad, [11, 22, 33, 44])
    requester = machine.gc(src_node, src_core)
    requester.sram.reset_counter(reply)
    request = machine.send_remote_read(src_node, src_core, dst_node,
                                       dst_core, quad_addr=quad,
                                       reply_quad=reply)
    machine.sim.run()
    return request, requester


class TestRemoteRead:
    def test_read_returns_data(self, machine):
        __, requester = do_read(machine, (0, 0, 0), (1, 1, 0))
        assert requester.sram.read(9) == [11, 22, 33, 44]
        assert requester.sram.counter(9) == 1

    def test_response_packet_properties(self, machine):
        __, requester = do_read(machine, (0, 0, 0), (2, 0, 0), reply=10)
        response = requester.delivered[-1]
        assert response.kind is PacketKind.READ_RESPONSE
        assert response.traffic_class is TrafficClass.RESPONSE
        assert response.num_flits == 2
        assert response.dim_order == (0, 1, 2)

    def test_response_never_wraps(self, machine):
        """Mesh-restricted responses: from (2,*,*) to (0,*,*) the response
        walks through x=1, never using the 2->0 wraparound link."""
        __, requester = do_read(machine, (0, 0, 0), (2, 1, 1), reply=11)
        response = requester.delivered[-1]
        mid_id = machine.torus.node_id((1, 1, 1))
        # Hops must include the intermediate x=1 column of the mesh walk.
        assert any(f"@n{mid_id}" in hop for hop in response.hop_log)
        # A torus-minimal route would be 1 X-hop; the mesh route takes 2.
        x_hops = response.torus_hops_taken
        assert x_hops >= machine.torus.min_hops((2, 1, 1), (0, 0, 0))

    def test_response_uses_response_vc_on_channels(self, machine):
        from repro.netsim.edge_router import edge_vc
        __, requester = do_read(machine, (0, 0, 0), (1, 0, 0), reply=12)
        response = requester.delivered[-1]
        assert edge_vc(response) == RESPONSE_VC

    def test_blocking_read_completes_on_response(self, machine):
        src_node, dst_node = (0, 0, 0), (1, 1, 1)
        src_core, dst_core = CoreAddress(0, 0, 0), CoreAddress(5, 5, 1)
        target = machine.gc(dst_node, dst_core)
        target.sram.write(3, [7, 7, 7, 7])
        requester = machine.gc(src_node, src_core)
        requester.sram.reset_counter(4)
        done = []
        requester.read_port.issue(4, 1, lambda r: done.append(r))
        machine.send_remote_read(src_node, src_core, dst_node, dst_core,
                                 quad_addr=3, reply_quad=4)
        machine.sim.run()
        assert len(done) == 1
        assert done[0].words == [7, 7, 7, 7]
        assert done[0].stall_ns > 0

    def test_round_trip_latency_reasonable(self, machine):
        request, requester = do_read(machine, (0, 0, 0), (1, 0, 0),
                                     reply=13)
        response = requester.delivered[-1]
        round_trip = response.delivered_ns - request.injected_ns
        # Two one-hop traversals plus memory service: 100-250 ns scale.
        assert 80.0 < round_trip < 300.0

    def test_intra_node_read(self, machine):
        """Reads within a node never touch the edge network."""
        __, requester = do_read(machine, (0, 0, 0), (0, 0, 0), reply=14,
                                src_core=CoreAddress(0, 0, 0),
                                dst_core=CoreAddress(4, 4, 0))
        response = requester.delivered[-1]
        assert response.torus_hops_taken == 0
        assert not any("ertr" in hop for hop in response.hop_log)
