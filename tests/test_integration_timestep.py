"""Cross-module integration: an MD position exchange over the flit network.

This exercises the whole stack together the way a real Anton 3 time step
does: a small water system is spatially decomposed onto a 2-node machine,
every exported atom position travels as a real counted-write packet
through the simulated routers and channels, and a GC-to-ICB network fence
is issued after the last send — the fence must complete only after every
position packet has been delivered (light-load check of the one-way
barrier semantics the data flow relies on).
"""

import numpy as np
import pytest

from repro.fence import FenceEngine, FencePattern
from repro.md import Decomposition, FixedPointCodec, MdEngine
from repro.netsim import CoreAddress, NetworkMachine


@pytest.fixture(scope="module")
def setup():
    md = MdEngine.water(128, seed=5)
    snapshots = md.run(1)
    machine = NetworkMachine(dims=(2, 1, 1), chip_cols=6, chip_rows=6,
                             seed=6)
    decomp = Decomposition(box=md.system.box, node_dims=(2, 1, 1))
    return md, snapshots[0], machine, decomp


def export_positions(machine, decomp, snapshot, cutoff):
    """Send every exported atom's position as a counted-write packet."""
    home = decomp.home_nodes(snapshot.positions)
    exports = decomp.export_map(snapshot.positions, cutoff)
    packets = []
    for node_id, atoms in exports.items():
        dst_node = decomp.torus.coord_of(node_id)
        for rank, atom in enumerate(atoms):
            src_node = decomp.torus.coord_of(int(home[atom]))
            x, y, z = (int(w) for w in snapshot.positions_fp[atom])
            packet = machine.send_counted_write(
                src_node, CoreAddress(0, int(atom) % 6, 0),
                dst_node, CoreAddress(int(atom) % 6, (int(atom) // 6) % 6, 0),
                quad_addr=int(atom) % 512,
                words=(x & 0xFFFFFFFF, y & 0xFFFFFFFF, z & 0xFFFFFFFF,
                       int(atom)))
            packets.append((int(atom), dst_node, packet))
    return packets


class TestTimestepOverFlitNetwork:
    def test_all_positions_delivered_intact(self, setup):
        md, snapshot, machine, decomp = setup
        packets = export_positions(machine, decomp, snapshot,
                                   md.field.cutoff)
        assert packets, "expected boundary atoms to be exported"
        machine.sim.run()
        codec = md.config.position_codec
        for atom, dst_node, packet in packets:
            assert packet.delivered_ns is not None
            gc = machine.gc(dst_node, packet.dst_core)
            words = gc.sram.read(atom % 512)
            assert words[3] == atom  # atom id survived
            # Reconstructed coordinates match the snapshot bit-exactly.
            sent = snapshot.positions_fp[atom].astype(np.int64) & 0xFFFFFFFF
            assert words[:3] == [int(w) for w in sent]

    def test_fence_queues_behind_channel_data(self, setup):
        """Fence packets ride the same channel links as data, so a fence
        issued while the channels are loaded completes later than on an
        idle machine — the link-level "fence follows data" behavior the
        one-way barrier builds on.

        (The engine models intra-node fence aggregation as a calibrated
        latency, so on-chip pursuit of not-yet-launched data is not
        simulated; see repro/fence/engine.py.)
        """
        md, snapshot, machine, decomp = setup
        engine = FenceEngine(machine)
        idle_latency = engine.barrier_latency(1, FencePattern.GC_TO_ICB)
        export_positions(machine, decomp, snapshot, md.field.cutoff)
        loaded_latency = engine.barrier_latency(1, FencePattern.GC_TO_ICB)
        assert loaded_latency >= idle_latency

    def test_exported_fraction_is_boundary_sized(self, setup):
        md, snapshot, machine, decomp = setup
        exports = decomp.export_map(snapshot.positions, md.field.cutoff)
        exported = sum(len(v) for v in exports.values())
        # Halving a box exports the cutoff shell: well under all atoms,
        # well over none.
        assert 0 < exported < 2 * 128

    def test_reconstructed_positions_within_resolution(self, setup):
        md, snapshot, machine, decomp = setup
        codec = md.config.position_codec
        decoded = codec.decode(snapshot.positions_fp)
        assert np.allclose(decoded, snapshot.positions,
                           atol=codec.resolution)
