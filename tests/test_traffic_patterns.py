"""Pattern-library correctness: bijections, halo sets, registry."""

import random

import numpy as np
import pytest

from repro.md.decomposition import Decomposition
from repro.topology.torus import Torus3D
from repro.traffic import (
    PATTERN_NAMES,
    AllToAllReductionPattern,
    BitComplementPattern,
    HotspotPattern,
    NeighborExchangePattern,
    TornadoPattern,
    TransposePattern,
    UniformRandomPattern,
    make_pattern,
)

SHAPES = [(2, 2, 2), (4, 4, 4), (2, 3, 4), (3, 1, 2)]


class TestPermutationPatterns:
    @pytest.mark.parametrize("dims", SHAPES)
    @pytest.mark.parametrize("cls", [TransposePattern, BitComplementPattern])
    def test_permutation_is_bijection(self, dims, cls):
        torus = Torus3D(dims)
        pattern = cls(torus)
        nodes = list(torus.nodes())
        images = [pattern.permutation(node) for node in nodes]
        assert all(image in set(nodes) for image in images)
        assert len(set(images)) == len(nodes)

    def test_transpose_is_rotation_on_cubic_torus(self):
        torus = Torus3D((3, 3, 3))
        pattern = TransposePattern(torus)
        assert pattern.permutation((1, 2, 0)) == (2, 0, 1)

    def test_bit_complement_axis_complement(self):
        torus = Torus3D((2, 3, 4))
        pattern = BitComplementPattern(torus)
        assert pattern.permutation((0, 0, 0)) == (1, 2, 3)
        assert pattern.permutation((1, 1, 2)) == (0, 1, 1)

    def test_fixed_points_do_not_send(self):
        torus = Torus3D((2, 2, 2))
        pattern = TransposePattern(torus)
        # x == y == z maps to itself under digit rotation.
        assert not pattern.sends_from((0, 0, 0))
        assert not pattern.sends_from((1, 1, 1))
        assert pattern.sends_from((0, 1, 0))


class TestTornado:
    @pytest.mark.parametrize("dims", [(8, 1, 1), (7, 1, 1), (4, 2, 2),
                                      (5, 3, 2)])
    def test_half_way_x_offset(self, dims):
        torus = Torus3D(dims)
        pattern = TornadoPattern(torus)
        offset = -(-dims[0] // 2) - 1  # ceil(X/2) - 1
        for src in torus.nodes():
            x, y, z = src
            assert pattern.permutation(src) == ((x + offset) % dims[0], y, z)

    @pytest.mark.parametrize("dims", SHAPES)
    def test_is_a_bijection(self, dims):
        torus = Torus3D(dims)
        pattern = TornadoPattern(torus)
        images = {pattern.permutation(node) for node in torus.nodes()}
        assert len(images) == torus.dims.num_nodes

    def test_degenerate_on_short_rings(self):
        """X <= 2 makes the offset zero: every node is a fixed point."""
        torus = Torus3D((2, 2, 2))
        pattern = TornadoPattern(torus)
        assert all(not pattern.sends_from(node) for node in torus.nodes())

    def test_all_traffic_circulates_one_direction(self):
        """With the positive tie-break, minimal routes of tornado traffic
        only ever use the X+ direction — the load collapse the routing
        ablation measures."""
        torus = Torus3D((8, 1, 1))
        pattern = TornadoPattern(torus)
        for src in torus.nodes():
            dst = pattern.permutation(src)
            offsets = torus.offsets(src, dst)
            assert offsets[0] > 0 and offsets[1] == offsets[2] == 0


class TestUniformAndHotspot:
    def test_uniform_never_self_and_covers_nodes(self):
        torus = Torus3D((2, 2, 2))
        pattern = UniformRandomPattern(torus)
        rng = random.Random(3)
        seen = set()
        for __ in range(400):
            dst = pattern.next_destination((0, 0, 0), rng)
            assert dst != (0, 0, 0)
            seen.add(dst)
        assert seen == set(torus.nodes()) - {(0, 0, 0)}

    def test_hotspot_fraction(self):
        torus = Torus3D((2, 2, 2))
        pattern = HotspotPattern(torus, hot=(1, 1, 1), fraction=0.5)
        rng = random.Random(5)
        draws = [pattern.next_destination((0, 0, 0), rng)
                 for __ in range(2000)]
        hot_share = sum(1 for d in draws if d == (1, 1, 1)) / len(draws)
        # 0.5 direct plus 1/7 of the uniform remainder ~= 0.57.
        assert hot_share == pytest.approx(0.5 + 0.5 / 7, abs=0.04)

    def test_hotspot_source_on_hot_node_is_uniform(self):
        torus = Torus3D((2, 2, 2))
        pattern = HotspotPattern(torus, hot=(0, 0, 0), fraction=1.0)
        rng = random.Random(6)
        for __ in range(50):
            assert pattern.next_destination((0, 0, 0), rng) != (0, 0, 0)


class TestAllToAll:
    def test_round_robin_covers_all_destinations(self):
        torus = Torus3D((2, 2, 2))
        pattern = AllToAllReductionPattern(torus)
        rng = random.Random(0)
        others = set(torus.nodes()) - {(0, 0, 0)}
        draws = [pattern.next_destination((0, 0, 0), rng)
                 for __ in range(len(others))]
        assert set(draws) == others
        # The cycle repeats deterministically.
        assert pattern.next_destination((0, 0, 0), rng) == draws[0]

    def test_reduction_sets_accumulate(self):
        assert AllToAllReductionPattern(Torus3D((2, 2, 2))).accumulate


class TestNeighborExchange:
    def test_face_neighbors_match_torus(self):
        torus = Torus3D((4, 4, 4))
        pattern = NeighborExchangePattern(torus)
        src = (1, 2, 3)
        expected = {neighbor for __, neighbor in torus.neighbors(src)}
        assert set(pattern.destinations(src)) == expected
        assert all(torus.min_hops(src, d) == 1
                   for d in pattern.destinations(src))

    def test_small_dims_deduplicate_neighbors(self):
        torus = Torus3D((2, 2, 2))
        pattern = NeighborExchangePattern(torus)
        # +1 and -1 reach the same node on a size-2 ring.
        assert len(pattern.destinations((0, 0, 0))) == 3

    @pytest.mark.parametrize("node_dims", [(2, 2, 2), (3, 2, 2)])
    def test_halo_matches_decomposition_exports(self, node_dims):
        """Halo destinations == nodes that import atoms homed on the source.

        The expected sets are computed independently through
        :meth:`Decomposition.export_map` with atoms placed densely near
        every box corner, so every geometrically reachable import
        relation is witnessed by at least one atom.
        """
        box = 24.0
        cutoff = 2.0
        decomp = Decomposition(box=box, node_dims=node_dims)
        pattern = NeighborExchangePattern.from_decomposition(decomp, cutoff)
        torus = decomp.torus

        edges = decomp.box_edges()
        positions = []
        for node in torus.nodes():
            lo = np.array(node) * edges
            for fx in (0.5, 0.5 * edges[0], edges[0] - 0.5):
                for fy in (0.5, 0.5 * edges[1], edges[1] - 0.5):
                    for fz in (0.5, 0.5 * edges[2], edges[2] - 0.5):
                        positions.append(lo + (fx, fy, fz))
        positions = np.array(positions)
        homes = decomp.home_nodes(positions)
        exports = decomp.export_map(positions, cutoff)

        for src in torus.nodes():
            src_id = torus.node_id(src)
            expected = {
                torus.coord_of(dst_id)
                for dst_id, atoms in exports.items()
                if np.any(homes[atoms] == src_id)
            }
            assert set(pattern.destinations(src)) == expected, src

    def test_large_cutoff_reaches_two_boxes(self):
        decomp = Decomposition(box=24.0, node_dims=(6, 2, 2))
        # cutoff > one x-edge (4.0): reach 2 boxes along x.
        pattern = NeighborExchangePattern.from_decomposition(decomp, 5.0)
        dests = pattern.destinations((0, 0, 0))
        assert (2, 0, 0) in dests
        assert (3, 0, 0) not in dests

    def test_cutoff_of_exactly_one_edge_stays_adjacent(self):
        """(g-1)*edge < cutoff is strict: cutoff == edge reaches g == 1.

        Matches Decomposition.export_mask, whose import region at a
        cutoff of exactly one box edge touches only the adjacent box's
        closed face, never interior atoms two boxes away.
        """
        decomp = Decomposition(box=24.0, node_dims=(6, 2, 2))
        pattern = NeighborExchangePattern.from_decomposition(decomp, 4.0)
        dests = pattern.destinations((0, 0, 0))
        assert (1, 0, 0) in dests
        assert (2, 0, 0) not in dests

    def test_rejects_nonpositive_cutoff(self):
        decomp = Decomposition(box=24.0, node_dims=(2, 2, 2))
        with pytest.raises(ValueError):
            NeighborExchangePattern.from_decomposition(decomp, 0.0)


class TestRegistry:
    def test_all_names_construct(self):
        torus = Torus3D((2, 2, 2))
        for name in PATTERN_NAMES:
            pattern = make_pattern(name, torus)
            rng = random.Random(1)
            src = (0, 1, 0)
            if pattern.sends_from(src):
                dst = pattern.next_destination(src, rng)
                assert dst in set(torus.nodes())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown traffic pattern"):
            make_pattern("typo-pattern", Torus3D((2, 2, 2)))
