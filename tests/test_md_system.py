"""Tests for chemical systems, the water-box generator, and fixed point."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import (
    ChemicalSystem,
    FixedPointCodec,
    ForceCodec,
    WATER_NUMBER_DENSITY,
    box_edge_for_atoms,
    water_box,
)


class TestBoxGeometry:
    def test_density_matches_request(self):
        n = 1000
        box = box_edge_for_atoms(n)
        assert n / box**3 == pytest.approx(WATER_NUMBER_DENSITY)

    def test_needs_atoms(self):
        with pytest.raises(ValueError):
            box_edge_for_atoms(0)


class TestWaterBox:
    def test_atom_count_and_bounds(self):
        system = water_box(500, seed=3)
        assert system.num_atoms == 500
        assert np.all(system.positions >= 0)
        assert np.all(system.positions < system.box)

    def test_no_initial_overlaps(self):
        """Jittered lattice guarantees a sane minimum separation."""
        system = water_box(343, seed=5)
        from repro.md.cells import neighbor_pairs
        ii, jj = neighbor_pairs(system.positions, system.box, 2.0)
        assert len(ii) == 0  # nothing closer than 2 A

    def test_temperature_initialization(self):
        system = water_box(2000, temperature=300.0, seed=1)
        assert system.temperature() == pytest.approx(300.0, rel=0.1)

    def test_zero_net_momentum(self):
        system = water_box(1000, seed=2)
        momentum = system.velocities.sum(axis=0)
        assert np.allclose(momentum, 0.0, atol=1e-10)

    def test_deterministic_by_seed(self):
        a = water_box(100, seed=9)
        b = water_box(100, seed=9)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.velocities, b.velocities)

    def test_different_seeds_differ(self):
        a = water_box(100, seed=1)
        b = water_box(100, seed=2)
        assert not np.array_equal(a.positions, b.positions)


class TestChemicalSystem:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChemicalSystem(positions=np.zeros((4, 3)),
                           velocities=np.zeros((3, 3)), box=10.0)
        with pytest.raises(ValueError):
            ChemicalSystem(positions=np.zeros((4, 2)),
                           velocities=np.zeros((4, 2)), box=10.0)
        with pytest.raises(ValueError):
            ChemicalSystem(positions=np.zeros((4, 3)),
                           velocities=np.zeros((4, 3)), box=-1.0)

    def test_wrap(self):
        system = ChemicalSystem(positions=np.array([[11.0, -1.0, 5.0]]),
                                velocities=np.zeros((1, 3)), box=10.0)
        system.wrap()
        assert np.allclose(system.positions, [[1.0, 9.0, 5.0]])

    def test_kinetic_energy(self):
        system = ChemicalSystem(positions=np.zeros((2, 3)),
                                velocities=np.array([[1.0, 0, 0],
                                                     [0, 2.0, 0]]),
                                box=10.0, mass=2.0)
        assert system.kinetic_energy() == pytest.approx(0.5 * 2 * (1 + 4))


class TestFixedPointCodec:
    def test_roundtrip_within_resolution(self):
        codec = FixedPointCodec()
        values = np.array([0.0, 1.5, 99.999, -42.0])
        decoded = codec.decode(codec.encode(values))
        assert np.allclose(decoded, values, atol=codec.resolution)

    def test_scalar(self):
        codec = FixedPointCodec(resolution=0.5)
        assert codec.encode_scalar(2.0) == 4

    def test_wraps_like_int32(self):
        codec = FixedPointCodec(resolution=1.0)
        big = np.array([2.0**31])
        assert codec.encode(big)[0] == -(2**31)

    def test_resolution_validated(self):
        with pytest.raises(ValueError):
            FixedPointCodec(resolution=0.0)

    def test_typical_box_fits_without_wrap(self):
        codec = FixedPointCodec()
        box = box_edge_for_atoms(100_000)  # ~144 A
        assert box < codec.max_representable()

    @given(st.floats(min_value=-1000, max_value=1000,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=100)
    def test_quantization_error_bounded(self, value):
        codec = FixedPointCodec()
        decoded = codec.decode(codec.encode(np.array([value])))[0]
        assert abs(decoded - value) <= codec.resolution / 2 + 1e-12


class TestForceCodec:
    def test_roundtrip(self):
        codec = ForceCodec()
        values = np.array([1e-4, -3e-3, 0.0])
        decoded = codec.decode(codec.encode(values))
        assert np.allclose(decoded, values, atol=codec.resolution)

    def test_clips_instead_of_wrapping(self):
        codec = ForceCodec(resolution=1.0)
        assert codec.encode(np.array([1e12]))[0] == 2**31 - 1
        assert codec.encode(np.array([-1e12]))[0] == -(2**31)
