"""Tests for fits, the area model, activity traces, and report helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ActivityTrace,
    AreaModel,
    Comparison,
    LinearFit,
    comparison_table,
    fit_latency_vs_hops,
    format_table,
    render_ascii,
    trace_from_breakdowns,
    within_band,
)
from repro.fullsim.timestep import TimestepBreakdown
from repro.fullsim.traffic import StepTraffic


class TestLinearFit:
    def test_exact_line_recovered(self):
        points = {h: 55.9 + 34.2 * h for h in range(1, 9)}
        fit = fit_latency_vs_hops(points)
        assert fit.fixed_ns == pytest.approx(55.9)
        assert fit.per_hop_ns == pytest.approx(34.2)
        assert fit.r_squared == pytest.approx(1.0)

    def test_zero_hop_excluded_by_default(self):
        points = {0: 20.0}
        points.update({h: 50.0 + 30.0 * h for h in range(1, 5)})
        fit = fit_latency_vs_hops(points)
        assert fit.fixed_ns == pytest.approx(50.0)

    def test_predict(self):
        fit = LinearFit(fixed_ns=10.0, per_hop_ns=5.0, r_squared=1.0)
        assert fit.predict(4) == 30.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_latency_vs_hops({1: 10.0})


class TestAreaModel:
    def test_table2_matches_paper(self):
        model = AreaModel()
        rows = {r.name: r for r in model.component_rows()}
        assert rows["Core Routers"].percent_of_die == pytest.approx(9.4)
        assert rows["Edge Routers"].percent_of_die == pytest.approx(1.4)
        assert rows["Channel Adapters"].percent_of_die == pytest.approx(2.8)
        assert rows["Row Adapters"].percent_of_die == pytest.approx(0.5)
        assert model.network_total_percent() == pytest.approx(14.1, abs=0.05)

    def test_table3_matches_paper(self):
        model = AreaModel()
        rows = {r.name: r for r in model.feature_rows()}
        assert rows["Particle Cache"].percent_of_die == pytest.approx(1.6)
        assert rows["Network Fence"].percent_of_die == pytest.approx(0.2)
        assert model.feature_total_percent() == pytest.approx(1.8, abs=0.01)

    def test_component_counts_match_paper(self):
        model = AreaModel()
        counts = {r.name: r.count for r in model.component_rows()}
        assert counts == {"Core Routers": 288, "Edge Routers": 72,
                          "Channel Adapters": 24, "Row Adapters": 72}

    def test_pcache_scaling(self):
        doubled = AreaModel(pcache_entries=2048)
        base = AreaModel()
        rows_d = {r.name: r for r in doubled.feature_rows()}
        rows_b = {r.name: r for r in base.feature_rows()}
        assert rows_d["Particle Cache"].percent_of_die == pytest.approx(
            2 * rows_b["Particle Cache"].percent_of_die)
        # CA area grows by the extra pcache SRAM.
        ca_d = {r.name: r for r in doubled.component_rows()}
        ca_b = {r.name: r for r in base.component_rows()}
        assert (ca_d["Channel Adapters"].area_mm2
                > ca_b["Channel Adapters"].area_mm2)

    def test_fence_counter_scaling(self):
        halved = AreaModel(fence_counters_per_edge_input=48)
        rows = {r.name: r for r in halved.feature_rows()}
        assert rows["Network Fence"].percent_of_die == pytest.approx(0.1)


class TestActivityTrace:
    def make_trace(self):
        trace = ActivityTrace(components=["a", "b"])
        trace.add("a", 0.0, 10.0)
        trace.add("b", 5.0, 15.0)
        return trace

    def test_utilization(self):
        trace = self.make_trace()
        assert trace.utilization("a", 0.0, 10.0) == pytest.approx(1.0)
        assert trace.utilization("a", 0.0, 20.0) == pytest.approx(0.5)
        assert trace.utilization("b", 0.0, 10.0) == pytest.approx(0.5)
        assert trace.utilization("a", 50.0, 60.0) == 0.0

    def test_validation(self):
        trace = self.make_trace()
        with pytest.raises(ValueError):
            trace.add("c", 0.0, 1.0)
        with pytest.raises(ValueError):
            trace.add("a", 5.0, 1.0)

    def test_trace_from_breakdowns(self):
        breakdown = TimestepBreakdown(
            channel_ns=100.0, ppim_ns=30.0, integration_ns=10.0,
            sync_ns=5.0, pipeline_fill_ns=2.0)
        traffic = StepTraffic(position_bits=600, force_bits=400)
        trace = trace_from_breakdowns([breakdown], [traffic])
        # Position window is 60% of the channel window.
        assert trace.utilization("channel:positions", 2.0, 62.0) == \
            pytest.approx(1.0)
        assert trace.utilization("channel:forces", 62.0, 102.0) == \
            pytest.approx(1.0)
        assert trace.end_ns == pytest.approx(breakdown.total_ns)

    def test_render_ascii_shape(self):
        trace = self.make_trace()
        text = render_ascii(trace, bins=10)
        lines = text.splitlines()
        assert len(lines) == 12  # header + rule + 10 bins
        assert "a" in lines[0] and "b" in lines[0]

    def test_render_validates_bins(self):
        with pytest.raises(ValueError):
            render_ascii(self.make_trace(), bins=0)


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(("x", "yy"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("x")

    def test_comparison(self):
        c = Comparison("latency", measured=55.0, published=55.9, unit="ns")
        assert c.ratio == pytest.approx(55.0 / 55.9)
        text = comparison_table([c], title="Fig 5")
        assert "Fig 5" in text and "latency" in text

    def test_within_band(self):
        assert within_band(0.35, (0.32, 0.40))
        assert not within_band(0.5, (0.32, 0.40))
        assert within_band(0.42, (0.32, 0.40), slack=0.05)
