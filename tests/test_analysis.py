"""Tests for fits, the area model, activity traces, and report helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ActivityTrace,
    AreaModel,
    Comparison,
    LinearFit,
    analyze_load_sweep,
    analyze_window_sweep,
    closed_vs_open_table,
    comparison_table,
    detect_knee,
    detect_saturation,
    fit_latency_vs_hops,
    format_table,
    grouped_percentile_table,
    grouped_percentiles,
    load_sweep_table,
    percentile,
    phase_loop_table,
    render_ascii,
    summarize_values,
    trace_from_breakdowns,
    window_sweep_table,
    window_sweep_tables,
    within_band,
)
from repro.fullsim.timestep import TimestepBreakdown
from repro.fullsim.traffic import StepTraffic


class TestLinearFit:
    def test_exact_line_recovered(self):
        points = {h: 55.9 + 34.2 * h for h in range(1, 9)}
        fit = fit_latency_vs_hops(points)
        assert fit.fixed_ns == pytest.approx(55.9)
        assert fit.per_hop_ns == pytest.approx(34.2)
        assert fit.r_squared == pytest.approx(1.0)

    def test_zero_hop_excluded_by_default(self):
        points = {0: 20.0}
        points.update({h: 50.0 + 30.0 * h for h in range(1, 5)})
        fit = fit_latency_vs_hops(points)
        assert fit.fixed_ns == pytest.approx(50.0)

    def test_predict(self):
        fit = LinearFit(fixed_ns=10.0, per_hop_ns=5.0, r_squared=1.0)
        assert fit.predict(4) == 30.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_latency_vs_hops({1: 10.0})


class TestAreaModel:
    def test_table2_matches_paper(self):
        model = AreaModel()
        rows = {r.name: r for r in model.component_rows()}
        assert rows["Core Routers"].percent_of_die == pytest.approx(9.4)
        assert rows["Edge Routers"].percent_of_die == pytest.approx(1.4)
        assert rows["Channel Adapters"].percent_of_die == pytest.approx(2.8)
        assert rows["Row Adapters"].percent_of_die == pytest.approx(0.5)
        assert model.network_total_percent() == pytest.approx(14.1, abs=0.05)

    def test_table3_matches_paper(self):
        model = AreaModel()
        rows = {r.name: r for r in model.feature_rows()}
        assert rows["Particle Cache"].percent_of_die == pytest.approx(1.6)
        assert rows["Network Fence"].percent_of_die == pytest.approx(0.2)
        assert model.feature_total_percent() == pytest.approx(1.8, abs=0.01)

    def test_component_counts_match_paper(self):
        model = AreaModel()
        counts = {r.name: r.count for r in model.component_rows()}
        assert counts == {"Core Routers": 288, "Edge Routers": 72,
                          "Channel Adapters": 24, "Row Adapters": 72}

    def test_pcache_scaling(self):
        doubled = AreaModel(pcache_entries=2048)
        base = AreaModel()
        rows_d = {r.name: r for r in doubled.feature_rows()}
        rows_b = {r.name: r for r in base.feature_rows()}
        assert rows_d["Particle Cache"].percent_of_die == pytest.approx(
            2 * rows_b["Particle Cache"].percent_of_die)
        # CA area grows by the extra pcache SRAM.
        ca_d = {r.name: r for r in doubled.component_rows()}
        ca_b = {r.name: r for r in base.component_rows()}
        assert (ca_d["Channel Adapters"].area_mm2
                > ca_b["Channel Adapters"].area_mm2)

    def test_fence_counter_scaling(self):
        halved = AreaModel(fence_counters_per_edge_input=48)
        rows = {r.name: r for r in halved.feature_rows()}
        assert rows["Network Fence"].percent_of_die == pytest.approx(0.1)


class TestActivityTrace:
    def make_trace(self):
        trace = ActivityTrace(components=["a", "b"])
        trace.add("a", 0.0, 10.0)
        trace.add("b", 5.0, 15.0)
        return trace

    def test_utilization(self):
        trace = self.make_trace()
        assert trace.utilization("a", 0.0, 10.0) == pytest.approx(1.0)
        assert trace.utilization("a", 0.0, 20.0) == pytest.approx(0.5)
        assert trace.utilization("b", 0.0, 10.0) == pytest.approx(0.5)
        assert trace.utilization("a", 50.0, 60.0) == 0.0

    def test_validation(self):
        trace = self.make_trace()
        with pytest.raises(ValueError):
            trace.add("c", 0.0, 1.0)
        with pytest.raises(ValueError):
            trace.add("a", 5.0, 1.0)

    def test_trace_from_breakdowns(self):
        breakdown = TimestepBreakdown(
            channel_ns=100.0, ppim_ns=30.0, integration_ns=10.0,
            sync_ns=5.0, pipeline_fill_ns=2.0)
        traffic = StepTraffic(position_bits=600, force_bits=400)
        trace = trace_from_breakdowns([breakdown], [traffic])
        # Position window is 60% of the channel window.
        assert trace.utilization("channel:positions", 2.0, 62.0) == \
            pytest.approx(1.0)
        assert trace.utilization("channel:forces", 62.0, 102.0) == \
            pytest.approx(1.0)
        assert trace.end_ns == pytest.approx(breakdown.total_ns)

    def test_render_ascii_shape(self):
        trace = self.make_trace()
        text = render_ascii(trace, bins=10)
        lines = text.splitlines()
        assert len(lines) == 12  # header + rule + 10 bins
        assert "a" in lines[0] and "b" in lines[0]

    def test_render_validates_bins(self):
        with pytest.raises(ValueError):
            render_ascii(self.make_trace(), bins=0)


class TestPercentiles:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile([7.0], 99.0) == 7.0

    def test_percentile_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_summarize_values_columns(self):
        summary = summarize_values([float(v) for v in range(1, 101)])
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)

    def test_grouped_percentiles_by_sweep_key(self):
        runs = []
        for hops in (1, 2):
            for latency in (10.0 * hops, 20.0 * hops, 30.0 * hops):
                runs.append({"params": {"hops": hops},
                             "result": {"one_way_ns": latency}})
        groups = grouped_percentiles(runs, by="hops", value="one_way_ns")
        assert set(groups) == {1, 2}
        assert groups[1]["mean"] == pytest.approx(20.0)
        assert groups[2]["p50"] == pytest.approx(40.0)
        assert groups[1]["count"] == 3

    def test_grouped_percentiles_numeric_key_order(self):
        runs = [{"params": {"hops": h}, "result": {"ns": 1.0}}
                for h in (10, 2, 1)]
        groups = grouped_percentiles(runs, by="hops", value="ns")
        assert list(groups) == [1, 2, 10]

    def test_grouped_percentiles_nested_result_keys(self):
        runs = [{"params": {"load": 0.1},
                 "result": {"latency": {"mean": 5.0}}}]
        groups = grouped_percentiles(runs, by="load", value="latency.mean")
        assert groups[0.1]["count"] == 1

    def test_grouped_percentile_table_renders(self):
        runs = [{"params": {"hops": 1}, "result": {"ns": 10.0}}]
        text = grouped_percentile_table(runs, by="hops", value="ns",
                                        title="per hop")
        assert "per hop" in text and "p99" in text
        assert "(no samples)" in grouped_percentile_table(
            [], by="hops", value="ns")


def _load_run(load, mean_latency, accepted=None, pattern="uniform"):
    return {
        "params": {"offered_load": load},
        "result": {
            "offered_load": load,
            "pattern": pattern,
            "accepted_load": accepted if accepted is not None else load,
            "classes": {"request": {"latency_ns": {"mean": mean_latency}}},
        },
    }


class TestSaturation:
    def test_detect_interpolates_crossing(self):
        loads = [0.1, 0.5, 0.9]
        latencies = [100.0, 110.0, 500.0]
        # Threshold 300 crossed between 0.5 and 0.9.
        point = detect_saturation(loads, latencies, latency_multiple=3.0)
        assert point == pytest.approx(0.5 + 0.4 * (300 - 110) / (500 - 110))

    def test_detect_none_when_flat(self):
        assert detect_saturation([0.1, 0.5], [100.0, 120.0]) is None

    def test_detect_validation(self):
        with pytest.raises(ValueError):
            detect_saturation([0.5, 0.1], [1.0, 2.0])
        with pytest.raises(ValueError):
            detect_saturation([], [])
        with pytest.raises(ValueError):
            detect_saturation([0.1], [1.0], latency_multiple=1.0)

    def test_analyze_load_sweep_sorts_and_detects(self):
        runs = [_load_run(0.9, 400.0, accepted=0.6),
                _load_run(0.1, 100.0),
                _load_run(0.5, 110.0)]
        analysis = analyze_load_sweep(runs)
        assert analysis.pattern == "uniform"
        assert analysis.zero_load_latency_ns == 100.0
        assert [p[0] for p in analysis.points] == [0.1, 0.5, 0.9]
        assert analysis.saturated
        assert 0.5 < analysis.saturation_load < 0.9
        assert analysis.to_dict()["saturation_load"] == pytest.approx(
            analysis.saturation_load)

    def test_analyze_rejects_mixed_patterns_and_empty(self):
        with pytest.raises(ValueError):
            analyze_load_sweep([_load_run(0.1, 1.0, pattern="uniform"),
                                _load_run(0.2, 1.0, pattern="neighbor")])
        with pytest.raises(ValueError):
            analyze_load_sweep([{"params": {}, "result": {}}])

    def test_load_sweep_table_mentions_saturation(self):
        runs = [_load_run(0.1, 100.0), _load_run(0.9, 500.0, accepted=0.6)]
        text = load_sweep_table(runs, title="sweep")
        assert "sweep" in text
        assert "saturation at offered load" in text
        flat = load_sweep_table([_load_run(0.1, 100.0)])
        assert "no saturation" in flat


class TestSaturationEdgeCases:
    """Degenerate curves the closed-loop comparison relies on."""

    def test_flat_curve_never_returns_spurious_crossing(self):
        # Long flat curves with small jitter must stay None, including
        # when every latency equals the zero-load latency exactly.
        loads = [0.05 * i for i in range(1, 11)]
        assert detect_saturation(loads, [100.0] * 10) is None
        jitter = [100.0, 101.0, 99.5, 100.2, 100.0,
                  99.8, 100.4, 100.1, 99.9, 100.3]
        assert detect_saturation(loads, jitter) is None
        # Exactly at the threshold is "not yet diverged" (strict cross).
        assert detect_saturation([0.1, 0.9], [100.0, 300.0],
                                 latency_multiple=3.0) is None
        analysis = analyze_load_sweep(
            [_load_run(load, 100.0) for load in loads])
        assert not analysis.saturated
        assert analysis.saturation_load is None

    def test_non_monotone_latency_interpolates_stably(self):
        # A dip just before the knee (measurement noise near saturation)
        # must not break the interpolation: the crossing lands between
        # the bracketing loads and stays deterministic.
        loads = [0.1, 0.3, 0.5, 0.7, 0.9]
        latencies = [100.0, 120.0, 95.0, 110.0, 900.0]
        point = detect_saturation(loads, latencies, latency_multiple=3.0)
        assert point is not None
        assert 0.7 < point < 0.9
        assert point == pytest.approx(
            0.7 + 0.2 * (300.0 - 110.0) / (900.0 - 110.0))
        assert detect_saturation(loads, latencies, 3.0) == point

    def test_non_monotone_dip_below_threshold_after_crossing(self):
        # The first crossing wins even when a later point dips back
        # under the threshold — saturation detection is first-passage,
        # not last-passage.
        loads = [0.1, 0.5, 0.9]
        latencies = [100.0, 400.0, 250.0]
        point = detect_saturation(loads, latencies, latency_multiple=3.0)
        assert point == pytest.approx(0.1 + 0.4 * (300.0 - 100.0) / 300.0)

    def test_single_point_curve(self):
        assert detect_saturation([0.1], [100.0]) is None
        # A single already-diverged point saturates at that load (the
        # zero-load latency is the point itself, so only possible via a
        # threshold below 1x — guarded by validation).
        analysis = analyze_load_sweep([_load_run(0.1, 100.0)])
        assert analysis.zero_load_latency_ns == 100.0
        assert not analysis.saturated


def _window_run(window, accepted, latency, pattern="uniform",
                routing="randomized-minimal"):
    return {
        "params": {"window": window},
        "result": {
            "window": window,
            "pattern": pattern,
            "routing": routing,
            "accepted_load": accepted,
            "transactions": {"latency_ns": {"mean": latency}},
        },
    }


class TestClosedLoopAnalysis:
    def test_detect_knee_finds_plateau_start(self):
        windows = [1, 2, 4, 8, 16]
        throughputs = [0.1, 0.19, 0.28, 0.31, 0.31]
        # Threshold 0.95 x 0.31 = 0.2945: window 4 (0.28) misses it,
        # window 8 reaches the plateau.
        assert detect_knee(windows, throughputs) == 8
        # A looser fraction moves the knee earlier.
        assert detect_knee(windows, throughputs, knee_fraction=0.9) == 4

    def test_detect_knee_degenerate_curves(self):
        # Flat curve (already saturated at window 1): knee at the start.
        assert detect_knee([1, 2, 4], [0.3, 0.3, 0.3]) == 1
        # All-zero curve must not crash or pick a spurious knee.
        assert detect_knee([1, 2, 4], [0.0, 0.0, 0.0]) == 1
        # Still rising at the end: knee at the largest swept window.
        assert detect_knee([1, 2, 4], [0.1, 0.2, 0.4]) == 4

    def test_detect_knee_validation(self):
        with pytest.raises(ValueError):
            detect_knee([], [])
        with pytest.raises(ValueError):
            detect_knee([2, 1], [0.1, 0.2])
        with pytest.raises(ValueError):
            detect_knee([1, 2], [0.1])
        with pytest.raises(ValueError):
            detect_knee([1, 2], [0.1, 0.2], knee_fraction=0.0)

    def test_analyze_window_sweep_sorts_and_rejects_mixes(self):
        runs = [_window_run(8, 0.30, 300.0),
                _window_run(1, 0.10, 60.0),
                _window_run(4, 0.29, 150.0)]
        analysis = analyze_window_sweep(runs)
        assert [p[0] for p in analysis.points] == [1, 4, 8]
        assert analysis.knee_window == 4
        assert analysis.plateau_accepted_load == pytest.approx(0.30)
        assert analysis.latency_at_knee_ns == pytest.approx(150.0)
        assert analysis.to_dict()["knee_window"] == 4
        with pytest.raises(ValueError):
            analyze_window_sweep([_window_run(1, 0.1, 60.0),
                                  _window_run(2, 0.1, 60.0,
                                              routing="valiant")])
        with pytest.raises(ValueError):
            analyze_window_sweep([{"params": {}, "result": {}}])

    def test_window_sweep_table_mentions_knee(self):
        runs = [_window_run(1, 0.1, 60.0), _window_run(4, 0.3, 150.0)]
        text = window_sweep_table(runs, title="sweep")
        assert "sweep" in text
        assert "knee at window" in text
        both = window_sweep_tables(
            runs + [_window_run(1, 0.08, 70.0, routing="valiant")])
        assert "uniform/randomized-minimal" in both
        assert "uniform/valiant" in both

    def test_closed_vs_open_table(self):
        window_analysis = analyze_window_sweep(
            [_window_run(1, 0.1, 110.0), _window_run(8, 0.55, 400.0)])
        open_runs = [_load_run(0.1, 100.0),
                     _load_run(0.6, 150.0, accepted=0.6),
                     _load_run(0.9, 900.0, accepted=0.6)]
        for run in open_runs:
            run["result"]["routing"] = "randomized-minimal"
        open_analysis = analyze_load_sweep(open_runs)
        text = closed_vs_open_table(window_analysis, open_analysis)
        assert "closed-loop plateau 0.550" in text
        assert "0.92x" in text  # 0.55 / 0.6
        # Mismatched curves are refused.
        other = analyze_window_sweep([_window_run(1, 0.1, 60.0,
                                                  pattern="tornado")])
        with pytest.raises(ValueError):
            closed_vs_open_table(other, open_analysis)

    def test_phase_loop_table(self):
        runs = [
            {"result": {"pattern": "halo", "routing": "valiant",
                        "window": 4, "messages_per_node": 12,
                        "iterations": [{}, {}],
                        "mean_iteration_ns": 900.0,
                        "mean_fence_wait_fraction": 0.4}},
            {"result": {"pattern": "halo", "routing": "fixed-xyz",
                        "window": 4, "messages_per_node": 12,
                        "iterations": [{}, {}],
                        "mean_iteration_ns": 1200.0,
                        "mean_fence_wait_fraction": 0.5}},
        ]
        text = phase_loop_table(runs, title="phase-loop-halo")
        assert "phase-loop-halo" in text
        assert text.index("fixed-xyz") < text.index("valiant")  # sorted
        with pytest.raises(ValueError):
            phase_loop_table([{"result": {}}])


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(("x", "yy"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("x")

    def test_comparison(self):
        c = Comparison("latency", measured=55.0, published=55.9, unit="ns")
        assert c.ratio == pytest.approx(55.0 / 55.9)
        text = comparison_table([c], title="Fig 5")
        assert "Fig 5" in text and "latency" in text

    def test_within_band(self):
        assert within_band(0.35, (0.32, 0.40))
        assert not within_band(0.5, (0.32, 0.40))
        assert within_band(0.42, (0.32, 0.40), slack=0.05)
