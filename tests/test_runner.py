"""Tests for the parallel experiment runner (repro.runner).

Covers grid expansion, seed derivation, cache hit/miss behavior,
deterministic results under ``--jobs 1`` vs ``--jobs 4``, and CLI
argument parsing / end-to-end invocation.
"""

import json

import pytest

from repro.engine import derive_seed
from repro.runner import (
    Experiment,
    ParameterGrid,
    ResultCache,
    Sweep,
    canonical_json,
    config_digest,
    get_experiment,
    list_experiments,
    run_experiment,
    run_sweep,
)
from repro.runner.cli import build_parser, main

# A tiny fig5 grid: two real flit-level runs, each well under a second.
TINY_GRID = ParameterGrid(
    {
        "dims": [(2, 2, 2)],
        "chip_cols": 6,
        "chip_rows": 6,
        "machine_seed": 42,
        "harness_seed": 17,
        "max_hops": 1,
        "samples_per_hop": [1, 2],
    }
)
TINY_SWEEP = Sweep("fig5_latency", TINY_GRID, label="tiny")


# ---------------------------------------------------------------------------
# Grid expansion.
# ---------------------------------------------------------------------------


class TestParameterGrid:
    def test_cross_product_order(self):
        grid = ParameterGrid({"b": [1, 2], "a": ["x", "y"]})
        assert list(grid) == [
            {"a": "x", "b": 1},
            {"a": "x", "b": 2},
            {"a": "y", "b": 1},
            {"a": "y", "b": 2},
        ]
        assert len(grid) == 4

    def test_scalars_and_tuples_are_single_values(self):
        grid = ParameterGrid({"dims": (4, 4, 8), "seed": 3})
        assert list(grid) == [{"dims": (4, 4, 8), "seed": 3}]

    def test_list_of_tuples_is_an_axis(self):
        grid = ParameterGrid({"dims": [(2, 2, 2), (4, 4, 8)]})
        assert len(grid) == 2

    def test_union_of_grids(self):
        grid = ParameterGrid([{"a": [1, 2]}, {"b": 3}])
        assert list(grid) == [{"a": 1}, {"a": 2}, {"b": 3}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})

    def test_expansion_is_repeatable(self):
        grid = ParameterGrid({"a": [2, 1], "b": [True, False]})
        assert list(grid) == list(grid)


# ---------------------------------------------------------------------------
# Seed derivation (engine plumbing for parallel runs).
# ---------------------------------------------------------------------------


class TestSeeding:
    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(42, "machine") == derive_seed(42, "machine")
        assert derive_seed(42, "machine") != derive_seed(42, "harness")
        assert derive_seed(42, "machine") != derive_seed(43, "machine")

    def test_derive_seed_handles_structured_paths(self):
        # Coordinates and mixed labels derive stable, bounded seeds.
        seed = derive_seed(9, (0, 1, 2))
        assert seed == derive_seed(9, (0, 1, 2))
        assert 0 <= seed < 2**31

    def test_machines_with_equal_seeds_are_identical(self):
        from repro.netsim.surface import measure_latency_curve

        kwargs = dict(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                      max_hops=1, samples_per_hop=2)
        assert measure_latency_curve(**kwargs) == measure_latency_curve(**kwargs)


# ---------------------------------------------------------------------------
# Content addressing and the result cache.
# ---------------------------------------------------------------------------


class TestCache:
    def test_digest_ignores_key_order_and_tuple_vs_list(self):
        a = config_digest("e", {"x": 1, "dims": (2, 2, 2)})
        b = config_digest("e", {"dims": [2, 2, 2], "x": 1})
        assert a == b
        assert config_digest("e", {"x": 2}) != a
        assert config_digest("other", {"x": 1}) != config_digest("e", {"x": 1})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": (1,), "a": 2}) == '{"a":2,"b":[1]}'

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        params = {"n": 1}
        assert cache.get("exp", params) is None
        cache.put("exp", params, {"value": 3.5}, elapsed_s=0.1)
        entry = cache.get("exp", params)
        assert entry["result"] == {"value": 3.5}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_version_busts_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("exp", {"n": 1}, {"v": 1}, version=1)
        assert cache.get("exp", {"n": 1}, version=2) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("exp", {"n": 1}, {"v": 1})
        path.write_text("not json", encoding="utf-8")
        assert cache.get("exp", {"n": 1}) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("exp", {"n": 1}, {"v": 1})
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_interleaved_writers_never_tear_an_entry(self, tmp_path,
                                                     monkeypatch):
        # Two processes finishing the same config race their writes to
        # one digest path.  The tmp+rename protocol must leave a valid
        # entry (one writer's complete payload, never a byte mix) and
        # no stray tmp files.  Simulate the worst interleaving: writer B
        # completes an entire put between A's tmp write and A's rename.
        import os

        import repro.runner.cache as cache_mod

        root = tmp_path / "shared"
        writer_a = ResultCache(root)
        writer_b = ResultCache(root)
        params = {"n": 1}
        real_replace = os.replace

        def interleaving_replace(src, dst):
            monkeypatch.setattr(cache_mod.os, "replace", real_replace)
            writer_b.put("exp", params, {"winner": "b"})
            real_replace(src, dst)

        monkeypatch.setattr(cache_mod.os, "replace", interleaving_replace)
        path = writer_a.put("exp", params, {"winner": "a"})
        # The last rename wins wholesale; the file is valid JSON.
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["result"] == {"winner": "a"}
        assert writer_b.get("exp", params)["result"] == {"winner": "a"}
        assert not list(root.rglob("*.tmp"))
        assert len(writer_a) == 1


# ---------------------------------------------------------------------------
# The registry and sweep execution.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_experiments_registered(self):
        names = {exp.name for exp in list_experiments()}
        assert {"fig5_latency", "fig9_water", "fig11_fence"} <= names

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(KeyError, match="fig5_latency"):
            get_experiment("nope")

    def test_run_experiment_inline(self):
        result = run_experiment(
            "fig11_fence",
            {"dims": (2, 2, 2), "chip_cols": 6, "chip_rows": 6, "max_hops": 0},
        )
        assert result["num_nodes"] == 8
        assert set(result["latencies"]) == {"0"}


class TestRunSweep:
    def test_cache_hit_miss_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_sweep(TINY_SWEEP, jobs=1, cache=cache)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        second = run_sweep(TINY_SWEEP, jobs=1, cache=cache)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        assert [r.result for r in second.runs] == [r.result for r in first.runs]

    def test_jobs_1_and_jobs_4_are_byte_identical(self, tmp_path):
        serial = run_sweep(TINY_SWEEP, jobs=1, cache=ResultCache(tmp_path / "s"))
        parallel = run_sweep(TINY_SWEEP, jobs=4, cache=ResultCache(tmp_path / "p"))
        assert canonical_json(serial.record()) == canonical_json(parallel.record())

    def test_uncached_execution(self):
        sweep = Sweep(
            "fig11_fence",
            ParameterGrid(
                {"dims": [(2, 2, 2)], "chip_cols": 6, "chip_rows": 6, "max_hops": 0}
            ),
        )
        result = run_sweep(sweep, jobs=1, cache=None)
        assert result.cache_misses == 1
        assert result.runs[0].elapsed_s > 0

    def test_grid_defaults_to_experiment_grid(self):
        experiment = get_experiment("fig5_latency")
        result_grid = list(Sweep("fig5_latency").grid or experiment.grid)
        assert result_grid == list(experiment.grid)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(TINY_SWEEP, jobs=0)

    def test_task_is_self_contained_for_workers(self):
        # Tasks carry the Experiment itself, so a worker needs no
        # registry state (safe under fork and spawn alike).
        import pickle

        from repro.runner.execute import _execute_task

        experiment = get_experiment("fig11_fence")
        params = {"dims": [2, 2, 2], "chip_cols": 6, "chip_rows": 6,
                  "max_hops": 0}
        task = pickle.loads(pickle.dumps((experiment, params, None, None)))
        result, elapsed, artifacts = _execute_task(task)
        assert result["num_nodes"] == 8
        assert elapsed > 0
        assert artifacts is None

    def test_custom_registered_experiment(self, tmp_path):
        # Registration is additive.  With jobs > 1 the experiment is
        # pickled into the task, so fn must then be module-level.
        from repro.runner import register

        experiment = Experiment(
            name="test_echo",
            fn=lambda **params: {"echo": params},
            grid=ParameterGrid({"x": [1, 2]}),
        )
        try:
            register(experiment)
            result = run_sweep(Sweep("test_echo"), jobs=1)
            assert [r.result for r in result.runs] == [
                {"echo": {"x": 1}},
                {"echo": {"x": 2}},
            ]
        finally:
            from repro.runner.experiment import _REGISTRY

            _REGISTRY.pop("test_echo", None)


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


class TestCli:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.jobs == 1
        assert args.sweeps == []
        assert not args.smoke

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "fig5", "--smoke", "--jobs", "2", "--cache-dir", "/tmp/x",
             "--format", "csv", "--output", "out.csv"]
        )
        assert args.sweeps == ["fig5"]
        assert args.smoke and args.jobs == 2
        assert args.cache_dir == "/tmp/x"
        assert (args.format, args.output) == ("csv", "out.csv")

    def test_run_set_parsing(self):
        args = build_parser().parse_args(
            ["run", "fig11_fence", "--set", "max_hops=2", "--set", "dims=[2,2,2]"]
        )
        assert args.experiment == "fig11_fence"
        assert args.assignments == ["max_hops=2", "dims=[2,2,2]"]

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_end_to_end_run_and_report(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        output = tmp_path / "out.json"
        code = main(
            ["run", "fig11_fence",
             "--set", "dims=[2,2,2]", "--set", "chip_cols=6",
             "--set", "chip_rows=6", "--set", "max_hops=1",
             "--cache-dir", str(cache_dir), "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text(encoding="utf-8"))
        (sweep,) = payload["sweeps"]
        assert sweep["experiment"] == "fig11_fence"
        assert set(sweep["runs"][0]["result"]["latencies"]) == {"0", "1"}
        capsys.readouterr()

        assert main(["report", "--input", str(output)]) == 0
        table = capsys.readouterr().out
        assert "latencies" in table and "run-fig11_fence" in table

    def test_report_grouped_percentiles(self, tmp_path, capsys):
        output = tmp_path / "out.json"
        payload = {
            "sweeps": [
                {
                    "label": "demo",
                    "experiment": "fig5_latency",
                    "runs": [
                        {"params": {"hops": h}, "result": {"ns": 10.0 * h + d}}
                        for h in (1, 2)
                        for d in (0.0, 2.0)
                    ],
                }
            ]
        }
        output.write_text(json.dumps(payload), encoding="utf-8")
        code = main(
            ["report", "--input", str(output), "--percentiles", "hops:ns"]
        )
        assert code == 0
        table = capsys.readouterr().out
        assert "demo" in table and "p99" in table and "hops" in table
        capsys.readouterr()

        assert main(["report", "--input", str(output), "--percentiles", "bad"]) == 2
        assert "BY:VALUE" in capsys.readouterr().err

        code = main(
            ["report", "--input", str(output), "--percentiles", "hops:ns",
             "--format", "csv"]
        )
        assert code == 2
        assert "--format csv" in capsys.readouterr().err

    def test_csv_output(self, tmp_path, capsys):
        code = main(
            ["run", "fig11_fence",
             "--set", "dims=[2,2,2]", "--set", "chip_cols=6",
             "--set", "chip_rows=6", "--set", "max_hops=0",
             "--no-cache", "--format", "csv"]
        )
        assert code == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert "latencies.0" in header and "num_nodes" in header


# ---------------------------------------------------------------------------
# Routing ablations, --set validation, and report --plot.
# ---------------------------------------------------------------------------


class TestRouteAblation:
    def test_sweeps_registered_per_policy(self):
        from repro.routing import POLICY_NAMES
        from repro.runner.experiments import BUILTIN_SWEEPS, ROUTE_ABLATIONS

        for policy in POLICY_NAMES:
            name = f"route-ablation-{policy}"
            assert name in ROUTE_ABLATIONS
            assert name in BUILTIN_SWEEPS
            sweep = BUILTIN_SWEEPS[name]
            assert sweep.experiment == "route_ablation"
            assert all(p["routing"] == policy for p in sweep.grid)

    def test_grids_cover_the_adversarial_patterns(self):
        from repro.runner.experiments import (
            ROUTE_ABLATION_PATTERNS,
            ROUTE_ABLATIONS,
        )

        sweep = ROUTE_ABLATIONS["route-ablation-valiant"]
        patterns = {p["pattern"] for p in sweep.grid}
        assert patterns == set(ROUTE_ABLATION_PATTERNS)
        # Tornado rides its own ring-shaped torus; the rest share one.
        for params in sweep.grid:
            if params["pattern"] == "tornado":
                assert params["dims"][0] >= 3
            else:
                assert params["dims"] == (2, 2, 2)

    def test_smoke_grid_runs_and_caches(self, tmp_path):
        from repro.runner.experiments import ROUTE_ABLATION_SMOKE_GRID

        sweep = Sweep("route_ablation", ROUTE_ABLATION_SMOKE_GRID,
                      label="ablation-smoke")
        cache = ResultCache(tmp_path)
        serial = run_sweep(sweep, jobs=1, cache=cache)
        assert serial.cache_misses == len(ROUTE_ABLATION_SMOKE_GRID)
        parallel = run_sweep(sweep, jobs=2, cache=cache)
        assert parallel.cache_hits == len(ROUTE_ABLATION_SMOKE_GRID)
        assert json.dumps([r.record() for r in serial.runs]) == json.dumps(
            [r.record() for r in parallel.runs]
        )
        routings = {r.record()["result"]["routing"] for r in serial.runs}
        assert routings == {"randomized-minimal", "valiant",
                            "adaptive-escape"}


class TestSetValidation:
    def test_unknown_set_key_rejected(self, capsys):
        code = main(
            ["run", "load_sweep", "--set", "offered_loud=0.2", "--no-cache"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "offered_loud" in err and "accepted:" in err

    def test_known_keys_accepted(self):
        experiment = get_experiment("route_ablation")
        experiment.validate_params({"routing": "valiant", "offered_load": 0.1})

    def test_experiments_without_declared_params_skip_validation(self):
        experiment = Experiment(
            name="anything", fn=lambda **kw: {}, grid=ParameterGrid({})
        )
        experiment.validate_params({"whatever": 1})


class TestReportPlot:
    @staticmethod
    def _payload(tmp_path):
        runs = []
        for routing, base in (("minimal", 100.0), ("valiant", 160.0)):
            for load in (0.1, 0.4, 0.8):
                runs.append(
                    {
                        "params": {"offered_load": load, "routing": routing},
                        "result": {
                            "routing": routing,
                            "classes": {
                                "request": {
                                    "latency_ns": {"mean": base + 900 * load}
                                }
                            },
                        },
                    }
                )
        payload = {
            "sweeps": [{"label": "demo", "experiment": "route_ablation",
                        "runs": runs}]
        }
        path = tmp_path / "out.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_plot_renders_to_stderr(self, tmp_path, capsys):
        path = self._payload(tmp_path)
        code = main(
            ["report", "--input", str(path),
             "--plot", "offered_load:classes.request.latency_ns.mean"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "demo" in captured.out  # the table still goes to stdout
        chart = captured.err
        assert "offered_load" in chart
        assert "classes.request.latency_ns.mean" in chart
        assert "*" in chart

    def test_plot_by_splits_series(self, tmp_path, capsys):
        path = self._payload(tmp_path)
        code = main(
            ["report", "--input", str(path),
             "--plot", "offered_load:classes.request.latency_ns.mean",
             "--plot-by", "routing"]
        )
        assert code == 0
        chart = capsys.readouterr().err
        assert "* minimal" in chart and "o valiant" in chart

    def test_malformed_plot_spec_errors(self, tmp_path, capsys):
        path = self._payload(tmp_path)
        assert main(["report", "--input", str(path), "--plot", "bad"]) == 2
        assert "X:Y" in capsys.readouterr().err

    def test_missing_columns_report_no_points(self, tmp_path, capsys):
        path = self._payload(tmp_path)
        code = main(
            ["report", "--input", str(path), "--plot", "nope:missing"]
        )
        assert code == 0
        assert "no plottable points" in capsys.readouterr().err

    def test_plot_by_single_group_still_renders_legend(self, tmp_path,
                                                       capsys):
        # Grouping that collapses to one series must keep its legend
        # line: the reader asked for series labels with --plot-by.
        runs = [
            {
                "params": {"offered_load": load, "routing": "minimal"},
                "result": {"lat": 100.0 + 900 * load},
            }
            for load in (0.1, 0.4, 0.8)
        ]
        payload = {"sweeps": [{"label": "solo", "runs": runs}]}
        path = tmp_path / "solo.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        code = main(
            ["report", "--input", str(path),
             "--plot", "offered_load:lat", "--plot-by", "routing"]
        )
        assert code == 0
        assert "* minimal" in capsys.readouterr().err

    def test_force_legend_labels_a_single_unnamed_series(self):
        # The silently-omitted case: one series whose group label is
        # empty (e.g. --plot-by over a key that stringifies empty).
        from repro.analysis.plot import ascii_chart

        series = {"": [(0.1, 1.0), (0.4, 2.0)]}
        without = ascii_chart(series, width=16, height=4)
        forced = ascii_chart(series, width=16, height=4, force_legend=True)
        assert "* (all)" not in without
        assert "* (all)" in forced


# ---------------------------------------------------------------------------
# The auto-generated experiment catalog (list --markdown).
# ---------------------------------------------------------------------------


class TestExperimentCatalog:
    def test_catalog_covers_every_experiment_and_sweep(self):
        from repro.runner.catalog import catalog_markdown
        from repro.runner.experiments import BUILTIN_SWEEPS

        doc = catalog_markdown()
        for experiment in list_experiments():
            assert f"### `{experiment.name}` (v{experiment.version})" in doc
            if experiment.surface:
                assert f"`{experiment.surface}`" in doc
        for name in BUILTIN_SWEEPS:
            assert f"| `{name}` |" in doc

    def test_catalog_is_deterministic(self):
        from repro.runner.catalog import catalog_markdown

        assert catalog_markdown() == catalog_markdown()

    def test_declared_surfaces_resolve_to_callables(self):
        # The catalog documents Experiment.surface verbatim; make sure
        # every declared dotted path actually imports, so the committed
        # docs can never point readers at a nonexistent function.
        for experiment in list_experiments():
            if not experiment.surface:
                continue
            assert callable(experiment.surface.resolve()), \
                experiment.surface_name

    def test_catalog_marks_union_grid_swept_axes(self):
        # The route-ablation union grids sweep pattern/dims across their
        # members; the catalog must report them as swept, not constants.
        from repro.runner.catalog import catalog_markdown

        doc = catalog_markdown()
        line = next(
            row for row in doc.splitlines()
            if row.startswith("| `route-ablation-valiant` |")
        )
        assert "`pattern`" in line and "`offered_load`" in line

    def test_cli_list_markdown_emits_the_catalog(self, capsys):
        from repro.runner.catalog import catalog_markdown

        assert main(["list", "--markdown"]) == 0
        assert capsys.readouterr().out == catalog_markdown()

    def test_cli_plain_list_unchanged(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "experiments:" in out and "sweeps:" in out
        assert "route-ablation-adaptive-escape" in out

    def test_committed_catalog_is_fresh(self):
        # The doc-freshness gate, enforced in-tree as well as in CI: the
        # committed docs/experiments.md must match the registry.
        from pathlib import Path

        from repro.runner.catalog import catalog_markdown

        committed = Path(__file__).resolve().parent.parent / "docs" / \
            "experiments.md"
        assert committed.is_file(), "docs/experiments.md is missing"
        assert committed.read_text(encoding="utf-8") == catalog_markdown(), (
            "docs/experiments.md is stale; regenerate with "
            "`repro-runner list --markdown > docs/experiments.md`"
        )


# ---------------------------------------------------------------------------
# Run surfaces: the registry and the Experiment fallback.
# ---------------------------------------------------------------------------


class TestRunSurfaces:
    def test_builtin_surfaces_registered_and_resolvable(self):
        from repro.runner import get_surface, list_surfaces

        names = [surface.name for surface in list_surfaces()]
        assert names == sorted(names)
        assert "repro.traffic.surface.measure_load_point" in names
        assert "repro.faults.surface.measure_fault_load_point" in names
        surface = get_surface("repro.traffic.surface.measure_load_point")
        assert callable(surface.resolve())
        assert str(surface) == surface.name

    def test_unknown_surface_lists_known(self):
        from repro.runner import get_surface

        with pytest.raises(KeyError, match="measure_load_point"):
            get_surface("nope.nothing")

    def test_surface_rejects_undeclared_params(self):
        from repro.runner import get_surface

        surface = get_surface("repro.fence.surface.measure_fence_curve")
        with pytest.raises(ValueError, match="max_hopss"):
            surface({"max_hopss": 2})

    def test_surface_call_runs_the_function(self):
        from repro.runner import get_surface

        surface = get_surface("repro.fence.surface.measure_fence_curve")
        result = surface({"dims": (2, 2, 2), "chip_cols": 6, "chip_rows": 6,
                          "max_hops": 0})
        assert result["num_nodes"] == 8

    def test_experiment_inherits_surface_param_names(self):
        experiment = get_experiment("load_sweep")
        assert experiment.fn is None
        assert "offered_load" in experiment.param_names
        assert experiment.surface_name == \
            "repro.traffic.surface.measure_load_point"

    def test_experiment_requires_fn_or_callable_surface(self):
        with pytest.raises(TypeError, match="fn= or a callable"):
            Experiment(name="bare", grid=ParameterGrid({}),
                       surface="dotted.path.only")
        with pytest.raises(TypeError, match="grid"):
            Experiment(name="gridless", fn=lambda **kw: {})

    def test_duplicate_surface_registration_rejected(self):
        from repro.runner import RunSurface, get_surface, register_surface

        existing = get_surface("repro.fence.surface.measure_fence_curve")
        with pytest.raises(ValueError, match="already registered"):
            register_surface(RunSurface(existing.name, ("x",)))
        assert register_surface(existing, replace=True) is existing


# ---------------------------------------------------------------------------
# Fault sweeps: degraded-mode experiments and their smoke grids.
# ---------------------------------------------------------------------------


class TestFaultSweeps:
    def test_sweeps_registered_per_policy(self):
        from repro.runner.experiments import (
            BUILTIN_SWEEPS,
            FAULT_PHASE_LOOP_SWEEPS,
            FAULT_SWEEP_POLICIES,
            FAULT_SWEEPS,
        )

        for policy in FAULT_SWEEP_POLICIES:
            name = f"fault-sweep-{policy}"
            assert name in FAULT_SWEEPS and name in BUILTIN_SWEEPS
            sweep = BUILTIN_SWEEPS[name]
            assert sweep.experiment == "fault_sweep"
            assert all(p["routing"] == policy for p in sweep.grid)
            assert any(p["num_faults"] > 0 for p in sweep.grid)
            loop = BUILTIN_SWEEPS[f"fault-phase-loop-{policy}"]
            assert loop.experiment == "fault_phase_loop"
        assert "fault-sweep-adaptive-escape" in BUILTIN_SWEEPS
        assert "fault-sweep-fixed-xyz" in BUILTIN_SWEEPS

    def test_zero_fault_grid_point_is_the_healthy_baseline(self):
        from repro.runner.experiments import FAULT_SWEEPS

        grid = FAULT_SWEEPS["fault-sweep-adaptive-escape"].grid
        assert any(p["num_faults"] == 0 for p in grid)

    def test_smoke_grid_runs_and_caches(self, tmp_path):
        from repro.runner.experiments import FAULT_SWEEP_SMOKE_GRID

        sweep = Sweep("fault_sweep", FAULT_SWEEP_SMOKE_GRID,
                      label="fault-smoke")
        cache = ResultCache(tmp_path)
        serial = run_sweep(sweep, jobs=1, cache=cache)
        assert serial.cache_misses == len(FAULT_SWEEP_SMOKE_GRID)
        parallel = run_sweep(sweep, jobs=2, cache=cache)
        assert parallel.cache_hits == len(FAULT_SWEEP_SMOKE_GRID)
        assert json.dumps([r.record() for r in serial.runs]) == json.dumps(
            [r.record() for r in parallel.runs]
        )
        for run in serial.runs:
            faults = run.result["faults"]
            assert len(faults) == run.params["num_faults"]
            assert run.result["accepted_load"] > 0

    def test_fault_phase_loop_smoke_grid_runs(self, tmp_path):
        from repro.runner.experiments import FAULT_PHASE_LOOP_SMOKE_GRID

        sweep = Sweep("fault_phase_loop", FAULT_PHASE_LOOP_SMOKE_GRID,
                      label="fault-phase-smoke")
        result = run_sweep(sweep, jobs=2, cache=ResultCache(tmp_path))
        for run in result.runs:
            assert run.result["mean_iteration_ns"] > 0
            assert len(run.result["faults"]) == run.params["num_faults"]


# ---------------------------------------------------------------------------
# Cache maintenance: stats and prune.
# ---------------------------------------------------------------------------


class TestCacheMaintenance:
    def _seeded_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("fig11_fence", {"a": 1}, {"r": 1}, version=1)
        cache.put("fig11_fence", {"a": 2}, {"r": 2}, version=1)
        cache.put("fig5_latency", {"b": 1}, {"r": 3}, version=99)  # stale
        cache.put("gone_experiment", {"c": 1}, {"r": 4}, version=1)
        return cache

    def test_stats_by_config_counts_entries_and_bytes(self, tmp_path):
        cache = self._seeded_cache(tmp_path)
        stats = cache.stats_by_config()
        assert stats[("fig11_fence", 1)]["entries"] == 2
        assert stats[("fig5_latency", 99)]["entries"] == 1
        assert all(bucket["bytes"] > 0 for bucket in stats.values())

    def test_stats_groups_corrupt_entries(self, tmp_path):
        cache = self._seeded_cache(tmp_path)
        path = cache.put("fig11_fence", {"a": 3}, {"r": 5}, version=1)
        path.write_text("not json", encoding="utf-8")
        stats = cache.stats_by_config()
        assert stats[("<corrupt>", 0)]["entries"] == 1

    def test_prune_removes_unregistered_and_stale_versions(self, tmp_path):
        cache = self._seeded_cache(tmp_path)
        registered = {"fig11_fence": 1, "fig5_latency": 2}
        outcome = cache.prune(registered)
        assert outcome["removed"] == 2  # stale fig5 v99 + gone_experiment
        assert outcome["kept"] == 2
        assert outcome["freed_bytes"] > 0
        # The surviving entries are still servable.
        assert cache.get("fig11_fence", {"a": 1}, version=1) is not None
        assert cache.get("fig5_latency", {"b": 1}, version=99) is None

    def test_prune_keeps_only_the_bumped_version_mid_directory(
            self, tmp_path):
        # The adaptive-escape PR bumps experiment versions while their
        # old entries still sit in the same cache directory: prune must
        # remove exactly the old-version entries and keep the new.
        cache = ResultCache(tmp_path / "cache")
        for load in (0.1, 0.4, 0.8):
            cache.put("route_ablation", {"offered_load": load},
                      {"r": load}, version=1)
        cache.put("route_ablation", {"offered_load": 0.1},
                  {"r": 0.1, "routing": "adaptive-escape"}, version=2)
        cache.put("route_ablation", {"offered_load": 0.4},
                  {"r": 0.4, "routing": "adaptive-escape"}, version=2)
        outcome = cache.prune({"route_ablation": 2})
        assert outcome == {
            "removed": 3,
            "kept": 2,
            "freed_bytes": outcome["freed_bytes"],
            "artifacts_removed": 0,
            "artifacts_freed_bytes": 0,
        }
        assert outcome["freed_bytes"] > 0
        for load in (0.1, 0.4, 0.8):
            assert cache.get("route_ablation", {"offered_load": load},
                             version=1) is None
        assert cache.get("route_ablation", {"offered_load": 0.1},
                         version=2) is not None
        assert cache.get("route_ablation", {"offered_load": 0.4},
                         version=2) is not None

    def test_cli_cache_stats_and_prune(self, tmp_path, capsys):
        cache = self._seeded_cache(tmp_path)
        root = str(cache.root)
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "gone_experiment" in out and "unregistered" in out
        assert "stale" in out and "total: 4 entries" in out

        assert main(["cache", "prune", "--dry-run", "--cache-dir", root]) == 0
        assert "would remove 2 entries" in capsys.readouterr().out
        assert len(cache) == 4  # dry run deletes nothing

        assert main(["cache", "prune", "--cache-dir", root]) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert len(cache) == 2
        # fig11_fence v1 matches the registered experiment and survives.
        assert cache.get("fig11_fence", {"a": 1}, version=1) is not None

    def test_cli_cache_missing_dir_fails_cleanly(self, tmp_path, capsys):
        code = main(["cache", "stats", "--cache-dir",
                     str(tmp_path / "nope")])
        assert code == 2
        assert "no cache" in capsys.readouterr().err

    def test_cli_cache_stats_rejects_dry_run(self, tmp_path, capsys):
        cache = self._seeded_cache(tmp_path)
        code = main(["cache", "stats", "--dry-run", "--cache-dir",
                     str(cache.root)])
        assert code == 2
        assert "--dry-run only applies to prune" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Closed-loop workload sweeps.
# ---------------------------------------------------------------------------


class TestClosedLoopSweeps:
    def test_sweeps_registered_per_pattern(self):
        from repro.runner.experiments import (
            BUILTIN_SWEEPS,
            CLOSED_LOOP_PATTERNS,
            CLOSED_LOOP_SWEEPS,
            PHASE_LOOP_PATTERNS,
            PHASE_LOOP_SWEEPS,
        )

        for pattern in CLOSED_LOOP_PATTERNS:
            name = f"closed-loop-{pattern}"
            assert name in CLOSED_LOOP_SWEEPS and name in BUILTIN_SWEEPS
            sweep = BUILTIN_SWEEPS[name]
            assert sweep.experiment == "closed_loop"
            assert all(p["pattern"] == pattern for p in sweep.grid)
        for pattern in PHASE_LOOP_PATTERNS:
            name = f"phase-loop-{pattern}"
            assert name in PHASE_LOOP_SWEEPS and name in BUILTIN_SWEEPS
            assert BUILTIN_SWEEPS[name].experiment == "phase_loop"

    def test_smoke_grids_run_and_cache(self, tmp_path):
        from repro.runner.experiments import (
            CLOSED_LOOP_SMOKE_GRID,
            PHASE_LOOP_SMOKE_GRID,
        )

        cache = ResultCache(tmp_path)
        window_sweep = Sweep("closed_loop", CLOSED_LOOP_SMOKE_GRID,
                             label="closed-smoke")
        serial = run_sweep(window_sweep, jobs=1, cache=cache)
        parallel = run_sweep(window_sweep, jobs=2, cache=cache)
        assert parallel.cache_hits == len(CLOSED_LOOP_SMOKE_GRID)
        assert json.dumps([r.record() for r in serial.runs]) == json.dumps(
            [r.record() for r in parallel.runs]
        )
        phase_sweep = Sweep("phase_loop", PHASE_LOOP_SMOKE_GRID,
                            label="phase-smoke")
        result = run_sweep(phase_sweep, jobs=2, cache=cache)
        record = result.runs[0].record()["result"]
        assert record["mean_iteration_ns"] > 0
        assert 0 < record["mean_fence_wait_fraction"] < 1

    def test_set_validation_covers_workload_params(self):
        get_experiment("closed_loop").validate_params(
            {"window": 8, "routing": "valiant"})
        get_experiment("phase_loop").validate_params(
            {"messages_per_node": 6, "fence_hops": 2})
        with pytest.raises(ValueError):
            get_experiment("closed_loop").validate_params({"windoww": 8})
