"""Tests for the published machine constants (Table I and Section II)."""

import pytest

from repro.config import (
    ASIC_GENERATIONS,
    DEFAULT_CHIP,
    DEFAULT_MACHINE,
    ChipConfig,
    MachineConfig,
)


class TestTableOne:
    def test_three_generations(self):
        assert set(ASIC_GENERATIONS) == {"anton1", "anton2", "anton3"}

    def test_anton3_column(self):
        a3 = ASIC_GENERATIONS["anton3"]
        assert a3.power_on_year == 2020
        assert a3.process_nm == 7
        assert a3.clock_ghz == 2.80
        assert a3.max_pairwise_gops == 5914.0
        assert a3.num_serdes == 96
        assert a3.serdes_lane_gbps == 29.0
        assert a3.inter_node_bidir_gbs == 696.0

    def test_compute_scaling_24x(self):
        """The paper's motivation: ~24x compute vs 2.1x bandwidth."""
        a2 = ASIC_GENERATIONS["anton2"]
        a3 = ASIC_GENERATIONS["anton3"]
        compute_ratio = a3.max_pairwise_gops / a2.max_pairwise_gops
        bandwidth_ratio = a3.inter_node_bidir_gbs / a2.inter_node_bidir_gbs
        assert compute_ratio == pytest.approx(23.6, abs=0.2)
        assert bandwidth_ratio == pytest.approx(2.07, abs=0.05)


class TestChipConfig:
    def test_tile_counts(self):
        chip = DEFAULT_CHIP
        assert chip.num_core_routers == 288      # 24 x 12 (Table II)
        assert chip.num_edge_routers == 72       # 2 sides x 12 x 3
        assert chip.num_channel_adapters == 24   # Table II
        assert chip.num_row_adapters == 72       # Table II
        assert chip.num_gcs == 576
        assert chip.num_ppims == 576
        assert chip.num_icbs == 48

    def test_cycle_time(self):
        assert DEFAULT_CHIP.cycle_ns == pytest.approx(1 / 2.8)

    def test_edge_vcs_total_five(self):
        # 4 request VCs + 1 response VC (Section III-B2).
        assert DEFAULT_CHIP.edge_vcs == 5

    def test_neighbor_bandwidth(self):
        # 16 lanes x 29 Gb/s = 464 Gb/s per direction per neighbor.
        assert DEFAULT_CHIP.neighbor_bandwidth_gbps == pytest.approx(464.0)

    def test_total_bandwidth_5_6_tbps(self):
        # Section II-B: 96 lanes at 29 Gb/s -> 5.6 Tb/s (bidirectional...
        # counting both directions of each lane).
        chip = DEFAULT_CHIP
        total = chip.serdes_lanes * chip.lane_gbps * 2
        assert total == pytest.approx(5568.0)  # ~5.6 Tb/s

    def test_serialization_time(self):
        chip = DEFAULT_CHIP
        # A 192-bit flit over one 464 Gb/s neighbor channel.
        assert chip.bits_to_channel_ns(192) == pytest.approx(0.4138, abs=1e-3)

    def test_packet_format(self):
        chip = DEFAULT_CHIP
        assert chip.flit_bits == 192
        assert chip.header_bits + chip.payload_bits == chip.flit_bits
        assert chip.max_flits_per_packet == 2
        assert chip.input_queue_flits == 8


class TestMachineConfig:
    def test_default_is_papers_128_node_machine(self):
        assert DEFAULT_MACHINE.dims == (4, 4, 8)
        assert DEFAULT_MACHINE.num_nodes == 128
        assert DEFAULT_MACHINE.diameter_hops == 8  # Fig. 11's global barrier

    def test_512_node_scaling(self):
        machine = DEFAULT_MACHINE.scaled((8, 8, 8))
        assert machine.num_nodes == 512
        assert machine.chip is DEFAULT_MACHINE.chip

    def test_8_node_benchmark_machine(self):
        # Fig. 9 uses a 2x2x2 machine.
        machine = MachineConfig(dims=(2, 2, 2))
        assert machine.num_nodes == 8
        assert machine.diameter_hops == 3
