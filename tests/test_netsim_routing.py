"""End-to-end routing tests on small machines.

These use reduced chips (6x6 tiles) so the full machine builds quickly;
routing logic is identical to the full-size 24x12 configuration.
"""

import pytest

from repro.netsim import CoreAddress, NetworkMachine, PacketKind, TrafficClass
from repro.netsim.packet import Packet


@pytest.fixture(scope="module")
def machine():
    return NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6, seed=7)


def run_write(machine, src_node, src_core, dst_node, dst_core, words=(1, 2, 3, 4),
              quad=5):
    packet = machine.send_counted_write(src_node, src_core, dst_node,
                                        dst_core, quad_addr=quad,
                                        words=words)
    machine.sim.run()
    return packet


class TestIntraNodeDelivery:
    def test_same_tile_gc_to_gc(self, machine):
        src = CoreAddress(2, 3, 0)
        dst = CoreAddress(2, 3, 1)
        packet = run_write(machine, (0, 0, 0), src, (0, 0, 0), dst)
        gc = machine.gc((0, 0, 0), dst)
        assert packet.delivered_ns is not None
        assert gc.sram.read(5) == [1, 2, 3, 4]
        assert gc.sram.counter(5) == 1
        assert packet.torus_hops_taken == 0

    def test_cross_tile_uses_u_then_v(self, machine):
        src = CoreAddress(0, 0, 0)
        dst = CoreAddress(3, 4, 0)
        packet = run_write(machine, (0, 0, 0), src, (0, 0, 0), dst,
                           quad=6)
        # Hop log: all U moves must precede all V moves (U->V DOR).
        core_hops = [h for h in packet.hop_log if h.startswith("core")]
        vs = [h.split(",")[1].split(")")[0] for h in core_hops]
        v_changed = False
        for a, b in zip(vs, vs[1:]):
            if a != b:
                v_changed = True
            elif v_changed:
                pytest.fail(f"U move after V move: {core_hops}")

    def test_intra_node_avoids_edge_network(self, machine):
        packet = run_write(machine, (0, 0, 0), CoreAddress(1, 1, 0),
                           (0, 0, 0), CoreAddress(4, 4, 1), quad=7)
        assert not any("ertr" in h for h in packet.hop_log)
        assert not any("ca" in h for h in packet.hop_log)


class TestInterNodeDelivery:
    def test_neighbor_delivery(self, machine):
        packet = run_write(machine, (0, 0, 0), CoreAddress(0, 2, 0),
                           (1, 0, 0), CoreAddress(5, 1, 1), quad=9)
        gc = machine.gc((1, 0, 0), CoreAddress(5, 1, 1))
        assert gc.sram.read(9) == [1, 2, 3, 4]
        assert packet.torus_hops_taken == 1
        assert any("ertr" in h for h in packet.hop_log)

    def test_multi_hop_counts(self, machine):
        packet = run_write(machine, (0, 0, 0), CoreAddress(0, 0, 0),
                           (1, 1, 1), CoreAddress(0, 0, 0), quad=11)
        assert packet.torus_hops_taken == 3
        assert packet.delivered_ns is not None

    def test_outgoing_travels_u_only_in_core(self, machine):
        """Remote packets cross the core network along U only."""
        packet = run_write(machine, (0, 0, 0), CoreAddress(3, 2, 0),
                           (0, 1, 0), CoreAddress(2, 4, 0), quad=12)
        src_side = []
        for hop in packet.hop_log:
            if hop.startswith("core") and "@n0" in hop:
                src_side.append(hop)
        rows = {h.split(",")[1].split(")")[0] for h in src_side}
        assert len(rows) == 1  # row never changes before the edge

    def test_all_gc_pairs_reachable_between_two_nodes(self, machine):
        for u in range(0, 6, 2):
            for v in range(0, 6, 3):
                src = CoreAddress(u, v, 0)
                dst = CoreAddress(5 - u, 5 - v, 1)
                packet = run_write(machine, (0, 0, 0), src, (1, 1, 0), dst,
                                   quad=u * 8 + v)
                assert packet.delivered_ns is not None


class TestObliviousRouting:
    def test_dimension_orders_vary(self, machine):
        orders = set()
        for __ in range(24):
            packet = machine.make_request(
                PacketKind.COUNTED_WRITE, (0, 0, 0), CoreAddress(0, 0, 0),
                (1, 1, 1), CoreAddress(0, 0, 0))
            orders.add(packet.dim_order)
        assert len(orders) >= 4  # randomized among the six orders

    def test_slices_vary(self, machine):
        slices = {machine.make_request(
            PacketKind.COUNTED_WRITE, (0, 0, 0), CoreAddress(0, 0, 0),
            (1, 0, 0), CoreAddress(0, 0, 0)).slice_index
            for __ in range(16)}
        assert slices == {0, 1}

    def test_deterministic_given_seed(self):
        def run_once():
            m = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                               seed=3)
            p = m.send_counted_write((0, 0, 0), CoreAddress(1, 1, 0),
                                     (1, 1, 0), CoreAddress(2, 2, 0))
            m.sim.run()
            return p.delivered_ns, tuple(p.hop_log)
        assert run_once() == run_once()


class TestEdgeNetworkPolicy:
    def test_through_traffic_uses_outer_column(self):
        """Intra-dimensional through packets only touch column 2 at the
        intermediate node (Figure 4, blue route)."""
        machine = NetworkMachine(dims=(4, 2, 2), chip_cols=6, chip_rows=6,
                                 seed=11)
        # 2 hops along +X: node (1,0,0) is a pure through node.
        packet = machine.send_counted_write(
            (0, 0, 0), CoreAddress(0, 0, 0), (2, 0, 0), CoreAddress(0, 0, 0))
        machine.sim.run()
        mid_id = machine.torus.node_id((1, 0, 0))
        mid_hops = [h for h in packet.hop_log
                    if f"@n{mid_id}" in h and "ertr" in h]
        assert mid_hops, "expected edge-router hops at the through node"
        for hop in mid_hops:
            col = int(hop.split("(")[1].split(",")[0])
            assert col == 2, f"through traffic left the outer column: {hop}"

    def test_turning_traffic_uses_inner_columns(self):
        machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                                 seed=13)
        # Find a packet that turns (X then Y) at the intermediate node.
        for attempt in range(40):
            packet = machine.make_request(
                PacketKind.COUNTED_WRITE, (0, 0, 0), CoreAddress(0, 0, 0),
                (1, 1, 0), CoreAddress(0, 0, 0))
            if packet.dim_order[0] in (0, 1):
                break
        machine.chip((0, 0, 0)).send(packet)
        machine.sim.run()
        assert packet.delivered_ns is not None
        # The turn node saw at least one inner-column hop.
        first_axis = packet.dim_order[0] if packet.dim_order[0] != 2 else None
        mid = (1, 0, 0) if first_axis == 0 else (0, 1, 0)
        mid_id = machine.torus.node_id(mid)
        mid_cols = [int(h.split("(")[1].split(",")[0])
                    for h in packet.hop_log
                    if f"@n{mid_id}" in h and "ertr" in h]
        if mid_cols:  # the packet turned at this node
            assert any(col in (0, 1) for col in mid_cols)


class TestChannelAccounting:
    def test_channel_flits_counted(self):
        machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                                 seed=5)
        before = machine.total_channel_flits()
        machine.send_counted_write((0, 0, 0), CoreAddress(0, 0, 0),
                                   (1, 0, 0), CoreAddress(0, 0, 0))
        machine.sim.run()
        assert machine.total_channel_flits() == before + 1
