"""Tests for spatial decomposition, export regions, and multicast trees."""

import numpy as np
import pytest

from repro.md import Decomposition, multicast_tree, unicast_path, water_box
from repro.topology import Torus3D


@pytest.fixture
def decomp():
    return Decomposition(box=60.0, node_dims=(2, 2, 2))


class TestHomeNodes:
    def test_every_atom_has_a_home(self, decomp):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 60.0, size=(500, 3))
        homes = decomp.home_nodes(pos)
        assert np.all((homes >= 0) & (homes < 8))

    def test_home_matches_geometry(self, decomp):
        pos = np.array([[10.0, 10.0, 10.0],    # node (0,0,0)
                        [40.0, 10.0, 10.0],    # node (1,0,0)
                        [40.0, 40.0, 40.0]])   # node (1,1,1)
        homes = decomp.home_nodes(pos)
        torus = decomp.torus
        assert homes[0] == torus.node_id((0, 0, 0))
        assert homes[1] == torus.node_id((1, 0, 0))
        assert homes[2] == torus.node_id((1, 1, 1))

    def test_boundary_positions_clamped(self, decomp):
        pos = np.array([[60.0, 60.0, 60.0]])  # wraps to origin
        assert decomp.home_nodes(pos)[0] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Decomposition(box=-1.0, node_dims=(2, 2, 2))
        with pytest.raises(ValueError):
            Decomposition(box=10.0, node_dims=(0, 2, 2))


class TestExportRegions:
    def test_interior_atom_not_exported(self, decomp):
        # Dead center of node (0,0,0)'s box, farther than the cutoff from
        # every face.
        pos = np.array([[15.0, 15.0, 15.0]])
        exports = decomp.export_map(pos, cutoff=5.0)
        total = sum(len(v) for v in exports.values())
        assert total == 0

    def test_face_atom_exported_to_neighbor(self, decomp):
        # 1 A from the x=30 face inside node (0,..): node (1,0,0) must
        # import it.
        pos = np.array([[29.0, 15.0, 15.0]])
        exports = decomp.export_map(pos, cutoff=5.0)
        importer = decomp.torus.node_id((1, 0, 0))
        assert 0 in exports[importer]

    def test_corner_atom_exported_widely(self, decomp):
        # Near the corner of its box: all 7 other nodes import it
        # (in a 2x2x2, every node is a face/edge/corner neighbor).
        pos = np.array([[29.5, 29.5, 29.5]])
        exports = decomp.export_map(pos, cutoff=5.0)
        importers = [n for n, atoms in exports.items() if len(atoms)]
        assert len(importers) == 7

    def test_never_exported_to_own_home(self, decomp):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 60.0, size=(400, 3))
        homes = decomp.home_nodes(pos)
        exports = decomp.export_map(pos, cutoff=6.0)
        for node_id, atoms in exports.items():
            assert not np.any(homes[atoms] == node_id)

    def test_periodic_export_across_boundary(self, decomp):
        # Near x=0: node (1,..) imports it through the wraparound.
        pos = np.array([[1.0, 15.0, 15.0]])
        exports = decomp.export_map(pos, cutoff=5.0)
        importer = decomp.torus.node_id((1, 0, 0))
        assert 0 in exports[importer]

    def test_export_completeness_for_interacting_pairs(self):
        """Soundness: for every pair within the cutoff spanning two nodes,
        at least one atom is available on the other's home node."""
        decomp = Decomposition(box=40.0, node_dims=(2, 2, 2))
        system = water_box(600, seed=3)
        pos = system.positions * (40.0 / system.box)
        cutoff = 4.0
        homes = decomp.home_nodes(pos)
        exports = decomp.export_map(pos, cutoff)
        from repro.md.cells import neighbor_pairs
        ii, jj = neighbor_pairs(pos, 40.0, cutoff)
        for a, b in zip(ii, jj):
            if homes[a] == homes[b]:
                continue
            a_at_b = a in exports[homes[b]]
            b_at_a = b in exports[homes[a]]
            assert a_at_b or b_at_a, f"pair ({a},{b}) computable nowhere"


class TestMulticastTrees:
    def test_single_destination_is_a_path(self):
        torus = Torus3D((4, 4, 4))
        tree = multicast_tree(torus, (0, 0, 0), [(2, 0, 0)])
        assert tree == {((0, 0, 0), (1, 0, 0)), ((1, 0, 0), (2, 0, 0))}

    def test_shared_prefix_charged_once(self):
        torus = Torus3D((4, 4, 4))
        tree = multicast_tree(torus, (0, 0, 0), [(2, 0, 0), (2, 1, 0)])
        # Without sharing: 2 + 3 = 5 channels; the two X hops are shared,
        # so the tree has 3.
        assert len(tree) == 3

    def test_empty_destinations(self):
        torus = Torus3D((2, 2, 2))
        assert multicast_tree(torus, (0, 0, 0), []) == set()

    def test_unicast_path_adjacent_channels(self):
        torus = Torus3D((4, 4, 4))
        path = unicast_path(torus, (0, 0, 0), (1, 2, 3))
        assert len(path) == torus.min_hops((0, 0, 0), (1, 2, 3))
        for a, b in path:
            assert torus.min_hops(a, b) == 1
