"""Tests for the on-chip 2D mesh and U->V dimension-order routing."""

import pytest

from repro.topology import Mesh2D


class TestMeshBasics:
    def test_core_network_dimensions(self):
        # The Core Network is a 24x12 mesh (Section II-B).
        mesh = Mesh2D(24, 12)
        assert mesh.dims.num_nodes == 288

    def test_edge_network_dimensions(self):
        # Each Edge Network is 3 columns x 12 rows.
        mesh = Mesh2D(3, 12)
        assert mesh.dims.num_nodes == 36

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 4)

    def test_node_id_roundtrip(self):
        mesh = Mesh2D(5, 3)
        for coord in mesh.nodes():
            assert mesh.coord_of(mesh.node_id(coord)) == coord

    def test_contains(self):
        mesh = Mesh2D(4, 4)
        assert mesh.contains((0, 0))
        assert mesh.contains((3, 3))
        assert not mesh.contains((4, 0))
        assert not mesh.contains((0, -1))

    def test_corner_and_interior_neighbors(self):
        mesh = Mesh2D(4, 4)
        assert len(mesh.neighbors((0, 0))) == 2
        assert len(mesh.neighbors((1, 0))) == 3
        assert len(mesh.neighbors((1, 1))) == 4

    def test_out_of_range_raises(self):
        mesh = Mesh2D(4, 4)
        with pytest.raises(ValueError):
            mesh.neighbors((5, 5))


class TestUVRouting:
    def test_route_endpoints(self):
        mesh = Mesh2D(24, 12)
        route = mesh.uv_route((0, 0), (23, 11))
        assert route[0] == (0, 0)
        assert route[-1] == (23, 11)
        assert len(route) - 1 == mesh.hop_distance((0, 0), (23, 11)) == 34

    def test_u_before_v(self):
        mesh = Mesh2D(8, 8)
        route = mesh.uv_route((1, 1), (5, 6))
        # V coordinate must stay fixed until U has settled.
        u_done = route.index((5, 1))
        for coord in route[:u_done + 1]:
            assert coord[1] == 1
        for coord in route[u_done:]:
            assert coord[0] == 5

    def test_route_is_adjacent_steps(self):
        mesh = Mesh2D(8, 8)
        route = mesh.uv_route((7, 0), (0, 7))
        for a, b in zip(route, route[1:]):
            assert mesh.hop_distance(a, b) == 1

    def test_self_route(self):
        mesh = Mesh2D(4, 4)
        assert mesh.uv_route((2, 2), (2, 2)) == [(2, 2)]

    def test_u_and_v_hop_counts(self):
        mesh = Mesh2D(24, 12)
        assert mesh.u_hops((0, 0), (23, 0)) == 23
        assert mesh.v_hops((0, 0), (0, 11)) == 11
        assert mesh.u_hops((3, 5), (3, 9)) == 0
