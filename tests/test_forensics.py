"""Tests for congestion forensics (repro.analysis.forensics).

Covers the pure-arithmetic analyses on hand-built payloads (per-hop
latency decomposition, backpressure attribution with downstream stall
charging, saturation trees, fence critical paths, topology heatmaps),
the diagnosis schema validator, the hotspot acceptance criterion (the
hotspot ejector is named the #1 root cause), diagnosis-artifact byte
identity across ``--jobs`` splits, and the ``repro-runner diagnose``
CLI plus its satellite surfaces (``trace export --packet``, ``ledger
list`` filters, ``cache stats`` ledger rollup).
"""

import json

import pytest

from repro.analysis.forensics import (
    backpressure_attribution,
    compare_diagnoses,
    diagnose_run,
    fence_critical_paths,
    hop_latency_decomposition,
    link_summaries,
    render_comparison,
    render_diagnosis,
    render_heatmap,
    topology_heatmaps,
)
from repro.observe import ObserveConfig
from repro.observe import context as observe_context
from repro.observe.artifacts import (
    artifact_path,
    find_artifact,
    list_artifacts,
    load_artifact,
    observe_dir,
)
from repro.observe.schema import (
    DIAGNOSIS_SCHEMA_ID,
    validate_diagnosis,
    validate_metrics,
)
from repro.runner import ParameterGrid, Sweep, run_sweep
from repro.runner.cli import main


@pytest.fixture(autouse=True)
def _clean_context():
    observe_context.deactivate()
    yield
    observe_context.deactivate()


# ---------------------------------------------------------------------------
# Hand-built payloads.
# ---------------------------------------------------------------------------


def span(trace_id, kind, start, end, **args):
    return {"trace_id": list(trace_id), "kind": kind,
            "start_ns": start, "end_ns": end, "args": args}


def trace_payload(spans):
    return {"schema": "repro.observe.trace/1", "end_ns": 1000.0,
            "trace_sample": 1.0, "trace_seed": 0, "spans": spans}


def metrics_payload(links=(), fences=(), dims=(2, 2, 1), **series):
    """A minimal metrics payload for the forensics readers.

    ``links`` rows are ``(name, src, dst, busy, vc_occupancies,
    vc_stalls)``; the gauge/counter series are synthesized from them.
    """
    gauges = {}
    counters = {}
    link_table = {}
    for name, src, dst, busy, occupancies, stalls in links:
        link_table[name] = {"src": src, "dst": dst,
                            "axis": 0, "sign": 1, "slice": 0}
        gauges[f"link/{name}/busy"] = [busy]
        total = 0
        for vc, occupancy in enumerate(occupancies):
            gauges[f"link/{name}/vc{vc}/occupancy"] = [occupancy]
            stall = stalls.get(vc, 0)
            counters[f"link/{name}/vc{vc}/stalls"] = stall
            total += stall
        counters[f"link/{name}/stalls"] = total
    return {
        "schema": "repro.observe.metrics/1",
        "end_ns": 1000.0, "period_ns": 1000.0, "slices": 1,
        "gauges": gauges, "counters": {},
        "stats": {"counters": counters, "summaries": {},
                  "histograms": {}, "series": {}},
        "topology": {"dims": list(dims)},
        "links": link_table,
        "fences": list(fences),
        **series,
    }


#: A 2x2x1 scenario: node 0 is the congestion root (two stalled
#: in-links, one saturated by busy, one by occupancy), node 1 feels
#: second-order pressure, and 0->3 is clean.
CONGESTED_LINKS = (
    ("a->0", 1, 0, 0.8, (0.5,), {0: 50}),      # saturated: busy
    ("b->0", 2, 0, 0.1, (3.0, 0.0), {0: 15, 1: 5}),  # saturated: occupancy
    ("c->1", 3, 1, 0.2, (0.5,), {0: 5}),       # stalled, not saturated
    ("d->3", 0, 3, 0.1, (0.2,), {}),           # clean
)


class TestHopLatencyDecomposition:
    def test_components_sum_to_end_to_end(self):
        spans = [
            span((0, 1), "inject", 0.0, 2.0),
            span((0, 1), "queue", 2.0, 7.0),
            span((0, 1), "transmit", 7.0, 17.0, ser_ns=6.0),
            span((0, 1), "eject", 90.0, 93.0),
            span((0, 1), "deliver", 100.0, 100.0, hops=2),
            # A second packet still in flight at end of run.
            span((0, 2), "inject", 50.0, 52.0),
            # A 1-hop packet whose transmit predates the ser_ns arg.
            span((1, 1), "inject", 0.0, 1.0),
            span((1, 1), "transmit", 1.0, 9.0),
            span((1, 1), "deliver", 20.0, 20.0, hops=1),
        ]
        latency = hop_latency_decomposition(trace_payload(spans))
        assert latency["packets"] == 2
        assert latency["in_flight"] == 1
        assert [row["hops"] for row in latency["classes"]] == [1, 2]
        two = latency["classes"][1]
        mean = two["mean_ns"]
        assert mean["inject"] == 2.0
        assert mean["queue"] == 5.0
        assert mean["serialization"] == 6.0
        assert mean["propagation"] == 4.0
        assert mean["eject"] == 3.0
        # Router is the remainder, so the components sum exactly.
        assert mean["router"] == 100.0 - (2.0 + 5.0 + 6.0 + 4.0 + 3.0)
        assert sum(mean.values()) == pytest.approx(two["end_to_end_ns"])
        # Pre-forensics transmit spans count wholly as serialization.
        one = latency["classes"][0]
        assert one["mean_ns"]["serialization"] == 8.0
        assert one["mean_ns"]["propagation"] == 0.0

    def test_empty_or_undelivered_trace_is_none(self):
        assert hop_latency_decomposition(trace_payload([])) is None
        only_in_flight = [span((0, 1), "inject", 0.0, 1.0)]
        assert hop_latency_decomposition(
            trace_payload(only_in_flight)) is None


class TestBackpressureAttribution:
    def test_link_summaries_classify_saturation(self):
        rows = {row["link"]: row
                for row in link_summaries(metrics_payload(CONGESTED_LINKS))}
        assert rows["a->0"]["saturated"] and rows["a->0"]["stalls"] == 50
        assert rows["b->0"]["saturated"]  # occupancy threshold
        assert rows["b->0"]["vc_stalls"] == {"0": 15, "1": 5}
        assert not rows["c->1"]["saturated"] and rows["c->1"]["stalls"] == 5
        assert not rows["d->3"]["saturated"] and not rows["d->3"]["stalls"]

    def test_stalls_charge_the_downstream_node(self):
        attribution = backpressure_attribution(metrics_payload(CONGESTED_LINKS))
        assert attribution["total_stalls"] == 75
        # Saturated/stalled rows sorted by stalls; the clean link absent.
        assert [row["link"] for row in attribution["saturated"]] == \
            ["a->0", "b->0", "c->1"]
        causes = attribution["root_causes"]
        assert causes[0]["node"] == 0
        assert causes[0]["inflow_stalls"] == 70
        assert causes[0]["saturated_in"] == ["a->0", "b->0"]
        assert causes[1]["node"] == 1 and causes[1]["inflow_stalls"] == 5

    def test_saturation_tree_grows_upstream(self):
        attribution = backpressure_attribution(metrics_payload(CONGESTED_LINKS))
        tree = attribution["trees"][0]
        assert tree["root"] == 0
        edges = {(edge["link"], edge["depth"]) for edge in tree["edges"]}
        # Depth 1: the stalled in-links of node 0; depth 2: pressure on
        # their upstream senders (c->1 feeds sender 1 of a->0).
        assert ("a->0", 1) in edges and ("b->0", 1) in edges
        assert ("c->1", 2) in edges
        assert "d->3" not in {link for link, _ in edges}

    def test_cyclic_backpressure_terminates(self):
        ring = (
            ("x->y", 0, 1, 0.9, (1.0,), {0: 10}),
            ("y->x", 1, 0, 0.9, (1.0,), {0: 10}),
        )
        attribution = backpressure_attribution(metrics_payload(ring))
        tree = attribution["trees"][0]
        # Each link appears at most once despite the cycle.
        links = [edge["link"] for edge in tree["edges"]]
        assert sorted(links) == ["x->y", "y->x"]


class TestFenceCriticalPath:
    def test_straggler_and_incident_congested_links(self):
        fences = [{"fence_id": 3, "straggler": 0, "start_ns": 10.0,
                   "first_ns": 20.0, "last_ns": 50.0, "completions": 4}]
        paths = fence_critical_paths(
            metrics_payload(CONGESTED_LINKS, fences=fences))
        assert paths["count"] == 1
        (path,) = paths["critical_paths"]
        assert path["fence_id"] == 3 and path["straggler"] == 0
        assert path["wait_ns"] == 40.0 and path["spread_ns"] == 30.0
        # Congested links incident to the straggler, busiest first; the
        # clean 0->3 link is excluded even though it touches node 0.
        assert path["congested_links"] == ["a->0", "b->0"]

    def test_no_fences(self):
        paths = fence_critical_paths(metrics_payload(CONGESTED_LINKS))
        assert paths == {"count": 0, "critical_paths": []}


class TestTopologyHeatmaps:
    def test_stalls_charge_dst_occupancy_charges_src(self):
        heatmaps = {h["metric"]: h
                    for h in topology_heatmaps(metrics_payload(CONGESTED_LINKS))}
        stalls = heatmaps["stalls"]["values"]
        assert stalls == [70.0, 5.0, 0.0, 0.0]
        occupancy = heatmaps["occupancy"]["values"]
        assert occupancy[0] == pytest.approx(0.2)  # 0->3 queues at node 0
        assert occupancy[1] == pytest.approx(0.5)  # a->0 queues at node 1
        assert occupancy[2] == pytest.approx(3.0)

    def test_missing_topology_section_yields_no_heatmaps(self):
        metrics = metrics_payload(CONGESTED_LINKS)
        del metrics["topology"]
        assert topology_heatmaps(metrics) == []

    def test_render_heatmap_marks_the_peak(self):
        (stalls, _) = topology_heatmaps(metrics_payload(CONGESTED_LINKS))
        text = render_heatmap(stalls)
        assert "peak 70" in text
        assert "z=0" in text
        grid = [line for line in text.splitlines()
                if line.startswith("    ")]
        assert len(grid) == 2  # y rows of the single z plane
        # The peak node renders the densest ramp character.
        assert "@" in grid[0]


# ---------------------------------------------------------------------------
# Whole-run diagnosis payloads, schema, rendering, comparison.
# ---------------------------------------------------------------------------


def synthetic_diagnosis():
    metrics = {"machines": [metrics_payload(CONGESTED_LINKS)]}
    trace = {"machines": [trace_payload([
        span((0, 1), "inject", 0.0, 2.0),
        span((0, 1), "transmit", 2.0, 12.0, ser_ns=6.0),
        span((0, 1), "deliver", 40.0, 40.0, hops=1),
    ])]}
    return diagnose_run(metrics, trace)


class TestDiagnoseRun:
    def test_payload_shape_and_schema(self):
        (machine,) = synthetic_diagnosis()
        assert machine["schema"] == DIAGNOSIS_SCHEMA_ID
        validate_diagnosis(machine)
        assert machine["latency"]["packets"] == 1
        assert machine["backpressure"]["root_causes"][0]["node"] == 0
        assert machine["heatmaps"][0]["metric"] == "stalls"

    def test_missing_trace_leaves_latency_null(self):
        (machine,) = diagnose_run(
            {"machines": [metrics_payload(CONGESTED_LINKS)]})
        assert machine["latency"] is None
        validate_diagnosis(machine)

    def test_render_diagnosis_names_the_root_cause(self):
        machines = synthetic_diagnosis()
        report = render_diagnosis("ab" * 32, machines)
        assert "backpressure attribution" in report
        assert "#1 node n0" in report
        assert "saturation tree rooted at n0" in report
        assert "per-hop latency decomposition" in report
        assert "stalls by torus coordinate" in report

    def test_validate_diagnosis_rejects_bad_payloads(self):
        (machine,) = synthetic_diagnosis()
        wrong_schema = dict(machine, schema="repro.observe.metrics/1")
        with pytest.raises(ValueError, match="diagnosis schema"):
            validate_diagnosis(wrong_schema)
        broken_sum = json.loads(json.dumps(machine))
        broken_sum["latency"]["classes"][0]["mean_ns"]["router"] += 1.0
        with pytest.raises(ValueError, match="sum to end_to_end_ns"):
            validate_diagnosis(broken_sum)
        short_heatmap = json.loads(json.dumps(machine))
        short_heatmap["heatmaps"][0]["values"].pop()
        with pytest.raises(ValueError, match="one value per node"):
            validate_diagnosis(short_heatmap)


class TestCompareDiagnoses:
    def test_diff_and_rendering(self):
        machines = synthetic_diagnosis()
        a = {"digest": "a" * 64, "machines": machines}
        quiet = metrics_payload(CONGESTED_LINKS[2:])  # only c->1 and d->3
        b = {"digest": "b" * 64,
             "machines": diagnose_run({"machines": [quiet]})}
        diff = compare_diagnoses(a, b)
        assert diff["stalls"] == {"a": 75, "b": 5}
        assert diff["saturated"]["only_a"] == ["a->0", "b->0"]
        assert diff["saturated"]["common"] == ["c->1"]
        assert diff["root_causes"]["a"][0] == 0
        (row,) = diff["latency"]
        assert row["hops"] == 1 and row["b_ns"] is None
        report = render_comparison(diff)
        assert "credit stalls: A=75 B=5 (delta -70)" in report
        assert "only in A: a->0" in report


# ---------------------------------------------------------------------------
# Acceptance: hotspot traffic names the hotspot ejector as root cause.
# ---------------------------------------------------------------------------

#: One observed hotspot load point past saturation: every node floods
#: the (0,0,0) ejector (node id 0).
HOTSPOT_PARAMS = {
    "dims": (2, 2, 2),
    "chip_cols": 6,
    "chip_rows": 6,
    "pattern": "hotspot",
    "offered_load": 0.9,
    "machine_seed": 7,
    "traffic_seed": 11,
    "warmup_ns": 400.0,
    "measure_ns": 1600.0,
}


@pytest.fixture(scope="module")
def hotspot_diagnosis(tmp_path_factory):
    directory = tmp_path_factory.mktemp("hotspot") / "observe"
    sweep = Sweep("load_sweep", ParameterGrid(HOTSPOT_PARAMS),
                  label="forensics-hotspot")
    run_sweep(sweep, observe=ObserveConfig(metrics=True, trace=True),
              artifact_dir=directory)
    (row,) = [r for r in list_artifacts(directory) if r["layer"] == "metrics"]
    metrics = load_artifact(row["path"])
    trace = load_artifact(
        find_artifact(directory, row["digest"], "trace"))
    return metrics, diagnose_run(metrics, trace)


class TestHotspotAcceptance:
    def test_metrics_artifact_carries_forensics_sections(
            self, hotspot_diagnosis):
        metrics, _ = hotspot_diagnosis
        (machine,) = metrics["machines"]
        validate_metrics(machine)
        assert machine["topology"]["dims"] == [2, 2, 2]
        assert machine["links"]  # endpoint table present

    def test_hotspot_ejector_is_top_root_cause(self, hotspot_diagnosis):
        _, machines = hotspot_diagnosis
        (machine,) = machines
        validate_diagnosis(machine)
        backpressure = machine["backpressure"]
        assert backpressure["total_stalls"] > 0
        top = backpressure["root_causes"][0]
        assert top["node"] == 0  # the hotspot ejector, node (0,0,0)
        assert top["inflow_stalls"] > 0
        # The heaviest saturated links all terminate at the hotspot.
        heavy = backpressure["saturated"][:3]
        assert all(row["dst"] == 0 for row in heavy)
        # And the stall heatmap peaks there too.
        stalls = [h for h in machine["heatmaps"]
                  if h["metric"] == "stalls"][0]
        assert max(stalls["values"]) == stalls["values"][0]

    def test_decomposition_sums_to_measured_latency(self, hotspot_diagnosis):
        _, machines = hotspot_diagnosis
        latency = machines[0]["latency"]
        assert latency is not None and latency["packets"] > 0
        for row in latency["classes"]:
            assert sum(row["mean_ns"].values()) == \
                pytest.approx(row["end_to_end_ns"])


# ---------------------------------------------------------------------------
# Determinism: diagnosis artifacts are byte-identical across --jobs.
# ---------------------------------------------------------------------------


class TestDiagnosisDeterminism:
    def test_diagnosis_byte_identical_across_jobs(self, tmp_path, capsys):
        grid = ParameterGrid({
            "dims": [(2, 1, 1)],
            "chip_cols": 6, "chip_rows": 6,
            "pattern": "uniform",
            "offered_load": [0.05, 0.2],
            "machine_seed": 7, "traffic_seed": 11,
            "warmup_ns": 200.0, "measure_ns": 600.0,
        })
        sweep = Sweep("load_sweep", grid, label="forensics-smoke")
        observe = ObserveConfig(metrics=True, trace=True, period_ns=50.0)
        digests = None
        for jobs in (1, 4):
            cache_root = tmp_path / f"jobs{jobs}"
            run_sweep(sweep, jobs=jobs, observe=observe,
                      artifact_dir=observe_dir(cache_root))
            rows = [r for r in list_artifacts(observe_dir(cache_root))
                    if r["layer"] == "metrics"]
            found = sorted(row["digest"] for row in rows)
            assert digests is None or found == digests
            digests = found
            for digest in digests:
                assert main(["diagnose", digest, "--cache-dir",
                             str(cache_root), "-o", str(tmp_path / "r.txt")
                             ]) == 0
        capsys.readouterr()
        assert len(digests) == 2
        for digest in digests:
            blobs = [
                artifact_path(observe_dir(tmp_path / f"jobs{jobs}"),
                              digest, "diagnosis").read_bytes()
                for jobs in (1, 4)
            ]
            assert blobs[0] == blobs[1]
            for machine in json.loads(blobs[0])["machines"]:
                validate_diagnosis(machine)


# ---------------------------------------------------------------------------
# CLI surface: diagnose, trace --packet, ledger filters, cache stats.
# ---------------------------------------------------------------------------

PHASE_PARAMS = {
    "dims": (2, 1, 1),
    "chip_cols": 6,
    "chip_rows": 6,
    "pattern": "uniform",
    "routing": "randomized-minimal",
    "messages_per_node": 4,
    "window": 2,
    "iterations": 1,
    "machine_seed": 7,
    "workload_seed": 11,
}


class TestForensicsCLI:
    def run_args(self, tmp_path, *extra, **overrides):
        params = dict(PHASE_PARAMS, **overrides)
        args = ["run", "phase_loop", "--cache-dir",
                str(tmp_path / "cache")]
        for key, value in params.items():
            args += ["--set", f"{key}={json.dumps(list(value))}"
                     if isinstance(value, tuple) else f"{key}={value}"]
        return args + list(extra)

    def observed_digest(self, tmp_path, capsys, **overrides):
        before = {row["digest"]
                  for row in list_artifacts(observe_dir(tmp_path / "cache"))}
        assert main(self.run_args(
            tmp_path, "--observe", "--trace", "-o",
            str(tmp_path / "run.json"), **overrides)) == 0
        capsys.readouterr()
        fresh = {row["digest"]
                 for row in list_artifacts(observe_dir(tmp_path / "cache"))
                 if row["layer"] == "metrics"} - before
        (digest,) = fresh
        return digest

    def test_diagnose_writes_artifact_and_reports(self, tmp_path, capsys):
        digest = self.observed_digest(tmp_path, capsys)
        assert main(["diagnose", digest[:12], "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        captured = capsys.readouterr()
        assert "diagnose: wrote" in captured.err
        assert "backpressure attribution" in captured.out
        assert "per-hop latency decomposition" in captured.out
        path = artifact_path(observe_dir(tmp_path / "cache"),
                             digest, "diagnosis")
        artifact = load_artifact(path)
        assert artifact["layer"] == "diagnosis"
        for machine in artifact["machines"]:
            validate_diagnosis(machine)
        # The artifact is listed beside metrics/trace.
        layers = [row["layer"]
                  for row in list_artifacts(observe_dir(tmp_path / "cache"))]
        assert layers == ["diagnosis", "metrics", "trace"]

    def test_diagnose_json_no_write(self, tmp_path, capsys):
        digest = self.observed_digest(tmp_path, capsys)
        assert main(["diagnose", digest[:12], "--json", "--no-write",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["digest"] == digest
        assert payload["layer"] == "diagnosis"
        assert not artifact_path(observe_dir(tmp_path / "cache"),
                                 digest, "diagnosis").exists()

    def test_diagnose_unknown_digest_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "cache").mkdir()
        assert main(["diagnose", "ffff", "--cache-dir",
                     str(tmp_path / "cache")]) == 2
        err = capsys.readouterr().err
        assert "no metrics artifact" in err and "--observe" in err

    def test_diagnose_compare_two_runs(self, tmp_path, capsys):
        first = self.observed_digest(tmp_path, capsys)
        second = self.observed_digest(tmp_path, capsys,
                                      messages_per_node=8)
        assert first != second
        assert main(["diagnose", first[:12], "--compare", second[:12],
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert f"comparing {first[:16]}" in out
        assert "credit stalls: A=" in out

    def test_trace_export_packet_filter(self, tmp_path, capsys):
        digest = self.observed_digest(tmp_path, capsys)
        exported = tmp_path / "packet.json"
        assert main(["trace", "export", "--digest", digest[:12],
                     "--packet", "0,0", "--cache-dir",
                     str(tmp_path / "cache"), "-o", str(exported)]) == 0
        payload = json.loads(exported.read_text())
        names = {event["name"] for event in payload["traceEvents"]
                 if event["ph"] != "M"}
        assert names and names <= {
            "inject", "queue", "transmit", "eject", "deliver"}

    def test_trace_export_packet_no_match(self, tmp_path, capsys):
        digest = self.observed_digest(tmp_path, capsys)
        assert main(["trace", "export", "--digest", digest[:12],
                     "--packet", "999,999", "--cache-dir",
                     str(tmp_path / "cache")]) == 2
        assert "no spans for packet" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["1", "a,b", "-1,2", "1,2,3"])
    def test_trace_export_packet_bad_spec(self, tmp_path, capsys, spec):
        digest = self.observed_digest(tmp_path, capsys)
        assert main(["trace", "export", "--digest", digest[:12],
                     f"--packet={spec}", "--cache-dir",
                     str(tmp_path / "cache")]) == 2
        assert "--packet" in capsys.readouterr().err

    def test_cache_stats_reports_ledger(self, tmp_path, capsys):
        self.observed_digest(tmp_path, capsys)
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "ledger: 1 run records" in capsys.readouterr().out
        assert main(["cache", "stats", "--json",
                     "--cache-dir", cache_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ledger"]["records"] == 1
        assert payload["ledger"]["status_events"] >= 1
        assert payload["ledger"]["bytes"] > 0

    def test_ledger_list_filters(self, tmp_path, capsys):
        self.observed_digest(tmp_path, capsys)
        cache_dir = str(tmp_path / "cache")
        assert main(["ledger", "list", "--experiment", "phase_loop",
                     "--cache-dir", cache_dir]) == 0
        assert "phase_loop" in capsys.readouterr().out
        assert main(["ledger", "list", "--experiment", "nope",
                     "--cache-dir", cache_dir]) == 0
        assert "no ledger records match" in capsys.readouterr().err
        assert main(["ledger", "list", "--sweep", "nope",
                     "--cache-dir", cache_dir]) == 0
        assert "no ledger records match" in capsys.readouterr().err

    def test_ledger_filters_rejected_outside_list(self, tmp_path, capsys):
        self.observed_digest(tmp_path, capsys)
        assert main(["ledger", "show", "abcd", "--experiment", "phase_loop",
                     "--cache-dir", str(tmp_path / "cache")]) == 2
        assert "only apply to ledger list" in capsys.readouterr().err
