"""Tests for links (credits, serialization) and the router base class."""

import pytest

from repro.engine import Simulator
from repro.netsim import CoreAddress, Packet, PacketKind, TrafficClass
from repro.netsim.fabric import FabricError, Link, Router


def make_packet(num_flits=1):
    return Packet(kind=PacketKind.COUNTED_WRITE,
                  traffic_class=TrafficClass.REQUEST,
                  src_node=(0, 0, 0), dst_node=(1, 0, 0),
                  src_core=CoreAddress(0, 0, 0),
                  dst_core=CoreAddress(0, 0, 0),
                  num_flits=num_flits)


class TestLink:
    def test_delivers_after_serialization_and_latency(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, "l", latency_ns=5.0, ser_ns_per_flit=1.0,
                    vcs=2, credit_flits=8,
                    deliver=lambda p, v, l: arrivals.append((sim.now, v)))
        sim.at(0.0, lambda: link.send(make_packet(num_flits=2), 1))
        sim.run()
        assert arrivals == [(7.0, 1)]  # 2 flits x 1 ns + 5 ns

    def test_serialization_is_exclusive(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, "l", latency_ns=0.0, ser_ns_per_flit=2.0,
                    vcs=1, credit_flits=64,
                    deliver=lambda p, v, l: arrivals.append(sim.now))
        def send_two():
            link.send(make_packet(), 0)
            link.send(make_packet(), 0)
        sim.at(0.0, send_two)
        sim.run()
        assert arrivals == [2.0, 4.0]  # back-to-back, not overlapped

    def test_vc_range_checked(self):
        sim = Simulator()
        link = Link(sim, "l", 0.0, 1.0, vcs=2, credit_flits=8,
                    deliver=lambda p, v, l: None)
        with pytest.raises(FabricError):
            link.send(make_packet(), 5)

    def test_credits_block_and_release(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, "l", latency_ns=0.0, ser_ns_per_flit=1.0,
                    vcs=1, credit_flits=2,
                    deliver=lambda p, v, l: arrivals.append(sim.now))
        def send_three():
            for __ in range(3):
                link.send(make_packet(num_flits=1), 0)
        sim.at(0.0, send_three)
        sim.run()
        # Only two packets fit the downstream queue.
        assert len(arrivals) == 2
        assert link.queued == 1
        # Downstream frees one slot: the third proceeds.
        link.return_credits(0, 1)
        sim.run()
        assert len(arrivals) == 3

    def test_round_robin_prevents_vc_starvation(self):
        """A continuously backlogged VC must not starve a low-rate VC.

        Pins the PR-3 arbitration rebuild: with per-VC queues and
        round-robin arbitration, a low-rate VC's head packet is served
        within two serialization slots of arriving (the packet already
        in service, then its own slot) no matter how deep the other
        VC's backlog is.  A shared FIFO would park it behind the entire
        backlog (~40 slots here).
        """
        sim = Simulator()
        deliveries = []
        link = Link(sim, "l", latency_ns=0.0, ser_ns_per_flit=1.0,
                    vcs=2, credit_flits=64,
                    deliver=lambda p, v, l: deliveries.append((sim.now, v)))

        def backlog():
            for __ in range(40):
                link.send(make_packet(), 0)

        sim.at(0.0, backlog)
        enqueued = []

        def trickle():
            enqueued.append(sim.now)
            link.send(make_packet(), 1)

        for i in range(8):
            sim.at(5.0 * i, trickle)
        sim.run()
        vc1_times = [t for t, vc in deliveries if vc == 1]
        assert len(vc1_times) == 8
        for t_in, t_out in zip(enqueued, vc1_times):
            assert t_out <= t_in + 2.0 + 1e-9
        # ... while the backlogged VC keeps making progress in between.
        vc0_before_last = sum(1 for t, vc in deliveries
                              if vc == 0 and t < vc1_times[-1])
        assert vc0_before_last >= 8

    def test_stats(self):
        sim = Simulator()
        link = Link(sim, "l", 0.0, 1.5, vcs=1, credit_flits=8,
                    deliver=lambda p, v, l: None)
        sim.at(0.0, lambda: link.send(make_packet(num_flits=2), 0))
        sim.run()
        assert link.packets_sent == 1
        assert link.flits_sent == 2
        assert link.busy_ns == pytest.approx(3.0)


class _StubRouter(Router):
    def __init__(self, sim, name, decision, latency=1.0):
        super().__init__(sim, name)
        self._decision = decision
        self._latency = latency

    def pipeline_ns(self, packet, in_port):
        return self._latency

    def route(self, packet, vc, in_port):
        return self._decision


class TestRouter:
    def test_local_sink_delivery(self):
        sim = Simulator()
        got = []
        router = _StubRouter(sim, "r", ("local", "gc0", None))
        router.add_sink("gc0", got.append)
        packet = make_packet()
        sim.at(0.0, lambda: router.receive(packet, 0, "inject", None))
        sim.run()
        assert got == [packet]
        assert router.packets_routed == 1

    def test_missing_sink_raises(self):
        sim = Simulator()
        router = _StubRouter(sim, "r", ("local", "nope", None))
        sim.at(0.0, lambda: router.receive(make_packet(), 0, "inject", None))
        with pytest.raises(FabricError):
            sim.run()

    def test_missing_output_raises(self):
        sim = Simulator()
        router = _StubRouter(sim, "r", ("link", "U+", 0))
        sim.at(0.0, lambda: router.receive(make_packet(), 0, "inject", None))
        with pytest.raises(FabricError):
            sim.run()

    def test_duplicate_wiring_rejected(self):
        sim = Simulator()
        router = _StubRouter(sim, "r", ("local", "gc0", None))
        link = Link(sim, "l", 0.0, 1.0, 1, 8, lambda p, v, l: None)
        router.add_output("U+", link)
        with pytest.raises(FabricError):
            router.add_output("U+", link)
        router.add_sink("gc0", lambda p: None)
        with pytest.raises(FabricError):
            router.add_sink("gc0", lambda p: None)

    def test_pipeline_latency_charged(self):
        sim = Simulator()
        times = []
        router = _StubRouter(sim, "r", ("local", "gc0", None), latency=3.5)
        router.add_sink("gc0", lambda p: times.append(sim.now))
        sim.at(1.0, lambda: router.receive(make_packet(), 0, "inject", None))
        sim.run()
        assert times == [4.5]

    def test_credits_returned_upstream_on_delivery(self):
        sim = Simulator()
        router = _StubRouter(sim, "r", ("local", "gc0", None))
        router.add_sink("gc0", lambda p: None)
        link = Link(sim, "up", 0.0, 1.0, vcs=1, credit_flits=1,
                    deliver=lambda p, v, l: router.receive(p, v, "in", l))
        def send_two():
            link.send(make_packet(), 0)
            link.send(make_packet(), 0)
        sim.at(0.0, send_two)
        sim.run()
        # Second packet required the first's credit to come back.
        assert link.packets_sent == 2
