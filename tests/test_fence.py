"""Tests for the network fence (Section V): merge units, DAG config,
and the machine-level fence engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultEvent, FaultSchedule, random_fault_schedule
from repro.fence import (
    FenceConfigError,
    FenceDomainError,
    FenceEdge,
    FenceEngine,
    FenceMergeUnit,
    FencePattern,
    FenceRouterModel,
    FenceTiming,
    configure_fence_network,
    run_fence_flood,
)
from repro.netsim import MachineConfig, NetworkMachine


class TestFenceMergeUnit:
    def test_fires_at_expected_count(self):
        unit = FenceMergeUnit(expected=3, output_mask=frozenset({"a", "b"}))
        assert unit.arrive() == (False, frozenset())
        assert unit.arrive() == (False, frozenset())
        fired, outputs = unit.arrive()
        assert fired and outputs == {"a", "b"}

    def test_counter_resets_after_fire(self):
        unit = FenceMergeUnit(expected=2, output_mask=frozenset({"x"}))
        unit.arrive()
        unit.arrive()
        assert unit.count == 0
        assert unit.fires == 1
        unit.arrive()
        fired, __ = unit.arrive()
        assert fired and unit.fires == 2

    def test_expected_must_be_positive(self):
        with pytest.raises(FenceConfigError):
            FenceMergeUnit(expected=0, output_mask=frozenset())

    def test_overflow_detected(self):
        unit = FenceMergeUnit(expected=1, output_mask=frozenset())
        unit.count = 1  # corrupt state
        with pytest.raises(FenceConfigError):
            unit.arrive()


class TestFenceRouterModel:
    def test_unknown_input_rejected(self):
        router = FenceRouterModel("r")
        with pytest.raises(FenceConfigError):
            router.fence_arrival("p0")

    def test_merge_and_multicast(self):
        router = FenceRouterModel("r")
        router.configure_input("in0", expected=2,
                               output_mask={"out0", "out1"})
        assert router.fence_arrival("in0") == frozenset()
        assert router.fence_arrival("in0") == {"out0", "out1"}


def linear_chain(n_sources, depth):
    """Sources fan into router r0; r0 -> r1 -> ... -> r{depth-1} -> sink."""
    sources = {f"s{i}": [FenceEdge(f"s{i}", "r0", "in")]
               for i in range(n_sources)}
    router_edges = {}
    for d in range(depth):
        nxt = f"r{d + 1}" if d + 1 < depth else "sink"
        router_edges[(f"r{d}", "in")] = [FenceEdge(f"r{d}", nxt, "in")]
    router_edges[("sink", "in")] = []
    return sources, router_edges


class TestFenceFlood:
    def test_chain_delivers_exactly_once(self):
        sources, edges = linear_chain(n_sources=5, depth=3)
        deliveries = run_fence_flood(sources, edges)
        assert deliveries == {"sink:in": 1}

    def test_tree_merge(self):
        # Two first-level routers, each fed by 3 sources, merging into one.
        sources = {}
        for i in range(3):
            sources[f"a{i}"] = [FenceEdge(f"a{i}", "left", "in")]
            sources[f"b{i}"] = [FenceEdge(f"b{i}", "right", "in")]
        edges = {
            ("left", "in"): [FenceEdge("left", "top", "l")],
            ("right", "in"): [FenceEdge("right", "top", "r")],
            ("top", "l"): [FenceEdge("top", "sink", "in")],
            ("top", "r"): [FenceEdge("top", "sink", "in")],
            ("sink", "in"): [],
        }
        deliveries = run_fence_flood(sources, edges)
        # The sink's expected count is 2 (one merged fence per top input).
        assert deliveries == {"sink:in": 1}

    def test_multicast_reaches_all_sinks(self):
        sources = {"s": [FenceEdge("s", "r", "in")]}
        edges = {
            ("r", "in"): [FenceEdge("r", f"sink{i}", "in") for i in range(4)],
        }
        deliveries = run_fence_flood(sources, edges)
        assert deliveries == {f"sink{i}:in": 1 for i in range(4)}

    def test_expected_counts_derived_from_topology(self):
        sources, edges = linear_chain(n_sources=7, depth=1)
        routers = configure_fence_network(sources, edges)
        assert routers["r0"].inputs["in"].expected == 7

    @given(st.integers(1, 12), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_exactly_once_any_chain(self, n_sources, depth):
        sources, edges = linear_chain(n_sources, depth)
        assert run_fence_flood(sources, edges) == {"sink:in": 1}

    def test_unreachable_config_rejected(self):
        with pytest.raises(FenceConfigError):
            configure_fence_network({}, {("r", "in"): []})


@pytest.fixture(scope="module")
def small_machine():
    machine = NetworkMachine(dims=(2, 2, 2), chip_cols=6, chip_rows=6,
                             seed=21)
    return machine, FenceEngine(machine)


class TestFenceEngine:
    def test_zero_hop_barrier_is_intra_node(self, small_machine):
        machine, engine = small_machine
        latency = engine.barrier_latency(0)
        timing = engine.timing
        assert latency == pytest.approx(
            timing.aggregation_ns + timing.delivery_ns)

    def test_barrier_latency_linear_in_hops(self, small_machine):
        machine, engine = small_machine
        lat = {h: engine.barrier_latency(h) for h in (1, 2, 3)}
        d1 = lat[2] - lat[1]
        d2 = lat[3] - lat[2]
        assert d1 == pytest.approx(d2, rel=0.05)

    def test_fence_per_hop_exceeds_message_per_hop(self, small_machine):
        """Section V-F: fence hops cost ~17.6 ns more than message hops
        because fences traverse all valid paths at each hop."""
        machine, engine = small_machine
        per_hop = engine.barrier_latency(3) - engine.barrier_latency(2)
        assert per_hop > 34.2

    def test_copies_per_direction(self, small_machine):
        __, engine = small_machine
        # 2 slices x 4 request VCs: all valid paths (Section V-C).
        assert engine.copies_per_direction == 8

    def test_icb_pattern_completes_sooner(self, small_machine):
        machine, engine = small_machine
        gc = engine.barrier_latency(1, FencePattern.GC_TO_GC)
        icb = engine.barrier_latency(1, FencePattern.GC_TO_ICB)
        assert icb < gc

    def test_negative_hops_rejected(self, small_machine):
        __, engine = small_machine
        with pytest.raises(ValueError):
            engine.start_fence(-1)

    def test_concurrent_fence_limit(self):
        machine = NetworkMachine(dims=(1, 1, 2), chip_cols=6, chip_rows=6)
        engine = FenceEngine(machine)
        for __ in range(FenceEngine.MAX_CONCURRENT):
            engine.start_fence(0)
        with pytest.raises(RuntimeError):
            engine.start_fence(0)

    def test_concurrent_fences_all_complete(self):
        machine = NetworkMachine(dims=(2, 1, 2), chip_cols=6, chip_rows=6)
        engine = FenceEngine(machine)
        done = []
        for __ in range(3):
            engine.start_fence(
                1, on_node_complete=lambda c, t: done.append((c, t)))
        machine.sim.run()
        assert len(done) == 3 * machine.torus.dims.num_nodes

    def test_all_nodes_complete_global_barrier(self, small_machine):
        machine, engine = small_machine
        diameter = machine.torus.dims.diameter
        completions = []
        engine.start_fence(
            diameter, on_node_complete=lambda c, t: completions.append(c))
        machine.sim.run()
        assert sorted(completions) == sorted(machine.torus.nodes())

    def test_custom_timing(self):
        machine = NetworkMachine(dims=(1, 1, 2), chip_cols=6, chip_rows=6)
        timing = FenceTiming(aggregation_ns=10.0, delivery_ns=5.0)
        engine = FenceEngine(machine, timing=timing)
        assert engine.barrier_latency(0) == pytest.approx(15.0)


def faulted_fence_machine(schedule):
    return NetworkMachine(config=MachineConfig(
        dims=(2, 2, 2), chip_cols=6, chip_rows=6, seed=21, faults=schedule))


class TestFenceDomains:
    """Unreachable synchronization domains fail fast with a diagnostic
    instead of hanging a quiesced simulation."""

    def test_dead_router_raises_diagnostic_before_simulating(self):
        machine = faulted_fence_machine(FaultSchedule((
            FaultEvent(kind="dead-router", node=(1, 1, 1)),)))
        engine = FenceEngine(machine)
        with pytest.raises(FenceDomainError, match="dead router"):
            engine.barrier_latency(2)
        # The check runs at start_fence: zero simulated slices burned.
        assert machine.sim.now == 0.0

    def test_zero_hop_barrier_survives_dead_routers(self):
        machine = faulted_fence_machine(FaultSchedule((
            FaultEvent(kind="dead-router", node=(1, 1, 1)),)))
        engine = FenceEngine(machine)
        assert engine.barrier_latency(0) > 0

    def test_intact_domain_completes_under_unrelated_faults(self):
        machine = faulted_fence_machine(
            random_fault_schedule((2, 2, 2), 2, seed=1))
        healthy = NetworkMachine(config=MachineConfig(
            dims=(2, 2, 2), chip_cols=6, chip_rows=6, seed=21))
        faulted_latency = FenceEngine(machine).barrier_latency(2)
        assert faulted_latency >= FenceEngine(healthy).barrier_latency(2)

    def test_pair_beyond_round_budget_detected(self):
        # Strip (0, 0, 0) down to a single live cable (toward (1, 0, 0)):
        # its torus-1-hop neighbors are now 3 live hops away, so a 1-hop
        # fence domain is unsatisfiable while the fabric stays connected.
        isolating = FaultSchedule((
            FaultEvent(kind="dead-link", node=(0, 0, 0), axis=0),
            FaultEvent(kind="dead-link", node=(0, 0, 0), axis=1),
            FaultEvent(kind="dead-link", node=(0, 1, 0), axis=1),
            FaultEvent(kind="dead-link", node=(0, 0, 0), axis=2),
            FaultEvent(kind="dead-link", node=(0, 0, 1), axis=2),
        ))
        machine = faulted_fence_machine(isolating)
        engine = FenceEngine(machine)
        with pytest.raises(FenceDomainError, match="partitioned"):
            engine.barrier_latency(1)
        # Widened to the live diameter, the same engine still completes.
        from repro.faults.surface import live_fence_diameter

        assert engine.barrier_latency(live_fence_diameter(machine)) > 0
