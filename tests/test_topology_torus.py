"""Tests for the 3D torus topology and minimal dimension-order routing."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import DIMENSION_ORDERS, DIRECTIONS, Torus3D, TorusDims
from repro.topology.torus import direction_name

SMALL_DIMS = [(2, 2, 2), (4, 4, 8), (3, 2, 5), (1, 1, 4), (8, 8, 8)]


def coords(torus):
    return list(torus.nodes())


class TestTorusDims:
    def test_node_count_and_diameter(self):
        dims = TorusDims(4, 4, 8)
        assert dims.num_nodes == 128
        assert dims.diameter == 2 + 2 + 4  # the paper's 128-node machine

    def test_512_node_machine(self):
        assert TorusDims(8, 8, 8).num_nodes == 512

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TorusDims(0, 1, 1)

    def test_of_requires_three(self):
        with pytest.raises(ValueError):
            TorusDims.of((2, 2))


class TestIdentity:
    def test_node_id_roundtrip(self):
        torus = Torus3D((3, 4, 5))
        ids = set()
        for coord in torus.nodes():
            nid = torus.node_id(coord)
            assert torus.coord_of(nid) == coord
            ids.add(nid)
        assert ids == set(range(60))

    def test_normalize_wraps(self):
        torus = Torus3D((4, 4, 4))
        assert torus.normalize((-1, 4, 5)) == (3, 0, 1)

    def test_coord_of_range_check(self):
        with pytest.raises(ValueError):
            Torus3D((2, 2, 2)).coord_of(8)


class TestNeighbors:
    def test_six_neighbors(self):
        torus = Torus3D((4, 4, 4))
        neighbors = torus.neighbors((0, 0, 0))
        assert len(neighbors) == 6
        dirs = [d for d, __ in neighbors]
        assert set(dirs) == set(DIRECTIONS)

    def test_wraparound_neighbor(self):
        torus = Torus3D((4, 4, 4))
        assert torus.neighbor((3, 0, 0), 0, +1) == (0, 0, 0)
        assert torus.neighbor((0, 0, 0), 0, -1) == (3, 0, 0)

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError):
            Torus3D((2, 2, 2)).neighbor((0, 0, 0), 3, 1)

    def test_direction_names(self):
        assert direction_name((0, 1)) == "X+"
        assert direction_name((2, -1)) == "Z-"


class TestDistances:
    @pytest.mark.parametrize("dims", SMALL_DIMS)
    def test_symmetry(self, dims):
        torus = Torus3D(dims)
        nodes = coords(torus)[:12]
        for a, b in itertools.combinations(nodes, 2):
            assert torus.min_hops(a, b) == torus.min_hops(b, a)

    @pytest.mark.parametrize("dims", SMALL_DIMS)
    def test_identity_distance_zero(self, dims):
        torus = Torus3D(dims)
        for node in coords(torus):
            assert torus.min_hops(node, node) == 0

    def test_wraparound_shorter(self):
        torus = Torus3D((8, 1, 1))
        assert torus.min_hops((0, 0, 0), (7, 0, 0)) == 1
        assert torus.min_hops((0, 0, 0), (4, 0, 0)) == 4

    @pytest.mark.parametrize("dims", [(4, 4, 8)])
    def test_diameter_is_achieved(self, dims):
        torus = Torus3D(dims)
        origin = (0, 0, 0)
        distances = [torus.min_hops(origin, c) for c in torus.nodes()]
        assert max(distances) == torus.dims.diameter == 8

    @given(st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6)),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, dims, data):
        torus = Torus3D(dims)
        pick = st.tuples(st.integers(0, dims[0] - 1),
                         st.integers(0, dims[1] - 1),
                         st.integers(0, dims[2] - 1))
        a, b, c = (data.draw(pick) for __ in range(3))
        assert torus.min_hops(a, c) <= torus.min_hops(a, b) + torus.min_hops(b, c)


class TestRoutes:
    def test_route_endpoints_and_length(self):
        torus = Torus3D((4, 4, 8))
        src, dst = (0, 0, 0), (1, 3, 5)
        for order in DIMENSION_ORDERS:
            route = torus.dimension_order_route(src, dst, order)
            assert route[0] == src
            assert route[-1] == dst
            assert len(route) - 1 == torus.min_hops(src, dst)

    def test_route_steps_are_adjacent(self):
        torus = Torus3D((4, 4, 8))
        route = torus.dimension_order_route((0, 0, 0), (2, 1, 6), (2, 0, 1))
        for a, b in zip(route, route[1:]):
            assert torus.min_hops(a, b) == 1

    def test_route_uses_wraparound(self):
        torus = Torus3D((4, 1, 1))
        route = torus.dimension_order_route((0, 0, 0), (3, 0, 0), (0, 1, 2))
        assert route == [(0, 0, 0), (3, 0, 0)]

    def test_bad_order_rejected(self):
        torus = Torus3D((2, 2, 2))
        with pytest.raises(ValueError):
            torus.dimension_order_route((0, 0, 0), (1, 1, 1), (0, 0, 1))

    def test_six_orders_give_at_most_six_routes(self):
        torus = Torus3D((4, 4, 8))
        routes = torus.all_minimal_routes((0, 0, 0), (1, 1, 1))
        assert len(routes) == 6  # all axes move, so all orders distinct
        routes_1d = torus.all_minimal_routes((0, 0, 0), (2, 0, 0))
        assert len(routes_1d) == 1  # single-axis: all orders identical

    def test_all_minimal_routes_same_length(self):
        torus = Torus3D((4, 4, 8))
        src, dst = (0, 1, 2), (3, 3, 7)
        want = torus.min_hops(src, dst)
        for route in torus.all_minimal_routes(src, dst):
            assert len(route) - 1 == want


class TestResponseRoutes:
    def test_response_route_is_xyz_mesh(self):
        """Responses never cross the wraparound (mesh-restricted XYZ)."""
        torus = Torus3D((4, 4, 4))
        route = torus.response_route((3, 0, 0), (0, 0, 0))
        # Mesh-restricted: walks 3 -> 0 through 2, 1 instead of wrapping.
        assert route == [(3, 0, 0), (2, 0, 0), (1, 0, 0), (0, 0, 0)]

    def test_response_route_order_is_xyz(self):
        torus = Torus3D((4, 4, 4))
        route = torus.response_route((0, 0, 0), (2, 2, 2))
        xs = [c[0] for c in route]
        # X settles before Y moves, Y before Z.
        first_y_move = next(i for i, c in enumerate(route) if c[1] != 0)
        assert all(x == 2 for x in xs[first_y_move:])

    def test_response_route_never_wraps(self):
        torus = Torus3D((4, 4, 4))
        for src in [(0, 0, 0), (3, 3, 3), (1, 2, 3)]:
            for dst in [(0, 0, 0), (3, 0, 2)]:
                route = torus.response_route(src, dst)
                for a, b in zip(route, route[1:]):
                    deltas = [abs(x - y) for x, y in zip(a, b)]
                    assert sorted(deltas) == [0, 0, 1]  # no modular jumps


class TestNodesWithin:
    def test_zero_hops_is_self(self):
        torus = Torus3D((4, 4, 8))
        assert torus.nodes_within((1, 1, 1), 0) == [(1, 1, 1)]

    def test_one_hop_ball(self):
        torus = Torus3D((4, 4, 8))
        ball = torus.nodes_within((0, 0, 0), 1)
        assert len(ball) == 7  # self + 6 neighbors

    def test_diameter_ball_is_whole_machine(self):
        torus = Torus3D((4, 4, 8))
        assert len(torus.nodes_within((2, 1, 3), torus.dims.diameter)) == 128

    def test_small_torus_neighbor_dedup(self):
        # On a 2-wide axis, +1 and -1 reach the same node.
        torus = Torus3D((2, 2, 2))
        assert len(torus.nodes_within((0, 0, 0), 1)) == 4
