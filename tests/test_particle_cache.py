"""Tests for the particle cache — Section IV-B.

The central invariants: (1) the channel is lossless — every delivered
packet is bit-identical to the packet sent; (2) the send and receive
caches hold identical state after any packet stream; (3) eviction is
controlled by the end-of-step counter and threshold.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    CompressedPacket,
    EndOfStepPacket,
    FullPacket,
    ParticleCacheChannel,
    PositionPacket,
    ReceiveSideCache,
    SendSideCache,
)
from repro.compression.particle_cache import _CacheCore


def make_channel(**kwargs):
    defaults = dict(entries=64, ways=4, evict_threshold=1)
    defaults.update(kwargs)
    return ParticleCacheChannel(**defaults)


class TestBasicOperation:
    def test_first_sight_is_full_packet(self):
        ch = make_channel()
        pkt = PositionPacket(7, (100, 200, 300), static_field=42)
        wire, delivered = ch.transfer(pkt)
        assert isinstance(wire, FullPacket)
        assert delivered == pkt

    def test_second_sight_is_compressed(self):
        ch = make_channel()
        ch.transfer(PositionPacket(7, (100, 200, 300), static_field=42))
        wire, delivered = ch.transfer(
            PositionPacket(7, (101, 199, 300), static_field=42))
        assert isinstance(wire, CompressedPacket)
        assert delivered.position == (101, 199, 300)
        assert delivered.static_field == 42

    def test_compressed_packet_restores_static_fields(self):
        ch = make_channel()
        ch.transfer(PositionPacket(9, (0, 0, 0), static_field=123))
        __, delivered = ch.transfer(PositionPacket(9, (5, 5, 5),
                                                   static_field=123))
        assert delivered.particle_id == 9
        assert delivered.static_field == 123

    def test_residual_shrinks_on_smooth_motion(self):
        ch = make_channel()
        sizes = []
        for t in range(6):
            x = 1_000_000 + 300 * t
            wire, __ = ch.transfer(PositionPacket(1, (x, -x, x // 2)))
            if isinstance(wire, CompressedPacket):
                sizes.append(wire.residual.num_bytes)
        # Ramp: constant -> linear predictor; by t>=3 residuals are 0 bytes.
        assert sizes[-1] == 0
        assert sizes[0] >= sizes[-1]

    def test_corrupted_delivery_raises(self):
        ch = make_channel()
        ch.transfer(PositionPacket(1, (0, 0, 0)))
        # Poke the receive side out of sync, then expect the assertion.
        entry = ch.receive_side.entry(ch.receive_side.set_index(1),
                                      ch.receive_side.lookup(1))
        entry.predictor.x.d0 += 1
        with pytest.raises(AssertionError):
            ch.transfer(PositionPacket(1, (1, 1, 1)))


class TestMirrorProperty:
    @given(st.lists(
        st.tuples(st.integers(0, 40),
                  st.tuples(st.integers(-10**6, 10**6),
                            st.integers(-10**6, 10**6),
                            st.integers(-10**6, 10**6))),
        min_size=1, max_size=120),
        st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_sides_identical_after_random_stream(self, stream, step_every):
        ch = make_channel(entries=32, ways=2)
        for i, (pid, pos) in enumerate(stream):
            ch.transfer(PositionPacket(pid, pos, static_field=pid * 3))
            if step_every and i % (step_every + 1) == step_every:
                ch.end_of_step()
        assert ch.in_sync()

    def test_sync_survives_eviction_pressure(self):
        # 8 entries, 2 ways -> 4 sets.  A migration: the first particle
        # population goes quiet, a second one (conflicting in every set)
        # arrives and must evict the stale entries.
        ch = make_channel(entries=8, ways=2, evict_threshold=0)
        for t in range(2):
            for pid in range(8):
                ch.transfer(PositionPacket(pid, (pid * 100 + t, t, -t)))
            ch.end_of_step()
        for t in range(2):
            for pid in range(40, 48):
                ch.transfer(PositionPacket(pid, (pid * 100 + t, t, -t)))
            ch.end_of_step()
        assert ch.in_sync()
        assert ch.send_side.stats.evictions > 0


def conflicting_ids(count, num_sets=4):
    """First ``count`` particle ids that share cache set 0 under the
    production set-index hash (mirrors _CacheCore.set_index)."""
    found = []
    pid = 0
    while len(found) < count:
        mixed = (pid * 0x9E3779B1) & 0xFFFF_FFFF
        mixed ^= mixed >> 16
        if mixed % num_sets == 0:
            found.append(pid)
        pid += 1
    return found


class TestAllocationAndEviction:
    def test_set_fills_then_allocation_fails(self):
        send = SendSideCache(entries=8, ways=2, evict_threshold=10)
        a, b, c = conflicting_ids(3)
        for pid in (a, b):
            send.send(PositionPacket(pid, (0, 0, 0)))
        out = send.send(PositionPacket(c, (0, 0, 0)))
        assert isinstance(out, FullPacket)  # miss, set full, fresh entries
        assert send.stats.alloc_failures == 1

    def test_stale_entry_evicted_after_threshold(self):
        ch = make_channel(entries=8, ways=2, evict_threshold=1)
        a, b, c = conflicting_ids(3)
        for pid in (a, b):
            ch.transfer(PositionPacket(pid, (0, 0, 0)))
        # Entry stamps are step 0; advance past the threshold.
        ch.end_of_step()
        ch.end_of_step()
        ch.transfer(PositionPacket(c, (0, 0, 0)))
        send = ch.send_side
        assert send.stats.evictions == 1
        assert send.lookup(c) is not None
        assert send.lookup(a) is None or send.lookup(b) is None

    def test_fresh_entries_not_evicted(self):
        ch = make_channel(entries=8, ways=2, evict_threshold=1)
        a, b, c = conflicting_ids(3)
        for pid in (a, b):
            ch.transfer(PositionPacket(pid, (0, 0, 0)))
        ch.transfer(PositionPacket(c, (0, 0, 0)))  # same step: no eviction
        assert ch.send_side.stats.evictions == 0

    def test_hit_refreshes_stamp(self):
        ch = make_channel(entries=8, ways=2, evict_threshold=1)
        a, b, c = conflicting_ids(3)
        ch.transfer(PositionPacket(a, (0, 0, 0)))
        ch.transfer(PositionPacket(b, (0, 0, 0)))
        for __ in range(3):
            ch.end_of_step()
            ch.transfer(PositionPacket(a, (1, 1, 1)))  # keep `a` hot
        ch.transfer(PositionPacket(c, (0, 0, 0)))
        # `b` is stale and must be the victim; `a` must survive.
        assert ch.send_side.lookup(a) is not None
        assert ch.send_side.lookup(b) is None

    def test_paper_defaults(self):
        core = _CacheCore()
        assert core.num_sets * core.ways == 1024
        assert core.ways == 4
        assert core.delta_bits == 12


class TestStepCounter:
    def test_marker_advances_both_sides(self):
        ch = make_channel()
        ch.end_of_step()
        ch.end_of_step()
        assert ch.send_side.step == 2
        assert ch.receive_side.step == 2

    def test_marker_returns_none_on_receive(self):
        recv = ReceiveSideCache(entries=8, ways=2)
        assert recv.receive(EndOfStepPacket()) is None


class TestStats:
    def test_hit_rate(self):
        ch = make_channel()
        for t in range(4):
            ch.transfer(PositionPacket(1, (t, t, t)))
        stats = ch.send_side.stats
        assert stats.lookups == 4
        assert stats.hits == 3
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.75)

    def test_zero_lookups_hit_rate(self):
        assert SendSideCache(entries=8, ways=2).stats.hit_rate == 0.0

    def test_occupancy(self):
        ch = make_channel(entries=16, ways=4)
        for pid in range(5):
            ch.transfer(PositionPacket(pid, (0, 0, 0)))
        assert ch.send_side.occupancy == 5
        assert ch.receive_side.occupancy == 5


class TestValidation:
    def test_entries_must_divide_ways(self):
        with pytest.raises(ValueError):
            SendSideCache(entries=10, ways=4)

    def test_entry_lookup_error_when_desynced(self):
        recv = ReceiveSideCache(entries=8, ways=2)
        from repro.compression import inz
        bogus = CompressedPacket(set_index=0, way=0,
                                 residual=inz.encode([0, 0, 0, 0]))
        with pytest.raises(LookupError):
            recv.receive(bogus)
